//! Chaos-kill crash/recovery harness.
//!
//! The robustness claim this suite enforces: **a crash at any seeded kill
//! point costs nothing but time**. Whatever instant the process dies —
//! mid-frame-append, mid-checkpoint-write, mid-work-unit, or
//! mid-reassessment — recovering from the durable state (checkpoint +
//! WAL tail) and resuming must deliver the *byte-identical* final report
//! an uninterrupted run would have produced, at any worker count. The
//! one sanctioned divergence is a poisoned work unit: the supervisor
//! downgrades exactly that `(entity, kpi)` to `Inconclusive` and every
//! other verdict still matches the clean run bit for bit.

use funnel_core::pipeline::{ChangeAssessment, Funnel, Verdict};
use funnel_core::quality::QualityIssue;
use funnel_core::report::render;
use funnel_core::supervise::{supervise_change, FaultProbe, InjectedFault, SupervisorConfig};
use funnel_core::{FunnelConfig, NoFaults, ReassessmentQueue};
use funnel_resilience::checkpoint::{Checkpoint, CheckpointStore};
use funnel_resilience::recover::{recover, DurableHooks, DurableOptions, Kill};
use funnel_sim::agent::{replay_durable, replay_prefix, replay_with_faults};
use funnel_sim::collector::CollectorState;
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::faults::{FaultPlan, HealMode, PartitionScope, PartitionWindow};
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::store::MetricStore;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_topology::change::{ChangeId, ChangeKind};
use std::fs;
use std::path::PathBuf;

const SHARDS: usize = 3;

/// An 8-day world with a lossy, duplicating transport (no partitions, so
/// recovery resumes via the fast-forward replay cursor) and one impactful
/// upgrade on day 7.
fn crash_world(seed: u64) -> (World, ChangeId, FaultPlan) {
    let mut b = WorldBuilder::new(SimConfig::days(seed, 8));
    let svc = b.add_service("prod.crash", 6).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        85.0,
    );
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 200, effect, "t")
        .unwrap();
    let plan = FaultPlan {
        drop_frame_prob: 0.05,
        duplicate_prob: 0.08,
        seed: seed ^ 0xc0ffee,
        ..FaultPlan::none()
    };
    (b.build(), id, plan)
}

fn tmp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("funnel-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The delivered artifact, byte-comparable: the full assessment Debug
/// form plus the operator-facing rendering.
fn report_of(world: &World, assessment: &ChangeAssessment) -> String {
    format!("{assessment:?}\n{}", render(world.topology(), assessment))
}

fn assess(world: &World, store: &MetricStore, change: ChangeId, workers: usize) -> String {
    let mut config = FunnelConfig::paper_default();
    config.assess.workers = workers;
    let record = world.change_log().get(change).unwrap();
    let kinds = |svc| world.kinds_of_service(svc).to_vec();
    let assessment = Funnel::new(config)
        .assess_change_with(store, world.topology(), record, &kinds)
        .unwrap();
    report_of(world, &assessment)
}

/// Kill points: mid-frame (torn WAL append, early and late) and
/// mid-checkpoint (torn checkpoint file). After recovery + resumed
/// ingestion, the final report must match the uninterrupted run at every
/// worker count.
#[test]
fn ingest_kill_points_recover_to_byte_identical_reports() {
    let (world, change, plan) = crash_world(23);
    let duration = 8 * 1440;

    let golden_store = MetricStore::new();
    replay_with_faults(&world, &golden_store, SHARDS, plan.clone()).unwrap();
    let golden = assess(&world, &golden_store, change, 1);

    let kills = [
        ("frame-early", Kill::Frame { index: 40, keep: 7 }),
        (
            "frame-late",
            Kill::Frame {
                index: 9000,
                keep: 0,
            },
        ),
        (
            "checkpoint",
            Kill::Checkpoint {
                index: 1,
                keep: 120,
            },
        ),
    ];
    for (tag, kill) in kills {
        let base = tmp_base(tag);
        let mut options = DurableOptions::at(&base);
        options.cadence = 2048;
        options.kill = kill;

        let crashed_store = MetricStore::new();
        let mut hooks = DurableHooks::create(&options).unwrap();
        let outcome = replay_durable(
            &world,
            &crashed_store,
            SHARDS,
            plan.clone(),
            duration,
            None,
            &mut hooks,
        )
        .unwrap();
        assert!(outcome.aborted, "{tag}: kill point never fired");
        drop(crashed_store); // the crash loses everything in memory

        options.kill = Kill::None;
        let recovered = recover(&world, SHARDS, 0, &options).unwrap();
        assert!(!recovered.end_of_stream, "{tag}: stream ended before kill");
        let mut hooks = DurableHooks::resume(&options, recovered.frames_in_wal).unwrap();
        let resumed = replay_durable(
            &world,
            &recovered.store,
            SHARDS,
            plan.clone(),
            duration,
            Some(recovered.state),
            &mut hooks,
        )
        .unwrap();
        assert!(!resumed.aborted, "{tag}: resume aborted");

        for workers in [1, 3, 8] {
            assert_eq!(
                golden,
                assess(&world, &recovered.store, change, workers),
                "{tag}: report diverged at {workers} workers"
            );
        }
        let _ = fs::remove_dir_all(&base);
    }
}

/// Mid-work-unit kill: the supervisor's kill switch aborts the
/// assessment partway through the work queue. The aborted run withholds
/// its report; the recovered run (same durable store, fresh assessment)
/// matches the golden supervised run byte for byte at every worker count.
#[test]
fn mid_work_unit_kill_withholds_then_recovers_the_report() {
    let (world, change, plan) = crash_world(29);
    let store = MetricStore::new();
    replay_with_faults(&world, &store, SHARDS, plan).unwrap();
    let funnel = Funnel::paper_default();
    let record = world.change_log().get(change).unwrap();
    let kinds = |svc| world.kinds_of_service(svc).to_vec();

    let golden = {
        let config = SupervisorConfig::default();
        let sup = supervise_change(
            &funnel,
            &store,
            world.topology(),
            record,
            &kinds,
            &config,
            &NoFaults,
        )
        .unwrap();
        report_of(&world, &sup.assessment.expect("golden run aborted"))
    };
    // The supervised engine and the plain engine deliver the same report.
    assert_eq!(golden, assess(&world, &store, change, 1));

    for workers in [1, 3, 8] {
        let crashed_config = SupervisorConfig {
            workers,
            abort_after_units: Some(4),
            ..SupervisorConfig::default()
        };
        let crashed = supervise_change(
            &funnel,
            &store,
            world.topology(),
            record,
            &kinds,
            &crashed_config,
            &NoFaults,
        )
        .unwrap();
        assert!(crashed.report.aborted, "kill switch never fired");
        assert!(
            crashed.assessment.is_none(),
            "an aborted run must withhold its report"
        );

        let recovered_config = SupervisorConfig {
            workers,
            ..SupervisorConfig::default()
        };
        let recovered = supervise_change(
            &funnel,
            &store,
            world.topology(),
            record,
            &kinds,
            &recovered_config,
            &NoFaults,
        )
        .unwrap();
        assert_eq!(
            golden,
            report_of(
                &world,
                &recovered.assessment.expect("recovered run aborted")
            ),
            "recovered supervised report diverged at {workers} workers"
        );
    }
}

/// A probe whose injected "fault" is a panic: the poisoned-input model —
/// the assessment code itself falls over on this key, every attempt.
struct PanicOn(KpiKey);

impl FaultProbe for PanicOn {
    fn fault(&self, key: &KpiKey, _attempt: u32) -> Option<InjectedFault> {
        assert!(*key != self.0, "poisoned work unit");
        None
    }
}

/// A poisoned work unit costs exactly one verdict: the offending key is
/// downgraded to `Inconclusive` with a `SupervisorQuarantined` quality
/// issue, and every other item matches the clean run bit for bit — at
/// every worker count.
#[test]
fn poisoned_unit_degrades_one_verdict_and_nothing_else() {
    let (world, change, plan) = crash_world(31);
    let store = MetricStore::new();
    replay_with_faults(&world, &store, SHARDS, plan).unwrap();
    let funnel = Funnel::paper_default();
    let record = world.change_log().get(change).unwrap();
    let kinds = |svc| world.kinds_of_service(svc).to_vec();

    let clean = funnel
        .assess_change_with(&store, world.topology(), record, &kinds)
        .unwrap();
    // Poison a key that the clean run attributed, so the downgrade is
    // visible (a caused verdict becomes inconclusive).
    let poisoned = clean
        .caused_items()
        .next()
        .expect("crash world produced no caused item")
        .key;

    for workers in [1, 3, 8] {
        let config = SupervisorConfig {
            workers,
            max_retries: 2,
            ..SupervisorConfig::default()
        };
        let sup = supervise_change(
            &funnel,
            &store,
            world.topology(),
            record,
            &kinds,
            &config,
            &PanicOn(poisoned),
        )
        .unwrap();
        assert_eq!(sup.report.quarantined, vec![poisoned]);
        let assessment = sup.assessment.expect("poisoned run must still deliver");
        assert_eq!(assessment.items.len(), clean.items.len());
        for (got, want) in assessment.items.iter().zip(&clean.items) {
            assert_eq!(got.key, want.key);
            if got.key == poisoned {
                assert_eq!(
                    got.verdict,
                    Verdict::Inconclusive {
                        awaiting_backfill: false
                    }
                );
                assert!(got
                    .quality
                    .report
                    .issues
                    .contains(&QualityIssue::SupervisorQuarantined));
            } else {
                assert_eq!(
                    format!("{got:?}"),
                    format!("{want:?}"),
                    "non-poisoned item diverged at {workers} workers"
                );
            }
        }
    }
}

/// Mid-reassessment kill: the process dies after interim verdicts were
/// absorbed into the re-assessment queue but before the partition healed.
/// The checkpointed queue state survives; recovery restores it, the heal
/// completes, and the re-assessed final report matches the uninterrupted
/// run — without double-upgrading anything.
#[test]
fn mid_reassessment_kill_resumes_the_queue_from_the_checkpoint() {
    let mut b = WorldBuilder::new(SimConfig::days(37, 8));
    let svc = b.add_service("prod.reheal", 6).unwrap();
    let minute = 7 * 1440 + 300;
    let change = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            2,
            minute,
            ChangeEffect::none().with_level_shift(
                KpiKind::PageViewResponseDelay,
                EffectScope::TreatedInstances,
                90.0,
            ),
            "t",
        )
        .unwrap();
    let world = b.build();
    let plan = FaultPlan::none().with_partition(PartitionWindow {
        scope: PartitionScope::Collector,
        start: minute - 20,
        duration: 45,
        heal: HealMode::StaggeredCatchUp {
            queue: 64,
            per_minute: 1,
        },
    });
    let funnel = Funnel::paper_default();
    let record = world.change_log().get(change).unwrap().clone();
    let kinds = |svc| world.kinds_of_service(svc).to_vec();

    let interim_at = minute as usize + 15;
    let run_interim = |store: &MetricStore| {
        replay_prefix(&world, store, SHARDS, plan.clone(), interim_at).unwrap();
        funnel
            .assess_change_with(store, world.topology(), &record, &kinds)
            .unwrap()
    };

    // Golden, uninterrupted: interim → absorb → heal → reassess → final.
    let golden = {
        let interim_store = MetricStore::new();
        let mut interim = run_interim(&interim_store);
        let mut queue = ReassessmentQueue::new();
        assert!(queue.absorb(&interim, funnel.config()) > 0);
        let healed = MetricStore::new();
        replay_with_faults(&world, &healed, SHARDS, plan.clone()).unwrap();
        let upgrades = queue
            .reassess(&funnel, &healed, world.topology(), &record)
            .unwrap();
        assert!(interim.apply_upgrades(upgrades) > 0);
        report_of(&world, &interim)
    };

    // Crashed: the queue state reaches a checkpoint, then the process
    // dies. Only the checkpoint directory survives.
    let base = tmp_base("reassess");
    let options = DurableOptions::at(&base);
    {
        let interim_store = MetricStore::new();
        let interim = run_interim(&interim_store);
        let mut queue = ReassessmentQueue::new();
        queue.absorb(&interim, funnel.config());
        let mut checkpoints = CheckpointStore::open(&options.checkpoint_dir).unwrap();
        checkpoints
            .write(&Checkpoint {
                wal_frames: 0,
                entries: interim_store.export_entries(),
                collector: CollectorState::new(SHARDS),
                queue: queue.export_state(),
            })
            .unwrap();
        // Crash: `interim`, `queue`, and the store all drop here.
    }

    let recovered = recover(&world, SHARDS, 0, &options).unwrap();
    assert!(recovered.used_checkpoint);
    let mut queue = ReassessmentQueue::from_state(recovered.queue);
    assert!(!queue.is_empty(), "queue state lost in the crash");

    // Recovery re-derives the interim assessment from the restored store;
    // re-absorbing must not duplicate the checkpointed items.
    let mut interim = funnel
        .assess_change_with(&recovered.store, world.topology(), &record, &kinds)
        .unwrap();
    assert_eq!(queue.absorb(&interim, funnel.config()), 0);

    // The heal completes after recovery; the resumed loop finishes.
    let healed = MetricStore::new();
    replay_with_faults(&world, &healed, SHARDS, plan).unwrap();
    let upgrades = queue
        .reassess(&funnel, &healed, world.topology(), &record)
        .unwrap();
    assert!(interim.apply_upgrades(upgrades) > 0);
    assert!(queue.is_empty());
    assert_eq!(golden, report_of(&world, &interim));

    // Nothing left to double-upgrade on the next loop iteration.
    let again = queue
        .reassess(&funnel, &healed, world.topology(), &record)
        .unwrap();
    assert!(again.is_empty());
    let _ = fs::remove_dir_all(&base);
}
