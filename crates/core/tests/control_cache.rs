//! Control-group caching is a pure memo: cache-on and cache-off runs of the
//! DiD stage produce bit-identical item assessments.
//!
//! [`Funnel::assess_key`] builds a fresh `AssessCache` per call — every
//! control fetch is a miss, i.e. the cache-off path. [`Funnel::assess_keys`]
//! runs the same keys through the fan-out engine where workers share one
//! warm cache per thread — the cache-on path. Both must agree byte for byte,
//! and the hit/miss counters surfaced through `funnel_obs` must account for
//! every lookup. One `#[test]` covers both because the obs registry is
//! process-global.

use funnel_core::pipeline::{enumerate_work_units, Funnel};
use funnel_core::FunnelConfig;
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::kpi::KpiKind;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_topology::change::{ChangeId, ChangeKind};
use funnel_topology::impact::identify_impact_set;

/// A service large enough that many treated items share each control group,
/// so the cache-on run genuinely exercises hits.
fn cached_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(31, 8));
    let svc = b.add_service("prod.cache", 7).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        70.0,
    );
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 3, 7 * 1440 + 300, effect, "c")
        .unwrap();
    (b.build(), id)
}

#[test]
fn cache_on_and_cache_off_agree_bit_for_bit() {
    let (world, change) = cached_world();
    let record = world.change_log().get(change).expect("logged");
    let impact_set = identify_impact_set(world.topology(), record).expect("impact set");
    let work = enumerate_work_units(&impact_set, record, &|s| world.kinds_of_service(s).to_vec());
    assert!(
        work.len() >= 10,
        "need a non-trivial work list, got {}",
        work.len()
    );

    let mut config = FunnelConfig::paper_default();
    config.assess.workers = 3;
    let funnel = Funnel::new(config);

    // Cache-on: the batch path shares a per-worker cache. Count its lookups
    // via the obs counters the engine flushes at merge time.
    funnel_obs::enable();
    funnel_obs::reset();
    let batched = funnel
        .assess_keys(&world, world.topology(), record, &work)
        .expect("batch assessment");
    let warm = funnel_obs::snapshot();
    funnel_obs::disable();
    funnel_obs::reset();

    let hits = warm
        .counters
        .get(funnel_obs::names::CONTROL_CACHE_HITS)
        .copied()
        .unwrap_or(0);
    let misses = warm
        .counters
        .get(funnel_obs::names::CONTROL_CACHE_MISSES)
        .copied()
        .unwrap_or(0);
    assert!(
        hits > 0,
        "shared-cache run produced no hits (misses = {misses})"
    );
    assert!(misses > 0, "every distinct control group is one miss");

    // Cache-off: one fresh cache per item, so every control fetch rebuilds.
    // The memo must be invisible in the output.
    assert_eq!(batched.len(), work.len());
    for (key, cached_item) in work.iter().zip(&batched) {
        let cold_item = funnel
            .assess_key(&world, world.topology(), record, *key)
            .expect("single-key assessment");
        assert_eq!(
            format!("{cold_item:?}"),
            format!("{cached_item:?}"),
            "cache changed the assessment of {key:?}"
        );
    }
}
