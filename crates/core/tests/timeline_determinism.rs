//! The windowed telemetry artifacts are deterministic, and the
//! self-monitor that reads them is both sensitive and quiet.
//!
//! * **Byte identity per configuration** — under the `SimClock`, running
//!   the same assessment twice yields byte-identical
//!   `obs_timeline.json` and `trace.json` documents, at every worker
//!   count.
//! * **Worker invariance** — the worker-invariant slice of the timeline
//!   (verdict counters, work-unit totals, detect/DiD spans) is
//!   byte-identical across 1, 3, and 8 workers. (The full document
//!   cannot be: `assess.workers` and the cache hit/miss split genuinely
//!   depend on the pool size.)
//! * **Streaming vs. batch** — the per-window verdict counters agree
//!   between the streaming engine and the batch pipeline on the same
//!   feed: both attribute verdicts to the change's own minute.
//! * **Interleaving invariance** — the collector's per-minute series are
//!   attributed by each frame's own data minute, so the nondeterministic
//!   cross-shard arrival order at the collector cannot move them: two
//!   3-shard replays produce byte-identical documents. (Counts scale
//!   with the shard count itself — each shard sends one frame per
//!   minute — so different shard counts are different workloads.)
//! * **Self-monitoring** — `run_selfmon` over a partitioned replay's own
//!   telemetry flags the ingest collapse near the injected minute (true
//!   positive), while the clean replay stays healthy (zero false
//!   positives).
//!
//! One `#[test]` runs the whole matrix: the recording flag, registry,
//! window cursor, and sim clock are process-global.

use funnel_core::pipeline::Funnel;
use funnel_core::selfmon::{run_selfmon, SelfMonConfig};
use funnel_core::{FunnelConfig, StreamConfig, StreamEngine};
use funnel_obs::clock::SimClock;
use funnel_obs::timeline::TimelineReport;
use funnel_obs::trace::chrome_trace_json;
use funnel_sim::agent::replay_with_faults;
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::faults::{FaultPlan, HealMode, PartitionScope, PartitionWindow};
use funnel_sim::kpi::KpiKind;
use funnel_sim::live::LiveFeed;
use funnel_sim::store::MetricStore;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_sst::SstConfig;
use funnel_topology::change::{ChangeId, ChangeKind};
use std::collections::BTreeMap;

/// Timeline prefixes that must not depend on the worker count: per-window
/// verdicts, work-unit totals and queue depth, the detection and DiD
/// stages (their spans parent on `assess.item` in serial and parallel
/// mode alike), and everything from the collector.
const WORKER_INVARIANT: &[&str] = &[
    "collector.",
    "assess.verdict_",
    "assess.work_units_total",
    "assess.work_queue_depth",
    "detect.",
    "did.",
];

fn shifted_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(17, 8));
    let svc = b.add_service("prod.timeline", 6).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        85.0,
    );
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 200, effect, "t")
        .unwrap();
    (b.build(), id)
}

/// Runs one batch assessment with a fresh registry and returns the
/// timeline snapshot (recording stays enabled).
fn assessed_timeline(world: &World, change: ChangeId, workers: usize) -> TimelineReport {
    funnel_obs::reset();
    let mut config = FunnelConfig::paper_default();
    config.assess.workers = workers;
    Funnel::new(config).assess_change(world, change).unwrap();
    funnel_obs::timeline_snapshot()
}

/// A compact world for the streaming leg (quick SST keeps the replay
/// fast).
fn streamed_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig {
        seed: 5,
        start: 0,
        duration: 2880,
    });
    let svc = b.add_service("prod.timeline.stream", 3).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        9.0,
    );
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, 1700, effect, "t")
        .unwrap();
    (b.build(), id)
}

fn quick_config() -> FunnelConfig {
    let mut c = FunnelConfig::paper_default();
    c.sst = SstConfig::quick();
    c
}

fn stream_timeline(world: &World, change: ChangeId, feed: &LiveFeed) -> TimelineReport {
    funnel_obs::reset();
    let config = quick_config();
    let mut stream_cfg = StreamConfig::paired_with(&config);
    stream_cfg.ring_capacity = StreamConfig::capacity_for(&config, 2880);
    let kinds: BTreeMap<_, _> = world
        .topology()
        .services()
        .map(|(id, _)| (id, world.kinds_of_service(id).to_vec()))
        .collect();
    let record = world.change_log().get(change).unwrap().clone();
    let mut engine = StreamEngine::new(config, stream_cfg, kinds);
    engine.track_change(world.topology(), record).unwrap();
    for (minute, batch) in feed.arrivals() {
        for &m in batch {
            engine.offer(m);
        }
        engine.tick(minute);
    }
    funnel_obs::timeline_snapshot()
}

fn batch_feed_timeline(world: &World, change: ChangeId, feed: &LiveFeed) -> TimelineReport {
    funnel_obs::reset();
    let store = MetricStore::new();
    for (_, batch) in feed.arrivals() {
        for m in batch {
            store.append(m.key, m.minute, m.value);
        }
    }
    let record = world.change_log().get(change).unwrap().clone();
    let kinds: BTreeMap<_, _> = world
        .topology()
        .services()
        .map(|(id, _)| (id, world.kinds_of_service(id).to_vec()))
        .collect();
    Funnel::new(quick_config())
        .assess_change_with(&store.snapshot(), world.topology(), &record, &|svc| {
            kinds.get(&svc).cloned().unwrap_or_default()
        })
        .unwrap();
    funnel_obs::timeline_snapshot()
}

/// A plain fleet world (no change needed — the chaos leg watches the
/// collector, not an assessment).
fn fleet_world() -> World {
    let mut b = WorldBuilder::new(SimConfig::days(11, 2));
    b.add_service("prod.fleet", 4).unwrap();
    b.build()
}

fn replayed_timeline(world: &World, shards: usize, faults: FaultPlan) -> TimelineReport {
    funnel_obs::reset();
    let store = MetricStore::new();
    replay_with_faults(world, &store, shards, faults).unwrap();
    funnel_obs::timeline_snapshot()
}

const PARTITION_START: u64 = 1700;
const PARTITION_MINUTES: u64 = 180;

fn partition_plan() -> FaultPlan {
    FaultPlan::none().with_partition(PartitionWindow {
        scope: PartitionScope::Collector,
        start: PARTITION_START,
        duration: PARTITION_MINUTES,
        heal: HealMode::SilentDrop,
    })
}

#[test]
fn timeline_and_trace_are_deterministic_and_selfmon_sees_faults() {
    // Span durations under the sim clock are a pure function of the code
    // path (all zero here — the clock never advances), which is what makes
    // full-document byte identity possible.
    SimClock::install();
    let (world, change) = shifted_world();

    // ── Recording off: the timeline stays empty and writes cost nothing.
    funnel_obs::disable();
    funnel_obs::reset();
    Funnel::paper_default()
        .assess_change(&world, change)
        .unwrap();
    assert!(
        funnel_obs::timeline_snapshot().is_empty(),
        "disabled recorder must leave the timeline empty"
    );

    // ── Recording on: byte identity per config, invariance across them.
    funnel_obs::enable();
    let mut restricted = Vec::new();
    for workers in [1usize, 3, 8] {
        let first = assessed_timeline(&world, change, workers);
        let second = assessed_timeline(&world, change, workers);
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "workers={workers}: timeline bytes moved between identical runs"
        );
        assert_eq!(
            chrome_trace_json(&first),
            chrome_trace_json(&second),
            "workers={workers}: trace bytes moved between identical runs"
        );
        assert!(first.records() > 0, "workers={workers}: nothing recorded");
        let slice = first.restrict_to(WORKER_INVARIANT);
        assert!(
            !slice.is_empty(),
            "workers={workers}: invariant slice is empty"
        );
        restricted.push((workers, slice.to_json(), chrome_trace_json(&slice)));
    }
    for (workers, timeline, trace) in &restricted[1..] {
        assert_eq!(
            &restricted[0].1, timeline,
            "invariant timeline slice diverged between 1 and {workers} workers"
        );
        assert_eq!(
            &restricted[0].2, trace,
            "invariant trace slice diverged between 1 and {workers} workers"
        );
    }

    // ── Streaming vs. batch: both paths put every verdict in the change's
    // own minute window.
    let (stream_world, stream_change) = streamed_world();
    let feed = LiveFeed::from_store(&stream_world.materialize().unwrap());
    let streamed = stream_timeline(&stream_world, stream_change, &feed);
    let batched = batch_feed_timeline(&stream_world, stream_change, &feed);
    let stream_verdicts = streamed.restrict_to(&["assess.verdict_"]);
    assert!(
        !stream_verdicts.is_empty(),
        "streaming run recorded no verdict windows"
    );
    assert_eq!(
        stream_verdicts.to_json(),
        batched.restrict_to(&["assess.verdict_"]).to_json(),
        "streaming and batch verdict timelines diverged"
    );

    // ── Collector replay: frame-minute attribution makes the document
    // immune to the nondeterministic cross-shard arrival interleaving.
    let fleet = fleet_world();
    let clean = replayed_timeline(&fleet, 3, FaultPlan::none());
    let clean_again = replayed_timeline(&fleet, 3, FaultPlan::none());
    let collector_slice = clean.restrict_to(&["collector."]);
    assert!(
        collector_slice.windows() > 100,
        "replay should spread ingest over the whole timeline, got {} windows",
        collector_slice.windows()
    );
    assert_eq!(
        clean.to_json(),
        clean_again.to_json(),
        "collector timeline diverged between identical 3-shard replays"
    );

    // ── FUNNEL watches FUNNEL: the clean replay is healthy, the
    // partitioned replay's ingest collapse is declared near the fault.
    let selfmon = SelfMonConfig::default();
    let clean_health = run_selfmon(&clean, &selfmon).unwrap();
    assert!(
        clean_health.healthy(),
        "false positive on a clean replay: {clean_health:?}"
    );

    let faulted = replayed_timeline(&fleet, 3, partition_plan());
    let faulted_health = run_selfmon(&faulted, &selfmon).unwrap();
    assert!(
        !faulted_health.healthy(),
        "partition went undetected: {faulted_health:?}"
    );
    let ingest = faulted_health
        .series
        .iter()
        .find(|s| s.name == funnel_obs::names::FRAMES_INGESTED)
        .unwrap();
    assert!(
        !ingest.alerts.is_empty(),
        "ingest collapse must alert: {faulted_health:?}"
    );
    let alert = &ingest.alerts[0];
    assert!(
        alert.first_exceeded_at >= PARTITION_START.saturating_sub(40)
            && alert.first_exceeded_at <= PARTITION_START + PARTITION_MINUTES + 40,
        "alert should bracket the partition window: {alert:?}"
    );
    // And the verdict is reproducible down to the byte.
    assert_eq!(
        faulted_health.to_json(),
        run_selfmon(&replayed_timeline(&fleet, 3, partition_plan()), &selfmon)
            .unwrap()
            .to_json(),
        "self-monitor verdict moved between identical faulted replays"
    );

    funnel_obs::disable();
    funnel_obs::reset();
    SimClock::uninstall();
}
