//! Worker-count determinism of the batch assessment engine.
//!
//! The contract under test: the parallel engine is a latency knob, never a
//! results knob. A full partition-heal story — interim assessment against a
//! degraded store, collector backfill, queued re-assessment — must produce
//! byte-identical serialized output at 1, 3, and 8 workers, and the
//! deterministic merge must erase any arrival order a scheduler could
//! produce.

use funnel_core::parallel::merge;
use funnel_core::pipeline::{ChangeAssessment, Funnel, ItemAssessment};
use funnel_core::reassess::ReassessmentQueue;
use funnel_core::report::render;
use funnel_core::FunnelConfig;
use funnel_sim::agent::{replay_prefix, replay_with_faults};
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::faults::{FaultPlan, HealMode, PartitionScope, PartitionWindow};
use funnel_sim::kpi::KpiKind;
use funnel_sim::store::MetricStore;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_topology::change::{ChangeId, ChangeKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A dark-launch world where a collector partition darkens the whole fleet
/// across the change minute, healing by staggered catch-up.
fn partitioned_world() -> (World, ChangeId, FaultPlan) {
    let mut b = WorldBuilder::new(SimConfig::days(31, 8));
    let svc = b.add_service("prod.par", 6).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        90.0,
    );
    let minute = 7 * 1440 + 300;
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, minute, effect, "t")
        .unwrap();
    let plan = FaultPlan::none().with_partition(PartitionWindow {
        scope: PartitionScope::Collector,
        start: minute - 20,
        duration: 45,
        heal: HealMode::StaggeredCatchUp {
            queue: 64,
            per_minute: 1,
        },
    });
    (b.build(), id, plan)
}

fn funnel_with(workers: usize) -> Funnel {
    let mut config = FunnelConfig::paper_default();
    config.assess.workers = workers;
    Funnel::new(config)
}

/// Serializes everything an operator would ever see from an assessment.
fn fingerprint(world: &World, assessment: &ChangeAssessment) -> String {
    format!("{assessment:?}\n{}", render(world.topology(), assessment))
}

/// The full partition-heal story at one worker count, returning the
/// serialized interim report, upgrade batch, and final report.
fn run_story(world: &World, change: ChangeId, plan: &FaultPlan, workers: usize) -> [String; 3] {
    let record = world.change_log().get(change).unwrap().clone();
    let funnel = funnel_with(workers);
    let kinds = |svc| world.kinds_of_service(svc).to_vec();

    // Interim: cut off mid-partition; repairable items join the queue.
    let interim_store = MetricStore::new();
    replay_prefix(
        world,
        &interim_store,
        3,
        plan.clone(),
        record.minute as usize + 15,
    )
    .unwrap();
    let mut assessment = funnel
        .assess_change_with(&interim_store, world.topology(), &record, &kinds)
        .unwrap();
    let interim_fp = fingerprint(world, &assessment);
    let mut queue = ReassessmentQueue::new();
    assert!(queue.absorb(&assessment, funnel.config()) > 0);

    // Heal: full replay backfills the dark span; the queue re-runs every
    // healed window through the same engine.
    let healed_store = MetricStore::new();
    replay_with_faults(world, &healed_store, 3, plan.clone()).unwrap();
    let upgrades = queue
        .reassess(&funnel, &healed_store, world.topology(), &record)
        .unwrap();
    assert!(!upgrades.is_empty());
    assert!(queue.is_empty());
    let upgrades_fp = format!("{upgrades:?}");
    assessment.apply_upgrades(upgrades);
    [interim_fp, upgrades_fp, fingerprint(world, &assessment)]
}

#[test]
fn partition_heal_story_is_byte_identical_across_worker_counts() {
    let (world, change, plan) = partitioned_world();
    let serial = run_story(&world, change, &plan, 1);
    for workers in [3, 8] {
        let parallel = run_story(&world, change, &plan, workers);
        for (stage, (a, b)) in ["interim", "upgrades", "final"]
            .iter()
            .zip(serial.iter().zip(&parallel))
        {
            assert_eq!(a, b, "{stage} report diverged at {workers} workers");
        }
    }
    // The final story attributes the real impact after the heal.
    let final_fp = &serial[2];
    assert!(
        final_fp.contains("Caused"),
        "post-heal report attributes nothing"
    );
}

/// Fisher–Yates with the workspace's deterministic generator.
fn shuffle(items: &mut [ItemAssessment], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

#[test]
fn merge_erases_any_arrival_order() {
    let (world, change, plan) = partitioned_world();
    let record = world.change_log().get(change).unwrap().clone();
    let store = MetricStore::new();
    replay_with_faults(&world, &store, 3, plan).unwrap();
    let kinds = |svc| world.kinds_of_service(svc).to_vec();
    let items = funnel_with(1)
        .assess_change_with(&store, world.topology(), &record, &kinds)
        .unwrap()
        .items;
    assert!(items.len() > 10, "fixture too small to stress the merge");
    let expected = format!("{:?}", merge(items.clone()));

    // 50 seeded shuffles stand in for 50 adversarial schedulers: whatever
    // order results arrive in, the merged report must not move a byte.
    for seed in 0..50u64 {
        let mut shuffled = items.clone();
        shuffle(&mut shuffled, &mut StdRng::seed_from_u64(seed));
        let merged = format!("{:?}", merge(shuffled));
        assert_eq!(
            expected, merged,
            "merge depended on arrival order (seed {seed})"
        );
    }
}
