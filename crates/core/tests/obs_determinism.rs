//! Observability is write-only: recording on or off, at any worker count,
//! the assessment bytes never move.
//!
//! This is the obs counterpart of `parallel_determinism.rs` — the whole
//! matrix {obs off, obs on} × {1, 3, 8 workers} must produce one
//! fingerprint (debug form + rendered operator report). A single `#[test]`
//! runs the whole matrix because the recording flag and registry are
//! process-global; splitting it across tests would race under the parallel
//! test runner.

use funnel_core::pipeline::{ChangeAssessment, Funnel};
use funnel_core::report::render;
use funnel_core::supervise::{supervise_change, FaultProbe, InjectedFault, SupervisorConfig};
use funnel_core::FunnelConfig;
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_topology::change::{ChangeId, ChangeKind};

fn shifted_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(17, 8));
    let svc = b.add_service("prod.obs", 6).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        85.0,
    );
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 200, effect, "t")
        .unwrap();
    (b.build(), id)
}

fn fingerprint(world: &World, assessment: &ChangeAssessment) -> String {
    format!("{assessment:?}\n{}", render(world.topology(), assessment))
}

fn assess(world: &World, change: ChangeId, workers: usize) -> ChangeAssessment {
    let mut config = FunnelConfig::paper_default();
    config.assess.workers = workers;
    Funnel::new(config).assess_change(world, change).unwrap()
}

#[test]
fn recording_never_changes_assessment_bytes() {
    let (world, change) = shifted_world();

    funnel_obs::disable();
    funnel_obs::reset();
    let baseline_assessment = assess(&world, change, 1);
    let items = baseline_assessment.items.len() as u64;
    let baseline = fingerprint(&world, &baseline_assessment);
    for workers in [3, 8] {
        assert_eq!(
            baseline,
            fingerprint(&world, &assess(&world, change, workers)),
            "obs off: diverged at {workers} workers"
        );
    }
    let silent = funnel_obs::snapshot();
    assert!(
        silent.counters.is_empty() && silent.spans.is_empty(),
        "disabled recorder must record nothing"
    );

    funnel_obs::enable();
    for workers in [1, 3, 8] {
        funnel_obs::reset();
        assert_eq!(
            baseline,
            fingerprint(&world, &assess(&world, change, workers)),
            "obs on: diverged at {workers} workers"
        );
        // The instrumentation genuinely ran — and its own aggregate is
        // order-insensitive: verdict counters, work-unit totals, and span
        // call counts are the same at every worker count.
        let report = funnel_obs::snapshot();
        assert_eq!(
            report.counters[funnel_obs::names::VERDICT_CAUSED]
                + report.counters[funnel_obs::names::VERDICT_NOT_CAUSED]
                + report
                    .counters
                    .get(funnel_obs::names::VERDICT_INCONCLUSIVE)
                    .copied()
                    .unwrap_or(0),
            items,
            "obs on ({workers} workers): verdict counters must cover every item"
        );
        assert_eq!(
            report.gauges[funnel_obs::names::WORK_UNITS_TOTAL],
            items,
            "obs on ({workers} workers): work-unit gauge"
        );
        assert_eq!(
            report.spans[funnel_obs::names::SPAN_ASSESS_ITEM].count,
            items,
            "obs on ({workers} workers): item span count"
        );
    }

    // The supervised engine honours the same invariant — and carries its
    // own vocabulary. A probe that injects one transient fault on an
    // attributed key makes the retry machinery genuinely run without
    // changing a byte of the delivered assessment.
    let funnel = Funnel::paper_default();
    let record = world.change_log().get(change).unwrap().clone();
    let kinds = |svc| world.kinds_of_service(svc).to_vec();
    let target = baseline_assessment
        .caused_items()
        .next()
        .expect("shifted world produced no caused item")
        .key;
    let supervised = |workers: usize, probe: &dyn FaultProbe| {
        let config = SupervisorConfig {
            workers,
            ..SupervisorConfig::default()
        };
        supervise_change(
            &funnel,
            &world,
            world.topology(),
            &record,
            &kinds,
            &config,
            probe,
        )
        .unwrap()
    };

    funnel_obs::disable();
    funnel_obs::reset();
    for workers in [1, 3, 8] {
        let sup = supervised(workers, &TransientOnce(target));
        assert_eq!(sup.report.retries, 1, "probe must have fired");
        assert_eq!(
            baseline,
            fingerprint(&world, &sup.assessment.expect("run aborted")),
            "obs off: supervised run diverged at {workers} workers"
        );
    }

    funnel_obs::enable();
    for workers in [1, 3, 8] {
        funnel_obs::reset();
        let sup = supervised(workers, &TransientOnce(target));
        assert_eq!(
            baseline,
            fingerprint(&world, &sup.assessment.expect("run aborted")),
            "obs on: supervised run diverged at {workers} workers"
        );
        // Supervisor counters are seeded and order-insensitive: one
        // retried unit, nothing restarted, nothing quarantined — the same
        // aggregate at every worker count.
        let report = funnel_obs::snapshot();
        assert_eq!(
            report.counters[funnel_obs::names::SUPERVISOR_RETRIES],
            1,
            "obs on ({workers} workers): retry counter"
        );
        assert_eq!(
            report.counters[funnel_obs::names::SUPERVISOR_RESTARTS],
            0,
            "obs on ({workers} workers): restart counter"
        );
        assert_eq!(
            report.counters[funnel_obs::names::SUPERVISOR_QUARANTINED],
            0,
            "obs on ({workers} workers): quarantine counter"
        );
    }

    funnel_obs::disable();
    funnel_obs::reset();
}

/// Injects one transient fault on the target key's first attempt.
struct TransientOnce(KpiKey);

impl FaultProbe for TransientOnce {
    fn fault(&self, key: &KpiKey, attempt: u32) -> Option<InjectedFault> {
        (*key == self.0 && attempt == 0).then_some(InjectedFault::Transient)
    }
}
