//! Observability is write-only: recording on or off, at any worker count,
//! the assessment bytes never move.
//!
//! This is the obs counterpart of `parallel_determinism.rs` — the whole
//! matrix {obs off, obs on} × {1, 3, 8 workers} must produce one
//! fingerprint (debug form + rendered operator report). A single `#[test]`
//! runs the whole matrix because the recording flag and registry are
//! process-global; splitting it across tests would race under the parallel
//! test runner.

use funnel_core::pipeline::{ChangeAssessment, Funnel};
use funnel_core::report::render;
use funnel_core::supervise::{supervise_change, FaultProbe, InjectedFault, SupervisorConfig};
use funnel_core::{FunnelConfig, StreamConfig, StreamEngine};
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::live::LiveFeed;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_sst::SstConfig;
use funnel_topology::change::{ChangeId, ChangeKind};

fn shifted_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(17, 8));
    let svc = b.add_service("prod.obs", 6).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        85.0,
    );
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 200, effect, "t")
        .unwrap();
    (b.build(), id)
}

fn fingerprint(world: &World, assessment: &ChangeAssessment) -> String {
    format!("{assessment:?}\n{}", render(world.topology(), assessment))
}

fn assess(world: &World, change: ChangeId, workers: usize) -> ChangeAssessment {
    let mut config = FunnelConfig::paper_default();
    config.assess.workers = workers;
    Funnel::new(config).assess_change(world, change).unwrap()
}

#[test]
fn recording_never_changes_assessment_bytes() {
    let (world, change) = shifted_world();

    funnel_obs::disable();
    funnel_obs::reset();
    let baseline_assessment = assess(&world, change, 1);
    let items = baseline_assessment.items.len() as u64;
    let baseline = fingerprint(&world, &baseline_assessment);
    for workers in [3, 8] {
        assert_eq!(
            baseline,
            fingerprint(&world, &assess(&world, change, workers)),
            "obs off: diverged at {workers} workers"
        );
    }
    let silent = funnel_obs::snapshot();
    assert!(
        silent.counters.is_empty() && silent.spans.is_empty(),
        "disabled recorder must record nothing"
    );

    funnel_obs::enable();
    for workers in [1, 3, 8] {
        funnel_obs::reset();
        assert_eq!(
            baseline,
            fingerprint(&world, &assess(&world, change, workers)),
            "obs on: diverged at {workers} workers"
        );
        // The instrumentation genuinely ran — and its own aggregate is
        // order-insensitive: verdict counters, work-unit totals, and span
        // call counts are the same at every worker count.
        let report = funnel_obs::snapshot();
        assert_eq!(
            report.counters[funnel_obs::names::VERDICT_CAUSED]
                + report.counters[funnel_obs::names::VERDICT_NOT_CAUSED]
                + report
                    .counters
                    .get(funnel_obs::names::VERDICT_INCONCLUSIVE)
                    .copied()
                    .unwrap_or(0),
            items,
            "obs on ({workers} workers): verdict counters must cover every item"
        );
        assert_eq!(
            report.gauges[funnel_obs::names::WORK_UNITS_TOTAL],
            items,
            "obs on ({workers} workers): work-unit gauge"
        );
        assert_eq!(
            report.spans[funnel_obs::names::SPAN_ASSESS_ITEM].count,
            items,
            "obs on ({workers} workers): item span count"
        );
    }

    // The supervised engine honours the same invariant — and carries its
    // own vocabulary. A probe that injects one transient fault on an
    // attributed key makes the retry machinery genuinely run without
    // changing a byte of the delivered assessment.
    let funnel = Funnel::paper_default();
    let record = world.change_log().get(change).unwrap().clone();
    let kinds = |svc| world.kinds_of_service(svc).to_vec();
    let target = baseline_assessment
        .caused_items()
        .next()
        .expect("shifted world produced no caused item")
        .key;
    let supervised = |workers: usize, probe: &dyn FaultProbe| {
        let config = SupervisorConfig {
            workers,
            ..SupervisorConfig::default()
        };
        supervise_change(
            &funnel,
            &world,
            world.topology(),
            &record,
            &kinds,
            &config,
            probe,
        )
        .unwrap()
    };

    funnel_obs::disable();
    funnel_obs::reset();
    for workers in [1, 3, 8] {
        let sup = supervised(workers, &TransientOnce(target));
        assert_eq!(sup.report.retries, 1, "probe must have fired");
        assert_eq!(
            baseline,
            fingerprint(&world, &sup.assessment.expect("run aborted")),
            "obs off: supervised run diverged at {workers} workers"
        );
    }

    funnel_obs::enable();
    for workers in [1, 3, 8] {
        funnel_obs::reset();
        let sup = supervised(workers, &TransientOnce(target));
        assert_eq!(
            baseline,
            fingerprint(&world, &sup.assessment.expect("run aborted")),
            "obs on: supervised run diverged at {workers} workers"
        );
        // Supervisor counters are seeded and order-insensitive: one
        // retried unit, nothing restarted, nothing quarantined — the same
        // aggregate at every worker count.
        let report = funnel_obs::snapshot();
        assert_eq!(
            report.counters[funnel_obs::names::SUPERVISOR_RETRIES],
            1,
            "obs on ({workers} workers): retry counter"
        );
        assert_eq!(
            report.counters[funnel_obs::names::SUPERVISOR_RESTARTS],
            0,
            "obs on ({workers} workers): restart counter"
        );
        assert_eq!(
            report.counters[funnel_obs::names::SUPERVISOR_QUARANTINED],
            0,
            "obs on ({workers} workers): quarantine counter"
        );
    }

    // The streaming engine closes the matrix: ticking the same feed
    // through `StreamEngine` with recording {off, on} × {1, 3, 8} workers
    // produces one fingerprint of completed assessments and engine stats.
    let (stream_world, stream_change) = streamed_world();
    let feed = LiveFeed::from_store(&stream_world.materialize().unwrap());

    funnel_obs::disable();
    funnel_obs::reset();
    let stream_baseline = stream_fingerprint(&stream_world, stream_change, &feed, 1);
    for workers in [3, 8] {
        assert_eq!(
            stream_baseline,
            stream_fingerprint(&stream_world, stream_change, &feed, workers),
            "obs off: streaming diverged at {workers} workers"
        );
    }

    funnel_obs::enable();
    for workers in [1, 3, 8] {
        funnel_obs::reset();
        assert_eq!(
            stream_baseline,
            stream_fingerprint(&stream_world, stream_change, &feed, workers),
            "obs on: streaming diverged at {workers} workers"
        );
        // Streaming instrumentation genuinely ran, and its aggregate is
        // order-insensitive: tick/fold counters don't depend on workers.
        let report = funnel_obs::snapshot();
        assert_eq!(
            report.counters[funnel_obs::names::STREAM_TICKS],
            feed.arrivals().count() as u64,
            "obs on ({workers} workers): tick counter"
        );
        assert!(
            report.counters[funnel_obs::names::STREAM_SCORES] > 0,
            "obs on ({workers} workers): no folds recorded"
        );
        assert!(
            report.counters[funnel_obs::names::STREAM_VERDICTS] > 0,
            "obs on ({workers} workers): no verdicts recorded"
        );
        assert_eq!(
            report.spans[funnel_obs::names::SPAN_STREAM_TICK].count,
            feed.arrivals().count() as u64,
            "obs on ({workers} workers): tick span count"
        );
    }

    funnel_obs::disable();
    funnel_obs::reset();
}

/// A compact shifted world for the streaming leg (quick SST keeps the
/// tick-by-tick replay fast enough to run six times).
fn streamed_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig {
        seed: 5,
        start: 0,
        duration: 2880,
    });
    let svc = b.add_service("prod.obs.stream", 3).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        9.0,
    );
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, 1700, effect, "t")
        .unwrap();
    (b.build(), id)
}

fn stream_fingerprint(world: &World, change: ChangeId, feed: &LiveFeed, workers: usize) -> String {
    let mut config = FunnelConfig::paper_default();
    config.sst = SstConfig::quick();
    config.assess.workers = workers;
    let mut stream_cfg = StreamConfig::paired_with(&config);
    stream_cfg.ring_capacity = StreamConfig::capacity_for(&config, 2880);
    stream_cfg.workers = workers;
    let kinds: std::collections::BTreeMap<_, _> = world
        .topology()
        .services()
        .map(|(id, _)| (id, world.kinds_of_service(id).to_vec()))
        .collect();
    let record = world.change_log().get(change).unwrap().clone();
    let mut engine = StreamEngine::new(config, stream_cfg, kinds);
    engine.track_change(world.topology(), record).unwrap();
    let mut completed = Vec::new();
    for (minute, batch) in feed.arrivals() {
        for &m in batch {
            engine.offer(m);
        }
        completed.extend(engine.tick(minute).completed);
    }
    format!("{completed:?}\n{:?}", engine.stats())
}

/// Injects one transient fault on the target key's first attempt.
struct TransientOnce(KpiKey);

impl FaultProbe for TransientOnce {
    fn fault(&self, key: &KpiKey, attempt: u32) -> Option<InjectedFault> {
        (*key == self.0 && attempt == 0).then_some(InjectedFault::Transient)
    }
}
