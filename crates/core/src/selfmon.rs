//! Self-monitoring — FUNNEL watches FUNNEL.
//!
//! The paper's thesis is that a service's own KPI timelines, run through
//! SST + persistence, reveal behaviour changes rapidly and robustly. The
//! assessment pipeline is itself an internet-scale service component, and
//! its windowed telemetry (`funnel_obs::timeline`) is a set of per-minute
//! KPIs: frames ingested per minute, frames quarantined per minute, work
//! units shed per minute. This module closes the loop: it adapts those
//! timeline series into [`TimeSeries`] form and runs the *same* detector
//! the pipeline applies to customer KPIs — [`DetectorRunner`] over
//! IKA-accelerated robust SST with the persistence rule — so a collector
//! partition, a quarantine storm, or sustained load shedding is detected
//! from the pipeline's own telemetry alone, with no second monitoring
//! stack.
//!
//! Determinism: the input is a [`TimelineReport`] snapshot (byte-stable by
//! construction), the adaptation is a dense zero-fill over the snapshot's
//! own window range, and the detector is the deterministic batch runner —
//! so [`PipelineHealthReport::to_json`] is byte-identical across runs and
//! worker counts for any worker-invariant series selection.
//!
//! ```
//! use funnel_core::selfmon::{run_selfmon, SelfMonConfig};
//!
//! funnel_obs::reset();
//! funnel_obs::enable();
//! for minute in 0..60 {
//!     funnel_obs::timeline_counter_add(funnel_obs::names::FRAMES_INGESTED, minute, 100);
//! }
//! let report = run_selfmon(&funnel_obs::timeline_snapshot(), &SelfMonConfig::default()).unwrap();
//! assert!(report.healthy()); // a flat ingest rate raises no alert
//! funnel_obs::disable();
//! ```

use funnel_detect::detector::DetectorRunner;
use funnel_detect::sst_adapter::SstDetector;
use funnel_obs::names;
use funnel_obs::timeline::TimelineReport;
use funnel_sst::{FastSst, SstConfig};
use funnel_timeseries::series::{MinuteBin, TimeSeries};

/// Schema version of the [`PipelineHealthReport`] JSON document.
pub const SCHEMA_VERSION: u32 = 1;

/// Default artifact path for [`PipelineHealthReport::write_json`].
pub const DEFAULT_HEALTH_PATH: &str = "results/pipeline_health.json";

/// Which timeline counters the self-monitor watches and how it scores
/// them. The defaults watch the three series whose behaviour changes map
/// onto the pipeline's failure modes: a collector partition dents
/// `collector.frames_ingested`, a decode/agent fault spikes
/// `collector.frames_quarantined`, and overload shows up as sustained
/// `stream.shed`.
#[derive(Debug, Clone)]
pub struct SelfMonConfig {
    /// Timeline counter names to watch (each becomes one SST run).
    pub series: Vec<String>,
    /// SST layout for the health detector. Defaults to
    /// [`SstConfig::paper_default`] (ω = 9, W = 34) — the *same* layout the
    /// pipeline applies to customer KPIs, and wide enough that a clean
    /// level shift keeps its score elevated across the whole persistence
    /// run (the narrower `quick` preset spikes for only ~2 windows and
    /// never satisfies the 7-minute rule).
    pub sst: SstConfig,
    /// Declaration threshold on the min–max-normalized series.
    pub threshold: f64,
    /// Persistence rule in minutes (windows), as in the main pipeline.
    pub persistence: usize,
}

impl Default for SelfMonConfig {
    fn default() -> Self {
        Self {
            series: vec![
                names::FRAMES_INGESTED.to_string(),
                names::FRAMES_QUARANTINED.to_string(),
                names::STREAM_SHED.to_string(),
            ],
            sst: SstConfig::paper_default(),
            threshold: 0.5,
            persistence: 7,
        }
    }
}

/// One declared behaviour change in a watched pipeline series.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthAlert {
    /// Minute the change was declared (persistence run completed).
    pub declared_at: MinuteBin,
    /// Detector's estimate of when the change became visible.
    pub first_exceeded_at: MinuteBin,
    /// Peak SST score during the persistent run.
    pub peak_score: f64,
}

/// Health verdict for one watched series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesHealth {
    /// The timeline counter name.
    pub name: String,
    /// Number of minute windows the adapted series spans (dense length).
    pub windows: u64,
    /// Sum over all windows — the counter's total in the snapshot.
    pub total: u64,
    /// Declared behaviour changes, in declaration order. Empty means the
    /// series was flat enough (or too short to score).
    pub alerts: Vec<HealthAlert>,
}

/// The "FUNNEL watches FUNNEL" report: one SST verdict per watched
/// pipeline telemetry series.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineHealthReport {
    /// Per-series verdicts, in the order configured.
    pub series: Vec<SeriesHealth>,
}

impl PipelineHealthReport {
    /// True when no watched series raised an alert.
    pub fn healthy(&self) -> bool {
        self.series.iter().all(|s| s.alerts.is_empty())
    }

    /// Total alerts across every watched series.
    pub fn alert_count(&self) -> usize {
        self.series.iter().map(|s| s.alerts.len()).sum()
    }

    /// Serializes the report as deterministic JSON (fixed key order,
    /// `{:?}`-formatted floats), mirroring the other `results/` artifacts.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("{{\n  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"healthy\": {},\n", self.healthy()));
        out.push_str(&format!("  \"alerts_total\": {},\n", self.alert_count()));
        out.push_str("  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {:?}, \"windows\": {}, \"total\": {}, \"alerts\": [",
                s.name, s.windows, s.total
            ));
            for (j, a) in s.alerts.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"declared_at\": {}, \"first_exceeded_at\": {}, \"peak_score\": {:?}}}",
                    a.declared_at, a.first_exceeded_at, a.peak_score
                ));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes [`PipelineHealthReport::to_json`] to `path`, creating parent
    /// directories as needed.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Adapts one timeline counter into a dense [`TimeSeries`]: the counter's
/// per-window sums, zero-filled over the *snapshot's* full window range
/// (not just the counter's own), so "this series went silent while the
/// pipeline kept running" reads as a drop to zero rather than a shorter
/// series. Returns an empty series when the snapshot has no windows at
/// all.
pub fn timeline_series(report: &TimelineReport, name: &str) -> TimeSeries {
    let Some((start, end)) = snapshot_range(report) else {
        return TimeSeries::empty(0);
    };
    let len = (end - start + 1) as usize;
    let mut series = TimeSeries::zeros(start, len);
    for (window, value) in report.counter_series(name) {
        series.set(window, value as f64);
    }
    series
}

/// The `[min, max]` window range across every record in the snapshot, or
/// `None` when the timeline is empty.
fn snapshot_range(report: &TimelineReport) -> Option<(MinuteBin, MinuteBin)> {
    let mut range: Option<(MinuteBin, MinuteBin)> = None;
    let counters = report.counters.keys().map(|(_, w)| *w);
    let gauges = report.gauges.keys().map(|(_, w)| *w);
    let histograms = report.histograms.keys().map(|(_, w)| *w);
    let spans = report.spans.keys().map(|(_, _, w)| *w);
    for w in counters.chain(gauges).chain(histograms).chain(spans) {
        range = Some(match range {
            None => (w, w),
            Some((lo, hi)) => (lo.min(w), hi.max(w)),
        });
    }
    range
}

/// Runs the self-monitor: every configured series is adapted with
/// [`timeline_series`], min–max normalized (as the paper normalizes its
/// KPI plots), and scored by SST + persistence. A series shorter than one
/// SST window scores no alerts — too little telemetry to judge.
///
/// Emits its own telemetry while running (`selfmon.run` span,
/// `selfmon.series_checked` / `selfmon.alerts` counters) — aggregate-only,
/// so analyzing a snapshot never perturbs windowed timelines.
///
/// # Errors
///
/// Returns the validation message when `config.sst` is not a usable SST
/// layout — the self-monitor never panics, because it runs inside the
/// pipeline it is judging.
pub fn run_selfmon(
    report: &TimelineReport,
    config: &SelfMonConfig,
) -> Result<PipelineHealthReport, String> {
    let _span = funnel_obs::span!(names::SPAN_SELFMON);
    let runner = DetectorRunner::new(
        SstDetector::fast(FastSst::try_new(config.sst.clone())?),
        config.threshold,
        config.persistence,
    );
    let mut series_out = Vec::with_capacity(config.series.len());
    for name in &config.series {
        funnel_obs::counter_add(names::SELFMON_SERIES, 1);
        let series = timeline_series(report, name);
        let total: u64 = report.counter_series(name).iter().map(|(_, v)| v).sum();
        let alerts: Vec<HealthAlert> = if series.len() >= config.sst.window_len() {
            runner
                .run(&series.normalized())
                .into_iter()
                .map(|e| HealthAlert {
                    declared_at: e.declared_at,
                    first_exceeded_at: e.first_exceeded_at,
                    peak_score: e.peak_score,
                })
                .collect()
        } else {
            Vec::new()
        };
        funnel_obs::counter_add(names::SELFMON_ALERTS, alerts.len() as u64);
        series_out.push(SeriesHealth {
            name: name.clone(),
            windows: series.len() as u64,
            total,
            alerts,
        });
    }
    Ok(PipelineHealthReport { series: series_out })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_report(build: impl FnOnce()) -> TimelineReport {
        funnel_obs::reset();
        funnel_obs::enable();
        build();
        let snapshot = funnel_obs::timeline_snapshot();
        funnel_obs::disable();
        snapshot
    }

    #[test]
    fn flat_series_is_healthy() {
        let report = synthetic_report(|| {
            for minute in 0..120 {
                funnel_obs::timeline_counter_add(names::FRAMES_INGESTED, minute, 500);
            }
        });
        let health = run_selfmon(&report, &SelfMonConfig::default()).unwrap();
        assert!(health.healthy(), "flat ingest must not alert: {health:?}");
        assert_eq!(health.series.len(), 3);
        assert_eq!(health.series[0].windows, 120);
        assert_eq!(health.series[0].total, 120 * 500);
    }

    #[test]
    fn ingest_collapse_raises_an_alert() {
        let report = synthetic_report(|| {
            for minute in 0..120 {
                // A partition at minute 60 silences ingest entirely.
                let rate = if minute < 60 { 500 } else { 0 };
                if rate > 0 {
                    funnel_obs::timeline_counter_add(names::FRAMES_INGESTED, minute, rate);
                }
                // Keep the snapshot range anchored past the silence.
                funnel_obs::timeline_counter_add(names::STREAM_TICKS, minute, 1);
            }
        });
        let health = run_selfmon(&report, &SelfMonConfig::default()).unwrap();
        let ingest = &health.series[0];
        assert_eq!(ingest.name, names::FRAMES_INGESTED);
        assert_eq!(
            ingest.windows, 120,
            "zero-fill must extend to the snapshot's full range"
        );
        assert!(
            !ingest.alerts.is_empty(),
            "a total ingest collapse must raise an alert: {health:?}"
        );
        let alert = &ingest.alerts[0];
        assert!(
            (55..=80).contains(&alert.first_exceeded_at),
            "change point should bracket the fault minute: {alert:?}"
        );
        assert!(!health.healthy());
    }

    #[test]
    fn too_short_series_never_alerts() {
        let report = synthetic_report(|| {
            funnel_obs::timeline_counter_add(names::FRAMES_INGESTED, 3, 1);
            funnel_obs::timeline_counter_add(names::FRAMES_INGESTED, 5, 900);
        });
        let health = run_selfmon(&report, &SelfMonConfig::default()).unwrap();
        assert!(health.healthy());
        assert_eq!(health.series[0].windows, 3);
    }

    #[test]
    fn report_json_is_deterministic_and_versioned() {
        let report = synthetic_report(|| {
            for minute in 0..40 {
                funnel_obs::timeline_counter_add(names::FRAMES_INGESTED, minute, 10);
            }
        });
        let config = SelfMonConfig::default();
        let a = run_selfmon(&report, &config).unwrap().to_json();
        let b = run_selfmon(&report, &config).unwrap().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema_version\": 1,"));
        assert!(a.contains("\"healthy\": true"));
    }
}
