//! The online pipeline — FUNNEL as deployed (paper §5).
//!
//! In deployment FUNNEL subscribes to the metric store and scores every
//! watched KPI *as the measurements arrive*, minute by minute, declaring a
//! KPI change the moment the filtered SST score has stayed above threshold
//! for the persistence window. Each declaration is emitted on a crossbeam
//! channel for the assessment layer (and ultimately the operations team);
//! detection latency is therefore bounded by the persistence rule, not by
//! any batch schedule — this is how the §5.2 incident went from a 1.5-hour
//! manual discovery to a 10-minute automated one.

use crate::config::FunnelConfig;
use crossbeam::channel::{unbounded, Receiver};
use funnel_detect::sst_adapter::SstDetector;
use funnel_detect::WindowScorer;
use funnel_sim::kpi::KpiKey;
use funnel_sim::store::MetricStore;
use funnel_sst::FastSst;
use funnel_timeseries::series::MinuteBin;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A live KPI-change declaration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineDetection {
    /// Which KPI changed.
    pub key: KpiKey,
    /// The minute the change was declared (end of the persistence run).
    pub declared_at: MinuteBin,
    /// The minute the score first exceeded the threshold.
    pub first_exceeded_at: MinuteBin,
    /// Peak filtered SST score in the run.
    pub peak_score: f64,
}

/// Per-key streaming state: ring buffer + persistence counter.
struct KeyState {
    buf: Vec<f64>,
    run_len: usize,
    run_start: MinuteBin,
    run_peak: f64,
    armed: bool,
}

impl KeyState {
    fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            run_len: 0,
            run_start: 0,
            run_peak: 0.0,
            armed: true,
        }
    }
}

/// Handle to a running online pipeline; detections arrive on
/// [`OnlinePipeline::detections`]. Dropping the handle does not stop the
/// worker — it stops when the store's subscription closes.
pub struct OnlinePipeline {
    receiver: Receiver<OnlineDetection>,
    worker: Option<JoinHandle<OnlineStats>>,
}

/// Counters from a finished online run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OnlineStats {
    /// Measurements consumed.
    pub measurements: usize,
    /// Windows scored (measurements beyond each key's warm-up).
    pub windows_scored: usize,
    /// Detections emitted.
    pub detections: usize,
}

impl OnlinePipeline {
    /// Starts watching `keys` (or everything, if `None`) on `store`.
    ///
    /// The worker thread consumes the subscription until the store stops
    /// publishing (all senders dropped ⇒ the replay finished) and then
    /// returns its statistics via [`OnlinePipeline::join`].
    pub fn start(
        store: &Arc<MetricStore>,
        keys: Option<Vec<KpiKey>>,
        config: FunnelConfig,
    ) -> Self {
        let sub = store.subscribe(keys, 65_536);
        let (tx, rx) = unbounded();
        let worker = std::thread::spawn(move || {
            let scorer = SstDetector::fast(FastSst::new(config.sst.clone()));
            let w = scorer.window_len();
            // BTreeMap, not HashMap: should per-key state ever be iterated
            // (flush, snapshot, report), the order must be deterministic.
            let mut states: BTreeMap<KpiKey, KeyState> = BTreeMap::new();
            let mut stats = OnlineStats::default();

            while let Some(m) = sub.recv() {
                stats.measurements += 1;
                let state = states.entry(m.key).or_insert_with(|| KeyState::new(w));
                if state.buf.len() == w {
                    state.buf.remove(0);
                }
                state.buf.push(m.value);
                if state.buf.len() < w {
                    continue; // warm-up
                }
                stats.windows_scored += 1;
                let score = scorer.score(&state.buf);
                if score >= config.sst_threshold {
                    if state.run_len == 0 {
                        state.run_start = m.minute;
                        state.run_peak = score;
                    } else {
                        state.run_peak = state.run_peak.max(score);
                    }
                    state.run_len += 1;
                    if state.armed && state.run_len >= config.persistence_minutes {
                        stats.detections += 1;
                        state.armed = false;
                        let _ = tx.send(OnlineDetection {
                            key: m.key,
                            declared_at: m.minute,
                            first_exceeded_at: state.run_start,
                            peak_score: state.run_peak,
                        });
                    }
                } else {
                    state.run_len = 0;
                    state.armed = true;
                }
            }
            stats
        });
        Self {
            receiver: rx,
            worker: Some(worker),
        }
    }

    /// The detection stream.
    pub fn detections(&self) -> &Receiver<OnlineDetection> {
        &self.receiver
    }

    /// Waits for the worker to finish (the store must have stopped
    /// publishing) and returns its statistics. If the worker died, the
    /// stats are zeroed rather than re-raising the panic: a dead scorer
    /// degrades the assessment (no detections after its death) but must
    /// not take the caller's thread down with it.
    pub fn join(mut self) -> OnlineStats {
        self.worker
            .take()
            .map(|w| w.join().unwrap_or_default())
            .unwrap_or_default()
    }

    /// Waits for the worker, then drains whatever detections are still
    /// queued (declarations can land between a caller's last drain and the
    /// stream's close). Worker death zeroes the stats, as in
    /// [`OnlinePipeline::join`].
    pub fn finish(mut self) -> (Vec<OnlineDetection>, OnlineStats) {
        let stats = self
            .worker
            .take()
            .map(|w| w.join().unwrap_or_default())
            .unwrap_or_default();
        let mut rest = Vec::new();
        while let Ok(d) = self.receiver.try_recv() {
            rest.push(d);
        }
        (rest, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_sim::agent::replay;
    use funnel_sim::effect::{ChangeEffect, EffectScope};
    use funnel_sim::kpi::KpiKind;
    use funnel_sim::world::{SimConfig, WorldBuilder};
    use funnel_topology::change::ChangeKind;
    use funnel_topology::impact::Entity;

    #[test]
    fn online_detects_injected_shift_during_replay() {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 21,
            start: 0,
            duration: 300,
        });
        let svc = b.add_service("prod.live", 3).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            KpiKind::PageViewResponseDelay,
            EffectScope::TreatedInstances,
            90.0,
        );
        b.deploy_change(ChangeKind::Upgrade, svc, 1, 150, effect, "latency bug")
            .unwrap();
        let world = b.build();
        let treated = world.topology().instances_of(svc)[0].id;
        let key = KpiKey::new(Entity::Instance(treated), KpiKind::PageViewResponseDelay);

        let store = MetricStore::shared();
        let pipeline =
            OnlinePipeline::start(&store, Some(vec![key]), FunnelConfig::paper_default());
        replay(&world, &store, 2).unwrap();
        // Replay done; drop our handle on the store so the subscription
        // closes once drained... the subscription sender lives in the store;
        // emulate shutdown by dropping the Arc clones we hold.
        drop(store);
        let mut declared = Vec::new();
        while let Ok(d) = pipeline.detections().try_recv() {
            declared.push(d.declared_at);
        }
        // The worker may still be scoring queued measurements; finish()
        // joins it and drains whatever was declared after our early drain.
        let (rest, stats) = pipeline.finish();
        declared.extend(rest.iter().map(|d| d.declared_at));
        assert!(stats.measurements > 0);
        assert!(stats.detections >= 1, "stats: {stats:?}");
        // At least one declaration lands shortly after the minute-150 onset
        // (the others, if any, are noise refires the DiD layer would kill).
        assert!(
            declared.iter().any(|&m| (150..=175).contains(&m)),
            "declarations at {declared:?}"
        );
    }
}
