//! Operator-facing rendering of assessments (Fig. 3, step 12: "Deliver to
//! OP").

use crate::pipeline::{AssessmentMode, ChangeAssessment, Verdict};
use funnel_sim::kpi::KpiKey;
use funnel_topology::impact::Entity;
use funnel_topology::model::Topology;

/// Renders a KPI key with topology names where available.
pub fn describe_key(topology: &Topology, key: &KpiKey) -> String {
    let entity = match key.entity {
        Entity::Server(s) => topology
            .server_hostname(s)
            .map(|h| format!("server {h}"))
            .unwrap_or_else(|_| format!("server #{}", s.0)),
        Entity::Instance(i) => match topology.instance(i) {
            Ok(inst) => {
                let svc = topology
                    .service_name(inst.service)
                    .map(|n| n.to_string())
                    .unwrap_or_else(|_| format!("svc#{}", inst.service.0));
                format!("instance {svc}#{}", i.0)
            }
            Err(_) => format!("instance #{}", i.0),
        },
        Entity::Service(s) => topology
            .service_name(s)
            .map(|n| format!("service {n}"))
            .unwrap_or_else(|_| format!("service #{}", s.0)),
    };
    format!("{entity} / {}", key.kind)
}

/// Renders a full assessment as a plain-text operator report.
pub fn render(topology: &Topology, assessment: &ChangeAssessment) -> String {
    let mut out = String::new();
    let caused: Vec<_> = assessment.caused_items().collect();
    let inconclusive = assessment.inconclusive_items().count();
    out.push_str(&format!(
        "change #{}: {} impact-set KPIs assessed, {} KPI change(s) attributed, {} inconclusive\n",
        assessment.change.0,
        assessment.items.len(),
        caused.len(),
        inconclusive
    ));
    for item in &assessment.items {
        if item.verdict == Verdict::NotCaused && item.detection.is_none() {
            continue; // quiet KPIs are summarized by the count above
        }
        let status = match (item.verdict, &item.detection) {
            (Verdict::Caused, _) => "CAUSED  ",
            (Verdict::Inconclusive { .. }, _) => "INCONCL.",
            (Verdict::NotCaused, Some(_)) => "external",
            (Verdict::NotCaused, None) => "-",
        };
        let mode = match item.mode {
            AssessmentMode::DarkLaunchControl => "dark-launch control",
            AssessmentMode::SeasonalHistory => "seasonal history",
        };
        let alpha = item
            .did
            .as_ref()
            .map(|(v, _)| format!("α={:+.2}", v.alpha()))
            .unwrap_or_else(|| "α=n/a".into());
        let when = item
            .detection
            .as_ref()
            .map(|d| format!("declared@{}", d.declared_at))
            .unwrap_or_default();
        // Data-provenance annotations: coverage when the window had gaps,
        // plus any statistical quality flags.
        let mut notes = String::new();
        if item.quality.coverage < 0.999 {
            notes.push_str(&format!(" cov={:.0}%", item.quality.coverage * 100.0));
        }
        if !item.quality.report.is_good() {
            notes.push_str(&format!(" quality:{:?}", item.quality.report.issues));
        }
        if item.verdict.awaiting_backfill() {
            // Repairable: a partition gap blocks the verdict; the item sits
            // in the re-assessment queue until the collector backfills it.
            notes.push_str(" awaiting-backfill");
        }
        out.push_str(&format!(
            "  [{status}] {} ({mode}, {alpha}) {when}{notes}\n",
            describe_key(topology, &item.key)
        ));
    }
    out
}

/// The operator-facing roll-back recommendation for one change.
#[derive(Debug, Clone, PartialEq)]
pub enum Recommendation {
    /// No attributed KPI change: continue the roll-out.
    RollForward,
    /// Attributed KPI changes exist; `worst_alpha` is the largest |α| and
    /// `kpis` the number of attributed KPIs. The operations team decides
    /// whether the movement was *intended* (e.g. Fig. 6's load balancing)
    /// — FUNNEL reports both positive and negative changes (§1).
    Review {
        /// Number of KPIs attributed to the change.
        kpis: usize,
        /// Largest |α| among them (normalized units).
        worst_alpha: f64,
    },
}

/// Summarizes an assessment into a recommendation, with attributed items
/// ranked by |α| (most severe first).
pub fn recommend(
    assessment: &ChangeAssessment,
) -> (Recommendation, Vec<&crate::pipeline::ItemAssessment>) {
    let mut caused: Vec<_> = assessment.caused_items().collect();
    caused.sort_by(|a, b| {
        let alpha = |i: &crate::pipeline::ItemAssessment| {
            i.did.as_ref().map(|(v, _)| v.alpha().abs()).unwrap_or(0.0)
        };
        alpha(b).total_cmp(&alpha(a))
    });
    if caused.is_empty() {
        (Recommendation::RollForward, caused)
    } else {
        let worst = caused
            .first()
            .and_then(|i| i.did.as_ref())
            .map(|(v, _)| v.alpha().abs())
            .unwrap_or(0.0);
        (
            Recommendation::Review {
                kpis: caused.len(),
                worst_alpha: worst,
            },
            caused,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Funnel;
    use funnel_sim::effect::{ChangeEffect, EffectScope};
    use funnel_sim::kpi::KpiKind;
    use funnel_sim::world::{SimConfig, WorldBuilder};
    use funnel_topology::change::ChangeKind;

    #[test]
    fn report_mentions_caused_kpis() {
        let mut b = WorldBuilder::new(SimConfig::days(5, 8));
        let svc = b.add_service("prod.report", 4).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            KpiKind::PageViewResponseDelay,
            EffectScope::TreatedInstances,
            90.0,
        );
        let id = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 100, effect, "x")
            .unwrap();
        let world = b.build();
        let a = Funnel::paper_default().assess_change(&world, id).unwrap();
        let text = render(world.topology(), &a);
        assert!(text.contains("change #0"));
        assert!(text.contains("CAUSED"), "{text}");
        assert!(text.contains("page_view_response_delay"), "{text}");
        assert!(text.contains("prod.report"), "{text}");
    }

    #[test]
    fn recommendation_ranks_by_alpha() {
        let mut b = WorldBuilder::new(SimConfig::days(6, 8));
        let svc = b.add_service("prod.rank", 4).unwrap();
        let effect = ChangeEffect::none()
            .with_level_shift(
                KpiKind::PageViewResponseDelay,
                EffectScope::TreatedInstances,
                90.0,
            )
            .with_level_shift(
                KpiKind::AccessFailureCount,
                EffectScope::TreatedInstances,
                25.0,
            );
        let id = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 100, effect, "x")
            .unwrap();
        let world = b.build();
        let a = Funnel::paper_default().assess_change(&world, id).unwrap();
        let (rec, ranked) = recommend(&a);
        match rec {
            Recommendation::Review { kpis, worst_alpha } => {
                assert_eq!(kpis, ranked.len());
                assert!(worst_alpha > 2.0);
            }
            Recommendation::RollForward => panic!("impact missed"),
        }
        // Ranked by decreasing |α|.
        let alphas: Vec<f64> = ranked
            .iter()
            .filter_map(|i| i.did.as_ref().map(|(v, _)| v.alpha().abs()))
            .collect();
        assert!(alphas.windows(2).all(|w| w[0] >= w[1]), "{alphas:?}");
    }

    #[test]
    fn clean_change_recommends_roll_forward() {
        let mut b = WorldBuilder::new(SimConfig::days(8, 8));
        let svc = b.add_service("prod.clean", 4).unwrap();
        let id = b
            .deploy_change(
                ChangeKind::ConfigChange,
                svc,
                2,
                7 * 1440 + 100,
                ChangeEffect::none(),
                "noop",
            )
            .unwrap();
        let world = b.build();
        let a = Funnel::paper_default().assess_change(&world, id).unwrap();
        let (rec, ranked) = recommend(&a);
        assert_eq!(rec, Recommendation::RollForward);
        assert!(ranked.is_empty());
    }

    #[test]
    fn describe_key_handles_all_entities() {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 1,
            start: 0,
            duration: 10,
        });
        let svc = b.add_service("prod.nm", 1).unwrap();
        let world = b.build();
        let t = world.topology();
        let inst = t.instances_of(svc)[0];
        assert!(describe_key(
            t,
            &KpiKey::new(Entity::Service(svc), KpiKind::PageViewCount)
        )
        .contains("service prod.nm"));
        assert!(describe_key(
            t,
            &KpiKey::new(Entity::Instance(inst.id), KpiKind::PageViewCount)
        )
        .contains("instance prod.nm#0"));
        assert!(describe_key(
            t,
            &KpiKey::new(Entity::Server(inst.server), KpiKind::CpuUtilization)
        )
        .contains("server prod.nm-host-0"));
    }
}
