//! The opt-in diagnosis stage: converts a finished assessment into the
//! pre-digested input `funnel-diag` consumes and runs its three analyses
//! (population-bias check, contribution ranking, evidence dossier).
//!
//! The stage is strictly **read-only over** the assessment: it re-reads
//! series from the same [`KpiSource`], it never mutates an
//! [`ItemAssessment`], and enabling it cannot perturb a single byte of the
//! assessment report (the `diag_determinism` integration test byte-compares
//! diag-on against diag-off to prove it). Control-pool membership is
//! selected by the *same* `control_keys_for`/`treated_keys_for` helpers
//! (in `crate::pipeline`) the DiD contrast uses, so the bias check can
//! never audit a different pool than the one that decided causality.

use crate::parallel::control_level;
use crate::pipeline::{
    control_keys_for, treated_keys_for, AssessmentMode, ChangeAssessment, Funnel, ItemAssessment,
    Verdict,
};
use crate::report::describe_key;
use crate::source::KpiSource;
use funnel_detect::detector::WindowScorer;
use funnel_detect::sst_adapter::SstDetector;
use funnel_diag::{
    diagnose_change, ChangeInput, ControlMember, DetectionInput, DiagReport, ItemInput, ItemVerdict,
};
use funnel_did::cache::ControlCache;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_timeseries::series::MinuteBin;
use funnel_timeseries::window::SlidingWindows;
use funnel_timeseries::MINUTES_PER_DAY;
use funnel_topology::change::SoftwareChange;
use funnel_topology::impact::{Entity, ImpactSet};
use funnel_topology::model::Topology;
use funnel_topology::ZoneMap;

impl Funnel {
    /// Diagnoses a finished assessment: explains every `Caused` (and, when
    /// [`funnel_diag::DiagConfig::include_inconclusive`] is set, every
    /// `Inconclusive`) item with a population-bias check, a contribution
    /// ranking, and an evidence dossier.
    ///
    /// Returns `None` when the stage is disabled
    /// ([`funnel_diag::DiagConfig::enabled`] is `false`, the default). The
    /// pass is deterministic — same source, same assessment, same report
    /// bytes at any worker count — and read-only: it never alters the
    /// assessment it explains.
    pub fn diagnose(
        &self,
        source: &impl KpiSource,
        topology: &Topology,
        change: &SoftwareChange,
        assessment: &ChangeAssessment,
    ) -> Option<DiagReport> {
        if !self.config().diagnose.enabled {
            return None;
        }
        Some(diagnose_assessment(
            self,
            source,
            topology,
            change,
            &assessment.impact_set,
            &assessment.items,
        ))
    }
}

/// The shared diagnosis body behind [`Funnel::diagnose`] and the streaming
/// engine's completion hook. Callers have already checked `enabled`.
pub(crate) fn diagnose_assessment(
    funnel: &Funnel,
    source: &impl KpiSource,
    topology: &Topology,
    change: &SoftwareChange,
    impact_set: &ImpactSet,
    items: &[ItemAssessment],
) -> DiagReport {
    let _span = funnel_obs::span!(funnel_obs::names::SPAN_DIAG_CHANGE);
    let cfg = &funnel.config().diagnose;
    let period = funnel.config().did.period_minutes;
    // Dark-launch control pools are shared by every item at one
    // (entity level, KPI kind), exactly as in the DiD contrast — memoize
    // the member fetch the same way.
    let mut pools: ControlCache<(u8, KpiKind), Vec<ControlMember>> = ControlCache::new();

    let selected = items.iter().filter(|item| {
        item.verdict.is_caused() || (cfg.include_inconclusive && item.verdict.is_inconclusive())
    });
    let inputs: Vec<ItemInput> = selected
        .filter_map(|item| {
            build_item_input(
                funnel, source, topology, change, impact_set, item, &mut pools, period,
            )
        })
        .collect();

    let input = ChangeInput {
        change_id: change.id.0,
        change_minute: change.minute,
        service: topology
            .service_name(change.service)
            .map(|n| n.to_string())
            .unwrap_or_else(|_| format!("svc#{}", change.service.0)),
        description: change.description.clone(),
        items: inputs,
    };
    let report = diagnose_change(cfg, &input);
    funnel_obs::counter_add(funnel_obs::names::DIAG_REPORTS, 1);
    funnel_obs::counter_add(funnel_obs::names::DIAG_ITEMS, report.items.len() as u64);
    funnel_obs::counter_add(
        funnel_obs::names::DIAG_POPULATION_MISMATCH,
        report.mismatch_count() as u64,
    );
    report
}

/// Converts one assessed item into the diagnosis layer's input: identity,
/// verdict context, DiD statistics, detection evidence, provenance, the
/// SST score trace, and the treated/control pre-window samples the bias
/// check compares. Items whose series vanished from the source (a pruned
/// store) are skipped rather than guessed at.
#[allow(clippy::too_many_arguments)]
fn build_item_input(
    funnel: &Funnel,
    source: &impl KpiSource,
    topology: &Topology,
    change: &SoftwareChange,
    impact_set: &ImpactSet,
    item: &ItemAssessment,
    pools: &mut ControlCache<(u8, KpiKind), Vec<ControlMember>>,
    period: u64,
) -> Option<ItemInput> {
    let key = item.key;
    let series = source.series(&key)?;
    let verdict = match item.verdict {
        Verdict::Caused => ItemVerdict::Caused,
        Verdict::Inconclusive { awaiting_backfill } => {
            ItemVerdict::Inconclusive { awaiting_backfill }
        }
        // The selection filter never admits cleared items.
        Verdict::NotCaused => return None,
    };
    let entity_class = match key.entity {
        Entity::Server(_) => "server",
        Entity::Instance(_) => "instance",
        Entity::Service(_) => "service",
    };
    let mode = match item.mode {
        AssessmentMode::DarkLaunchControl => "dark_launch_control",
        AssessmentMode::SeasonalHistory => "seasonal_history",
    };
    let est = item.did.as_ref().map(|(_, e)| e);

    let pre_from = change.minute.saturating_sub(period);
    let (treated_pre, treated_pre_coverage) =
        treated_pre_samples(source, impact_set, key, pre_from, change.minute);
    let control_members = match item.mode {
        AssessmentMode::DarkLaunchControl => {
            let group = pools.get_or_insert_with((control_level(key.entity), key.kind), || {
                control_keys_for(impact_set, key)
                    .iter()
                    .filter_map(|k| {
                        let s = source.series(k)?;
                        Some(ControlMember {
                            label: describe_key(topology, k),
                            pre: s.slice(pre_from, change.minute).to_vec(),
                            coverage: source.coverage(k, pre_from, change.minute),
                        })
                    })
                    .collect()
            });
            (*group).clone()
        }
        AssessmentMode::SeasonalHistory => {
            let mut members = Vec::new();
            for d in 1..=funnel.config().history_days as u64 {
                let offset = d * MINUTES_PER_DAY as u64;
                if change.minute < offset + period {
                    break;
                }
                let hist = change.minute - offset;
                members.push(ControlMember {
                    label: format!("history:-{d}d"),
                    pre: series.slice(hist - period, hist).to_vec(),
                    coverage: source.coverage(&key, hist - period, hist),
                });
            }
            members
        }
    };

    Some(ItemInput {
        label: describe_key(topology, &key),
        entity_class,
        zone: zones_of(funnel, topology, key.entity),
        kind: key.kind.name().to_string(),
        verdict,
        mode,
        alpha: est.map(|e| e.alpha),
        std_err: est.map(|e| e.std_err),
        t_stat: est.map(|e| e.t_stat),
        ci95: est.map(|e| e.ci95()),
        cell_means: est.map(|e| e.cell_means),
        detection: item.detection.as_ref().map(|d| DetectionInput {
            declared_at: d.declared_at,
            first_exceeded_at: d.first_exceeded_at,
            peak_score: d.peak_score,
        }),
        coverage: item.quality.coverage,
        gaps: source
            .mask(&key)
            .map(|m| m.gaps_in(item.window.0, item.window.1))
            .unwrap_or_default(),
        quality: item
            .quality
            .report
            .issues
            .iter()
            .map(|i| format!("{i:?}"))
            .collect(),
        window: item.window,
        sst_trace: sst_trace(funnel, source, key, item, change.minute),
        treated_pre,
        treated_pre_coverage,
        control_members,
    })
}

fn zones_of(funnel: &Funnel, topology: &Topology, entity: Entity) -> Option<u32> {
    ZoneMap::striped(funnel.config().diagnose.zones).of_entity(topology, entity)
}

/// The treated group's pre-change samples, pooled exactly as the DiD
/// contrast pools them: server/instance items are their own group, the
/// changed service's item aggregates the tinstances.
fn treated_pre_samples(
    source: &impl KpiSource,
    impact_set: &ImpactSet,
    key: KpiKey,
    pre_from: MinuteBin,
    change_minute: MinuteBin,
) -> (Vec<f64>, f64) {
    let keys = treated_keys_for(impact_set, key);
    let mut samples = Vec::new();
    let mut coverages = Vec::new();
    for k in &keys {
        if let Some(s) = source.series(k) {
            samples.extend_from_slice(s.slice(pre_from, change_minute));
            coverages.push(source.coverage(k, pre_from, change_minute));
        }
    }
    let coverage = if coverages.is_empty() {
        0.0
    } else {
        // funnel-lint: allow(float-accumulation-order): Vec built in sorted treated-key order, no hashed container
        coverages.iter().sum::<f64>() / coverages.len() as f64
    };
    (samples, coverage)
}

/// Re-scores the item's assessment window with the pre-validated SST and
/// keeps the `(decision minute, score)` pairs within
/// [`funnel_diag::DiagConfig::trace_radius`] of the anchor (the declared
/// detection minute, or the deployment minute when nothing was declared) —
/// the "what did the detector see" panel of the evidence dossier.
fn sst_trace(
    funnel: &Funnel,
    source: &impl KpiSource,
    key: KpiKey,
    item: &ItemAssessment,
    change_minute: MinuteBin,
) -> Vec<(MinuteBin, f64)> {
    let series = match source.series(&key) {
        Some(s) => s,
        None => return Vec::new(),
    };
    let (lo, to) = item.window;
    let window = funnel_timeseries::series::TimeSeries::new(lo, series.slice(lo, to).to_vec());
    let scorer = SstDetector::fast(funnel.scorer().clone());
    let width = scorer.window_len();
    let anchor = item
        .detection
        .as_ref()
        .map(|d| d.declared_at)
        .unwrap_or(change_minute);
    let radius = funnel.config().diagnose.trace_radius;
    SlidingWindows::new(&window, width)
        .filter(|w| w.decision_minute.abs_diff(anchor) <= radius)
        .map(|w| (w.decision_minute, scorer.score(w.values)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FunnelConfig;
    use funnel_diag::{BiasFlag, DiagConfig};
    use funnel_sim::effect::{ChangeEffect, EffectScope};
    use funnel_sim::world::{SimConfig, WorldBuilder};
    use funnel_topology::change::{ChangeId, ChangeKind};

    fn shifted_world() -> (funnel_sim::world::World, ChangeId) {
        let mut b = WorldBuilder::new(SimConfig::days(17, 8));
        let svc = b.add_service("prod.pipe", 6).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            funnel_sim::kpi::KpiKind::PageViewResponseDelay,
            EffectScope::TreatedInstances,
            80.0,
        );
        let minute = 7 * 1440 + 300;
        let id = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, minute, effect, "diag test")
            .unwrap();
        (b.build(), id)
    }

    #[test]
    fn disabled_stage_returns_none() {
        let (world, change) = shifted_world();
        let funnel = Funnel::paper_default();
        let assessment = funnel.assess_change(&world, change).unwrap();
        let record = world.change_log().get(change).unwrap();
        assert!(funnel
            .diagnose(&world, world.topology(), record, &assessment)
            .is_none());
    }

    #[test]
    fn enabled_stage_explains_caused_items() {
        let (world, change) = shifted_world();
        let mut config = FunnelConfig::paper_default();
        config.diagnose = DiagConfig::on();
        let funnel = Funnel::new(config);
        let assessment = funnel.assess_change(&world, change).unwrap();
        assert!(assessment.has_impact());
        let record = world.change_log().get(change).unwrap();
        let report = funnel
            .diagnose(&world, world.topology(), record, &assessment)
            .unwrap();
        // One diagnosis per caused item, each with evidence and a clean
        // bias check (the simulated pool is honest by construction).
        assert_eq!(report.items.len(), assessment.caused_items().count());
        assert!(!report.ranking.is_empty());
        for item in &report.items {
            assert_eq!(item.verdict, "caused");
            assert_ne!(
                item.bias.flag,
                BiasFlag::PopulationMismatch,
                "{}",
                item.label
            );
            assert!(item.evidence.coverage > 0.0);
        }
        // Deterministic: a second pass produces identical bytes.
        let again = funnel
            .diagnose(&world, world.topology(), record, &assessment)
            .unwrap();
        assert_eq!(report.to_json(), again.to_json());
        // The ranking concentrates on the shifted KPI.
        let top = report.ranking.first().unwrap();
        assert_eq!(top.kind, "page_view_response_delay");
    }

    #[test]
    fn diagnose_is_read_only_over_the_assessment() {
        let (world, change) = shifted_world();
        let mut config = FunnelConfig::paper_default();
        config.diagnose = DiagConfig::on();
        let diag_on = Funnel::new(config);
        let diag_off = Funnel::paper_default();
        let on = diag_on.assess_change(&world, change).unwrap();
        let off = diag_off.assess_change(&world, change).unwrap();
        let record = world.change_log().get(change).unwrap();
        let _ = diag_on.diagnose(&world, world.topology(), record, &on);
        // Enabling diagnosis must not perturb the assessment itself.
        assert_eq!(format!("{on:?}"), format!("{off:?}"));
    }
}
