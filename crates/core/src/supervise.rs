//! The supervised assessment engine: retry, restart, and quarantine around
//! the parallel fan-out.
//!
//! [`parallel`] assumes every work unit either finishes or
//! returns a clean [`FunnelError`]. Production ingest is less polite: a
//! work unit can hit a transient source hiccup, stall past its deadline
//! budget, or turn out to be *poisoned* — an input that makes the
//! assessment code itself fall over, run after run. This module wraps the
//! same worker-pool shape with a per-unit supervisor:
//!
//! * **Retry** — failed attempts are re-run up to
//!   [`SupervisorConfig::max_retries`] times on a capped exponential
//!   backoff schedule. The schedule is *seeded and recorded, never slept*:
//!   the jitter is a pure function of `(seed, key, attempt)`, so a crashed
//!   and recovered run reproduces the exact same schedule and the
//!   simulation never reads a clock.
//! * **Restart** — a unit that blows its per-attempt deadline budget (a
//!   stall, surfaced by the [`FaultProbe`] in this deterministic setting)
//!   is torn down and restarted, counted separately from plain retries.
//! * **Quarantine** — a unit still failing after the retry budget (or one
//!   whose attempt *panicked* — every attempt runs under
//!   [`std::panic::catch_unwind`]) is quarantined: the supervisor
//!   synthesizes a [`Verdict::Inconclusive`] item carrying
//!   [`QualityIssue::SupervisorQuarantined`] instead of aborting the whole
//!   assessment. One poisoned `(entity, kpi)` costs exactly one verdict;
//!   every other item is byte-identical to the fault-free run.
//!
//! Genuine pipeline errors ([`FunnelError`]) are *not* retried: they are
//! deterministic config/topology/data errors, so re-running them is wasted
//! work — they propagate exactly like the unsupervised engine, lowest
//! work-unit index first.
//!
//! Every decision is counted through `funnel-obs`
//! ([`SUPERVISOR_RETRIES`](funnel_obs::names::SUPERVISOR_RETRIES),
//! [`SUPERVISOR_RESTARTS`](funnel_obs::names::SUPERVISOR_RESTARTS),
//! [`SUPERVISOR_QUARANTINED`](funnel_obs::names::SUPERVISOR_QUARANTINED)),
//! and the counters are seeded at zero on every run so they appear in the
//! report even when no fault fires — the CI `chaos-smoke` step greps them.

use crate::parallel::{self, AssessCache};
use crate::pipeline::{
    AssessmentMode, ChangeAssessment, DataQuality, Funnel, FunnelError, ItemAssessment, Verdict,
};
use crate::quality::{QualityIssue, QualityReport};
use crate::source::KpiSource;
use crossbeam::channel;
use funnel_obs::names;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::wire::key_to_bytes;
use funnel_topology::change::SoftwareChange;
use funnel_topology::impact::{identify_impact_set, ImpactSet};
use funnel_topology::model::{ServiceId, Topology};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Supervision policy for one assessment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Worker threads for the fan-out (clamped like the unsupervised
    /// engine: at least 1, at most one per work unit).
    pub workers: usize,
    /// Re-run budget per work unit *after* the first attempt. `0` means
    /// any failure quarantines immediately.
    pub max_retries: u32,
    /// First backoff step in milliseconds; attempt `n` waits
    /// `base * 2^n` (capped), plus seeded jitter.
    pub backoff_base_ms: u64,
    /// Ceiling for the exponential portion of the backoff.
    pub backoff_cap_ms: u64,
    /// Seed for the backoff jitter. Recorded schedules are a pure function
    /// of `(seed, key, attempt)`.
    pub seed: u64,
    /// Per-attempt wall-budget in milliseconds, advisory: the deterministic
    /// harness never reads a clock (the workspace `funnel-lint` determinism
    /// rule forbids it), so overruns are surfaced by the [`FaultProbe`]
    /// as [`InjectedFault::Stall`] rather than by timing the attempt.
    pub deadline_ms: u64,
    /// Kill switch for the chaos harness: abort the run (assessment
    /// withheld, [`SupervisorReport::aborted`] set) once this many work
    /// units have completed. `None` disables it.
    pub abort_after_units: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_retries: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            seed: 2015,
            deadline_ms: 30_000,
            abort_after_units: None,
        }
    }
}

/// A fault injected into one work-unit attempt by a [`FaultProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A transient failure (source hiccup): the attempt fails, a plain
    /// retry follows.
    Transient,
    /// A deadline overrun: the attempt is torn down and restarted, counted
    /// under [`SupervisorReport::restarts`].
    Stall,
}

/// Injects faults into work-unit attempts — the chaos harness's hook into
/// the supervisor.
///
/// The probe is consulted *inside* the per-attempt
/// [`catch_unwind`] boundary, before the real assessment runs. Returning
/// `None` lets the attempt proceed; returning a fault fails it; and a
/// probe that **panics** models a poisoned work unit — the unwind is
/// caught and treated as a crashed attempt, so test probes may `panic!`
/// while the supervisor itself stays panic-free.
pub trait FaultProbe: Sync {
    /// The fault (if any) to inject into `attempt` (0-based) of `key`.
    fn fault(&self, key: &KpiKey, attempt: u32) -> Option<InjectedFault>;
}

/// The fault-free probe: production runs supervise with this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultProbe for NoFaults {
    fn fault(&self, _key: &KpiKey, _attempt: u32) -> Option<InjectedFault> {
        None
    }
}

/// What the supervisor did while producing (or withholding) an assessment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SupervisorReport {
    /// Attempts re-run after a transient failure or caught panic.
    pub retries: u64,
    /// Attempts restarted after a deadline overrun.
    pub restarts: u64,
    /// Work units downgraded to `Inconclusive` after exhausting the retry
    /// budget, in key order.
    pub quarantined: Vec<KpiKey>,
    /// The recorded (never slept) backoff schedule per retried key, in
    /// milliseconds, one entry per retry in attempt order.
    pub backoff_ms: BTreeMap<KpiKey, Vec<u64>>,
    /// Whether the run was killed by
    /// [`SupervisorConfig::abort_after_units`] before finishing.
    pub aborted: bool,
}

/// A supervised assessment: the report always exists; the assessment is
/// withheld when the run was aborted mid-flight.
#[derive(Debug, Clone)]
pub struct Supervised {
    /// The merged assessment, `None` when [`SupervisorReport::aborted`].
    pub assessment: Option<ChangeAssessment>,
    /// What the supervisor observed and decided along the way.
    pub report: SupervisorReport,
}

/// SplitMix64 — the workspace's standard seeded mixer; bit-identical across
/// platforms, which keeps recorded backoff schedules (and the streaming
/// engine's shed ranks) reproducible.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic backoff for retry `attempt` (0-based) of `key`:
/// capped exponential plus seeded jitter in `[0, base)`. Recorded into the
/// report, never slept.
fn backoff_ms(config: &SupervisorConfig, key: KpiKey, attempt: u32) -> u64 {
    let exp = config
        .backoff_base_ms
        .saturating_mul(1u64 << attempt.min(16));
    // Index-free LE packing of the 6 key bytes into the low 48 bits —
    // identical to from_le_bytes([kb[0..6], 0, 0]) but structurally
    // panic-proof for the reachability lint.
    let key_hash = key_to_bytes(key)
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << (8 * i)));
    let jitter_span = config.backoff_base_ms.max(1);
    let jitter =
        splitmix64(config.seed ^ key_hash.rotate_left(17) ^ u64::from(attempt)) % jitter_span;
    exp.min(config.backoff_cap_ms) + jitter
}

/// The synthesized verdict for a quarantined work unit: `Inconclusive`,
/// zero trusted coverage, flagged [`QualityIssue::SupervisorQuarantined`].
/// The window is computed from the change and config alone (the series was
/// never trustworthily read), mirroring the pipeline's window arithmetic
/// without the store clamp.
fn quarantined_item(funnel: &Funnel, change: &SoftwareChange, key: KpiKey) -> ItemAssessment {
    let config = funnel.config();
    let lookback = config.sst.window_len() as u64 + config.warmup_minutes();
    let from = change.minute.saturating_sub(lookback);
    let to = change.minute + config.assessment_minutes + 1;
    funnel_obs::timeline_counter_add(names::VERDICT_INCONCLUSIVE, change.minute, 1);
    ItemAssessment {
        key,
        detection: None,
        did: None,
        mode: AssessmentMode::SeasonalHistory,
        caused: false,
        verdict: Verdict::Inconclusive {
            awaiting_backfill: false,
        },
        quality: DataQuality {
            coverage: 0.0,
            report: QualityReport {
                issues: vec![QualityIssue::SupervisorQuarantined],
            },
        },
        window: (from, to),
    }
}

/// How one supervised work unit ended.
enum UnitOutcome {
    /// Clean (possibly after retries) assessment.
    Done(ItemAssessment),
    /// A genuine pipeline error — deterministic, not retried.
    Failed(FunnelError),
    /// Retry budget exhausted: synthesized quarantine verdict.
    Quarantined(ItemAssessment),
}

/// One unit's full supervised history.
struct UnitRun {
    key: KpiKey,
    outcome: UnitOutcome,
    retries: u64,
    restarts: u64,
    backoff_ms: Vec<u64>,
}

/// What a single attempt produced, from inside the unwind boundary.
enum Attempt {
    Finished(Result<ItemAssessment, FunnelError>),
    Transient,
    Stalled,
}

/// Runs one work unit under supervision: probe → attempt → retry loop →
/// quarantine. Panics from the attempt (poisoned unit, or a panicking test
/// probe) are caught here and consume a retry like any other failure.
#[allow(clippy::too_many_arguments)] // mirrors the pipeline's internal plumbing
fn run_unit<S: KpiSource + Sync>(
    funnel: &Funnel,
    source: &S,
    change: &SoftwareChange,
    impact_set: &ImpactSet,
    key: KpiKey,
    cache: &mut AssessCache,
    config: &SupervisorConfig,
    probe: &dyn FaultProbe,
) -> UnitRun {
    let mut retries = 0u64;
    let mut restarts = 0u64;
    let mut backoff = Vec::new();
    for attempt in 0..=config.max_retries {
        // The probe runs inside the unwind boundary so a panicking probe
        // models a poisoned input crashing the assessment code itself. A
        // panic can leave the worker cache mid-update, but cached windows
        // are pure functions of the read-only source, so a partial entry
        // is at worst absent, never wrong.
        let attempt_result = catch_unwind(AssertUnwindSafe(|| match probe.fault(&key, attempt) {
            Some(InjectedFault::Transient) => Attempt::Transient,
            Some(InjectedFault::Stall) => Attempt::Stalled,
            None => Attempt::Finished(funnel.assess_item(source, change, impact_set, key, cache)),
        }));
        match attempt_result {
            Ok(Attempt::Finished(Ok(item))) => {
                return UnitRun {
                    key,
                    outcome: UnitOutcome::Done(item),
                    retries,
                    restarts,
                    backoff_ms: backoff,
                };
            }
            Ok(Attempt::Finished(Err(e))) => {
                // Deterministic pipeline error: retrying cannot change it.
                return UnitRun {
                    key,
                    outcome: UnitOutcome::Failed(e),
                    retries,
                    restarts,
                    backoff_ms: backoff,
                };
            }
            Ok(Attempt::Transient) => {}
            Ok(Attempt::Stalled) => restarts += 1,
            Err(panic_payload) => drop(panic_payload),
        }
        if attempt < config.max_retries {
            retries += 1;
            backoff.push(backoff_ms(config, key, attempt));
        }
    }
    UnitRun {
        key,
        outcome: UnitOutcome::Quarantined(quarantined_item(funnel, change, key)),
        retries,
        restarts,
        backoff_ms: backoff,
    }
}

/// Assesses one change under supervision: the same enumerate → fan out →
/// merge shape as [`Funnel::assess_change_with`], with every work unit
/// wrapped in the retry/restart/quarantine loop and the whole run subject
/// to the [`SupervisorConfig::abort_after_units`] kill switch.
///
/// Determinism: for a fixed `(config, probe)` the returned assessment and
/// report are byte-identical for any worker count — results merge through
/// the same key-sorted [`parallel::merge`], quarantine lists come out
/// key-sorted, counter addition commutes, and backoff schedules are pure
/// functions of `(seed, key, attempt)`. An *aborted* run's partial tallies
/// do depend on scheduling, which is exactly why the assessment is
/// withheld (`None`) — the chaos harness discards everything but
/// `aborted` from a killed run.
pub fn supervise_change<S: KpiSource + Sync>(
    funnel: &Funnel,
    source: &S,
    topology: &Topology,
    change: &SoftwareChange,
    service_kinds: &dyn Fn(ServiceId) -> Vec<KpiKind>,
    config: &SupervisorConfig,
    probe: &dyn FaultProbe,
) -> Result<Supervised, FunnelError> {
    // Pin the timeline window to the change minute before the span opens
    // (same choke-point discipline as the unsupervised entry).
    funnel_obs::timeline::set_window(change.minute);
    let span = funnel_obs::span!(names::SPAN_ASSESS_CHANGE);
    // Seed the supervisor counters so they appear in every obs report,
    // fault or no fault — the CI chaos-smoke step greps for them.
    funnel_obs::counter_add(names::SUPERVISOR_RETRIES, 0);
    funnel_obs::counter_add(names::SUPERVISOR_QUARANTINED, 0);
    funnel_obs::counter_add(names::SUPERVISOR_RESTARTS, 0);

    let impact_set = identify_impact_set(topology, change)?;
    let work = crate::pipeline::enumerate_work_units(&impact_set, change, service_kinds);
    funnel_obs::timeline_gauge_set(names::WORK_UNITS_TOTAL, change.minute, work.len() as u64);
    let workers = config.workers.clamp(1, work.len().max(1));
    funnel_obs::timeline_gauge_set(names::WORKERS, change.minute, workers as u64);
    funnel_obs::timeline_histogram_record(
        names::WORK_QUEUE_DEPTH,
        change.minute,
        work.len() as u64,
    );

    let abort_limit = config.abort_after_units.unwrap_or(u64::MAX);
    let completed = AtomicU64::new(0);
    let mut runs: Vec<(usize, UnitRun)> = Vec::with_capacity(work.len());

    if workers == 1 {
        let mut cache = AssessCache::new();
        for (index, &key) in work.iter().enumerate() {
            if completed.load(Ordering::Relaxed) >= abort_limit {
                break;
            }
            let run = run_unit(
                funnel,
                source,
                change,
                &impact_set,
                key,
                &mut cache,
                config,
                probe,
            );
            completed.fetch_add(1, Ordering::Relaxed);
            runs.push((index, run));
        }
        parallel::record_cache_stats(&cache);
    } else {
        let (job_tx, job_rx) = channel::unbounded::<(usize, KpiKey)>();
        for unit in work.iter().copied().enumerate() {
            // Cannot fail: both receiver clones below outlive the sends.
            let _ = job_tx.send(unit);
        }
        drop(job_tx);
        let (result_tx, result_rx) = channel::unbounded::<(usize, UnitRun)>();
        let completed = &completed;
        std::thread::scope(|scope| {
            for worker_idx in 0..workers {
                let jobs = job_rx.clone();
                let results = result_tx.clone();
                let impact_set = &impact_set;
                scope.spawn(move || {
                    let worker_span = funnel_obs::span!(names::SPAN_ASSESS_WORKER, worker_idx);
                    let mut cache = AssessCache::new();
                    while let Ok((index, key)) = jobs.recv() {
                        if completed.load(Ordering::Relaxed) >= abort_limit {
                            break;
                        }
                        let run = run_unit(
                            funnel, source, change, impact_set, key, &mut cache, config, probe,
                        );
                        completed.fetch_add(1, Ordering::Relaxed);
                        if results.send((index, run)).is_err() {
                            break; // collector gone; nothing left to report to
                        }
                    }
                    parallel::record_cache_stats(&cache);
                    drop(worker_span);
                    funnel_obs::flush_thread();
                });
            }
            drop(result_tx);
            drop(job_rx);
            while let Ok(run) = result_rx.recv() {
                runs.push(run);
            }
        });
    }

    let aborted = runs.len() < work.len();
    let mut items: Vec<ItemAssessment> = Vec::with_capacity(runs.len());
    let mut first_error: Option<(usize, FunnelError)> = None;
    let mut report = SupervisorReport::default();
    for (index, run) in runs {
        report.retries += run.retries;
        report.restarts += run.restarts;
        if !run.backoff_ms.is_empty() {
            // One histogram sample per scheduled backoff sleep, attributed
            // to the change minute. Recorded here on the aggregation
            // thread, in runs order — the histogram fold commutes, so the
            // result is worker-schedule independent.
            for &ms in &run.backoff_ms {
                funnel_obs::timeline_histogram_record(
                    names::SUPERVISOR_BACKOFF_MS,
                    change.minute,
                    ms,
                );
            }
            report.backoff_ms.insert(run.key, run.backoff_ms);
        }
        match run.outcome {
            UnitOutcome::Done(item) => items.push(item),
            UnitOutcome::Quarantined(item) => {
                report.quarantined.push(item.key);
                items.push(item);
            }
            UnitOutcome::Failed(e) => {
                let is_earlier = first_error.as_ref().is_none_or(|(i, _)| index < *i);
                if is_earlier {
                    first_error = Some((index, e));
                }
            }
        }
    }
    report.quarantined.sort_unstable();
    report.aborted = aborted;

    funnel_obs::timeline_counter_add(names::SUPERVISOR_RETRIES, change.minute, report.retries);
    funnel_obs::timeline_counter_add(
        names::SUPERVISOR_QUARANTINED,
        change.minute,
        report.quarantined.len() as u64,
    );
    funnel_obs::timeline_counter_add(names::SUPERVISOR_RESTARTS, change.minute, report.restarts);
    drop(span);

    if let Some((_, e)) = first_error {
        return Err(e);
    }
    let assessment = if aborted {
        None
    } else {
        Some(ChangeAssessment {
            change: change.id,
            impact_set,
            items: parallel::merge(items),
        })
    };
    Ok(Supervised { assessment, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_sim::effect::{ChangeEffect, EffectScope};
    use funnel_sim::world::{SimConfig, World, WorldBuilder};
    use funnel_topology::change::{ChangeId, ChangeKind};

    fn shifted_world(delta: f64) -> (World, ChangeId) {
        let mut b = WorldBuilder::new(SimConfig::days(11, 8));
        let svc = b.add_service("prod.sup", 6).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            KpiKind::PageViewResponseDelay,
            EffectScope::TreatedInstances,
            delta,
        );
        let id = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 200, effect, "t")
            .unwrap();
        (b.build(), id)
    }

    fn supervise(
        world: &World,
        change: ChangeId,
        config: &SupervisorConfig,
        probe: &dyn FaultProbe,
    ) -> Supervised {
        let funnel = Funnel::paper_default();
        let record = world.change_log().get(change).unwrap();
        let kinds = |svc| world.kinds_of_service(svc).to_vec();
        supervise_change(
            &funnel,
            world,
            world.topology(),
            record,
            &kinds,
            config,
            probe,
        )
        .unwrap()
    }

    /// A probe that panics on one key: the poisoned-work-unit model.
    struct PoisonKey(KpiKey);

    impl FaultProbe for PoisonKey {
        fn fault(&self, key: &KpiKey, _attempt: u32) -> Option<InjectedFault> {
            assert!(*key != self.0, "injected poison");
            None
        }
    }

    /// A probe that injects `fault` into the first `fails` attempts of one
    /// key, then lets it succeed.
    struct FlakyKey {
        key: KpiKey,
        fails: u32,
        fault: InjectedFault,
    }

    impl FaultProbe for FlakyKey {
        fn fault(&self, key: &KpiKey, attempt: u32) -> Option<InjectedFault> {
            (*key == self.key && attempt < self.fails).then_some(self.fault)
        }
    }

    fn clean_assessment(world: &World, change: ChangeId) -> ChangeAssessment {
        Funnel::paper_default()
            .assess_change(world, change)
            .unwrap()
    }

    #[test]
    fn fault_free_supervision_matches_the_unsupervised_engine() {
        let (world, change) = shifted_world(80.0);
        let clean = clean_assessment(&world, change);
        for workers in [1, 3, 8] {
            let config = SupervisorConfig {
                workers,
                ..SupervisorConfig::default()
            };
            let sup = supervise(&world, change, &config, &NoFaults);
            let assessment = sup.assessment.expect("not aborted");
            assert_eq!(format!("{clean:?}"), format!("{assessment:?}"));
            assert_eq!(sup.report, SupervisorReport::default());
        }
    }

    #[test]
    fn poisoned_unit_is_quarantined_and_everything_else_matches() {
        let (world, change) = shifted_world(80.0);
        let clean = clean_assessment(&world, change);
        let poisoned = clean.items[2].key;
        for workers in [1, 3, 8] {
            let config = SupervisorConfig {
                workers,
                max_retries: 2,
                ..SupervisorConfig::default()
            };
            let sup = supervise(&world, change, &config, &PoisonKey(poisoned));
            let assessment = sup.assessment.expect("not aborted");
            assert_eq!(sup.report.quarantined, vec![poisoned]);
            assert_eq!(sup.report.retries, 2);
            assert_eq!(assessment.items.len(), clean.items.len());
            for (got, want) in assessment.items.iter().zip(&clean.items) {
                assert_eq!(got.key, want.key);
                if got.key == poisoned {
                    assert_eq!(
                        got.verdict,
                        Verdict::Inconclusive {
                            awaiting_backfill: false
                        }
                    );
                    assert!(!got.caused);
                    assert!(got
                        .quality
                        .report
                        .issues
                        .contains(&QualityIssue::SupervisorQuarantined));
                } else {
                    assert_eq!(format!("{got:?}"), format!("{want:?}"), "key {:?}", got.key);
                }
            }
        }
    }

    #[test]
    fn transient_faults_retry_to_the_clean_verdict_with_recorded_backoff() {
        let (world, change) = shifted_world(80.0);
        let clean = clean_assessment(&world, change);
        let flaky = clean.items[0].key;
        let probe = FlakyKey {
            key: flaky,
            fails: 2,
            fault: InjectedFault::Transient,
        };
        let config = SupervisorConfig {
            workers: 3,
            max_retries: 3,
            ..SupervisorConfig::default()
        };
        let sup = supervise(&world, change, &config, &probe);
        let assessment = sup.assessment.expect("not aborted");
        // The flaky unit recovers: the final report matches the clean run.
        assert_eq!(format!("{clean:?}"), format!("{assessment:?}"));
        assert_eq!(sup.report.retries, 2);
        assert!(sup.report.quarantined.is_empty());
        let schedule = &sup.report.backoff_ms[&flaky];
        assert_eq!(schedule.len(), 2);
        // The schedule is deterministic and matches the pure function.
        let expected: Vec<u64> = (0..2).map(|a| backoff_ms(&config, flaky, a)).collect();
        assert_eq!(schedule, &expected);
        // Exponential growth below the cap (jitter < base can't mask 2x).
        assert!(schedule[1] > schedule[0]);
    }

    #[test]
    fn stalls_are_restarted_and_counted_separately() {
        let (world, change) = shifted_world(0.0);
        let clean = clean_assessment(&world, change);
        let stalled = clean.items[1].key;
        let probe = FlakyKey {
            key: stalled,
            fails: 1,
            fault: InjectedFault::Stall,
        };
        let sup = supervise(&world, change, &SupervisorConfig::default(), &probe);
        assert_eq!(sup.report.restarts, 1);
        assert_eq!(sup.report.retries, 1);
        let assessment = sup.assessment.expect("not aborted");
        assert_eq!(format!("{clean:?}"), format!("{assessment:?}"));
    }

    #[test]
    fn abort_after_units_withholds_the_assessment() {
        let (world, change) = shifted_world(0.0);
        for workers in [1, 4] {
            let config = SupervisorConfig {
                workers,
                abort_after_units: Some(2),
                ..SupervisorConfig::default()
            };
            let sup = supervise(&world, change, &config, &NoFaults);
            assert!(sup.report.aborted);
            assert!(sup.assessment.is_none());
        }
    }

    #[test]
    fn exhausted_retries_on_transient_faults_quarantine() {
        let (world, change) = shifted_world(0.0);
        let clean = clean_assessment(&world, change);
        let doomed = clean.items[0].key;
        let probe = FlakyKey {
            key: doomed,
            fails: u32::MAX,
            fault: InjectedFault::Transient,
        };
        let config = SupervisorConfig {
            max_retries: 2,
            ..SupervisorConfig::default()
        };
        let sup = supervise(&world, change, &config, &probe);
        assert_eq!(sup.report.quarantined, vec![doomed]);
        assert_eq!(sup.report.retries, 2);
        assert_eq!(sup.report.backoff_ms[&doomed].len(), 2);
        let assessment = sup.assessment.expect("not aborted");
        let item = assessment.items.iter().find(|i| i.key == doomed).unwrap();
        assert!(item.verdict.is_inconclusive());
        assert!(!item.verdict.awaiting_backfill());
    }
}
