//! The parallel assessment engine: fan out impact-set KPIs across a
//! fixed-size worker pool, merge deterministically.
//!
//! The paper's pitch is *rapid* assessment — hundreds of servers, instances
//! and services × KPIs judged within minutes of a rollout. Each work unit
//! (one impact-set KPI, enumerated by
//! [`enumerate_work_units`](crate::pipeline::enumerate_work_units)) is
//! independent of every other, so the batch pipeline is embarrassingly
//! parallel. This module supplies the harness:
//!
//! * **Fan-out** — a fixed pool of `workers` threads
//!   ([`AssessConfig::workers`](crate::config::AssessConfig)) pulls
//!   `(index, key)` jobs from one crossbeam MPMC channel. No work stealing,
//!   no runtime: plain scoped threads, per the workspace threading policy.
//! * **Contention-free reads** — workers share a read-only
//!   [`KpiSource`]. For live stores, callers pass a
//!   [`StoreSnapshot`](funnel_sim::store::StoreSnapshot)
//!   (`MetricStore::snapshot()`), so the hot loop never takes a lock.
//! * **Worker-local caching** — each worker owns an `AssessCache`
//!   memoizing the control-group window fetches every treated item of the
//!   same (group level, KPI kind) shares; see [`funnel_did::cache`].
//! * **Deterministic merge** — results arrive in scheduling order, which is
//!   *not* deterministic; [`merge`] re-keys them by `(entity, kpi)` into a
//!   `BTreeMap`, so the final item list is byte-identical for any worker
//!   count (1, 2, 8, 16, …). Errors are deterministic too: if several
//!   workers fail, the error reported is the one for the lowest work-unit
//!   index, whatever order the failures arrived in.
//!
//! Nothing in this path reads the clock, iterates a hashed container, or
//! panics — the `funnel-lint` determinism and no-panic lints gate this file
//! as part of the ingestion-to-verdict hot path.

use crate::pipeline::{Funnel, FunnelError, ItemAssessment};
use crate::source::KpiSource;
use crossbeam::channel;
use funnel_did::cache::ControlCache;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_timeseries::mask::CoverageMask;
use funnel_timeseries::series::TimeSeries;
use funnel_topology::change::SoftwareChange;
use funnel_topology::impact::{Entity, ImpactSet};
use std::collections::BTreeMap;

/// Cache key for one control-group fetch: which control pool the treated
/// entity contrasts against (see [`control_level`]) and the KPI kind.
pub(crate) type ControlCacheKey = (u8, KpiKind);

/// One memoized control-group window: the fetched member series with their
/// coverage masks, plus the group's mean coverage over the DiD periods.
pub(crate) type ControlGroupWindow = (Vec<(TimeSeries, Option<CoverageMask>)>, f64);

/// Which control pool a treated entity's DiD contrast draws from: `0` for
/// server-level items (cservers), `1` for instance- and service-level items
/// (both contrast against the cinstances, §3.2.4).
pub(crate) fn control_level(entity: Entity) -> u8 {
    match entity {
        Entity::Server(_) => 0,
        Entity::Instance(_) | Entity::Service(_) => 1,
    }
}

/// Worker-local assessment state. One per worker thread (or one total on
/// the serial path); `&mut` access only, so workers never contend.
#[derive(Debug, Default)]
pub(crate) struct AssessCache {
    /// Memoized control-group fetches, shared by every treated item whose
    /// contrast uses the same (control pool, KPI kind).
    pub(crate) control: ControlCache<ControlCacheKey, ControlGroupWindow>,
}

impl AssessCache {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// Folds one worker's (or the serial path's) control-cache hit/miss tallies
/// into the global counters once its assessment loop finishes. Counter
/// addition commutes, so the totals are independent of worker scheduling.
pub(crate) fn record_cache_stats(cache: &AssessCache) {
    let stats = cache.control.stats();
    let window = funnel_obs::timeline::current_window();
    funnel_obs::timeline_counter_add(funnel_obs::names::CONTROL_CACHE_HITS, window, stats.hits);
    funnel_obs::timeline_counter_add(
        funnel_obs::names::CONTROL_CACHE_MISSES,
        window,
        stats.misses,
    );
}

/// Deterministically merges per-item results into the final report order.
///
/// Results are keyed by `(entity, kpi)` — [`KpiKey`]'s ordering — into a
/// `BTreeMap`, so the output is the same for *any* arrival order: this is
/// what makes the assessment byte-identical across worker counts. If two
/// results carry the same key (the shared enumerator never produces
/// duplicates), the later one wins.
///
/// # Example
///
/// ```
/// use funnel_core::parallel::merge;
/// use funnel_core::pipeline::Funnel;
/// use funnel_sim::scenario::ads_world;
///
/// let (world, _ads, change) = ads_world(42);
/// let items = Funnel::paper_default()
///     .assess_change(&world, change)
///     .unwrap()
///     .items;
/// // Feeding the items back in reverse order restores the same order.
/// let mut reversed = items.clone();
/// reversed.reverse();
/// let keys: Vec<_> = merge(reversed).iter().map(|i| i.key).collect();
/// assert_eq!(keys, items.iter().map(|i| i.key).collect::<Vec<_>>());
/// ```
pub fn merge(results: impl IntoIterator<Item = ItemAssessment>) -> Vec<ItemAssessment> {
    let by_key: BTreeMap<KpiKey, ItemAssessment> =
        results.into_iter().map(|item| (item.key, item)).collect();
    by_key.into_values().collect()
}

/// Assesses every work unit of `work` against `source`, fanning out across
/// `workers` threads when more than one is requested, and returns the items
/// in merged (key-sorted) order.
///
/// The serial path (`workers <= 1`, or a single work unit) runs the same
/// enumerate → assess → [`merge`] sequence inline with one [`AssessCache`],
/// so serial and parallel assessments cannot drift apart.
pub(crate) fn assess_work_units<S: KpiSource + Sync>(
    funnel: &Funnel,
    source: &S,
    change: &SoftwareChange,
    impact_set: &ImpactSet,
    work: &[KpiKey],
    workers: usize,
) -> Result<Vec<ItemAssessment>, FunnelError> {
    let workers = workers.clamp(1, work.len().max(1));
    let window = funnel_obs::timeline::current_window();
    funnel_obs::timeline_gauge_set(funnel_obs::names::WORKERS, window, workers as u64);
    funnel_obs::timeline_histogram_record(
        funnel_obs::names::WORK_QUEUE_DEPTH,
        window,
        work.len() as u64,
    );
    if workers == 1 {
        let mut cache = AssessCache::new();
        let mut items = Vec::with_capacity(work.len());
        for &key in work {
            items.push(funnel.assess_item(source, change, impact_set, key, &mut cache)?);
        }
        record_cache_stats(&cache);
        return Ok(merge(items));
    }

    // All jobs are enqueued up front on an unbounded MPMC channel; workers
    // drain it and exit when it disconnects (sender dropped below).
    let (job_tx, job_rx) = channel::unbounded::<(usize, KpiKey)>();
    for unit in work.iter().copied().enumerate() {
        // Cannot fail: both receiver clones below outlive the sends.
        let _ = job_tx.send(unit);
    }
    drop(job_tx);

    let (result_tx, result_rx) =
        channel::unbounded::<(usize, Result<ItemAssessment, FunnelError>)>();
    let mut items: Vec<ItemAssessment> = Vec::with_capacity(work.len());
    let mut first_error: Option<(usize, FunnelError)> = None;
    std::thread::scope(|scope| {
        for worker_idx in 0..workers {
            let jobs = job_rx.clone();
            let results = result_tx.clone();
            scope.spawn(move || {
                let worker_span =
                    funnel_obs::span!(funnel_obs::names::SPAN_ASSESS_WORKER, worker_idx);
                let mut cache = AssessCache::new();
                while let Ok((index, key)) = jobs.recv() {
                    let outcome = funnel.assess_item(source, change, impact_set, key, &mut cache);
                    if results.send((index, outcome)).is_err() {
                        break; // collector gone; nothing left to report to
                    }
                }
                record_cache_stats(&cache);
                // Merge this worker's span buffer before the scoped thread
                // exits — commutative merge, so flush order is unobservable.
                drop(worker_span);
                funnel_obs::flush_thread();
            });
        }
        drop(result_tx);
        drop(job_rx);
        // Collect until every worker has dropped its sender. Which worker
        // produced which item is scheduling-dependent; merge() erases that.
        while let Ok((index, outcome)) = result_rx.recv() {
            match outcome {
                Ok(item) => items.push(item),
                Err(e) => {
                    let is_earlier = first_error.as_ref().is_none_or(|(i, _)| index < *i);
                    if is_earlier {
                        first_error = Some((index, e));
                    }
                }
            }
        }
    });

    match first_error {
        Some((_, e)) => Err(e),
        None => Ok(merge(items)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FunnelConfig;
    use funnel_sim::effect::{ChangeEffect, EffectScope};
    use funnel_sim::world::{SimConfig, World, WorldBuilder};
    use funnel_topology::change::{ChangeId, ChangeKind};

    fn shifted_world(delta: f64) -> (World, ChangeId) {
        let mut b = WorldBuilder::new(SimConfig::days(11, 8));
        let svc = b.add_service("prod.par", 6).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            KpiKind::PageViewResponseDelay,
            EffectScope::TreatedInstances,
            delta,
        );
        let id = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 200, effect, "t")
            .unwrap();
        (b.build(), id)
    }

    fn assess_with_workers(world: &World, change: ChangeId, workers: usize) -> String {
        let mut config = FunnelConfig::paper_default();
        config.assess.workers = workers;
        let assessment = Funnel::new(config).assess_change(world, change).unwrap();
        format!("{assessment:?}")
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let (world, change) = shifted_world(80.0);
        let serial = assess_with_workers(&world, change, 1);
        for workers in [2, 3, 8] {
            let parallel = assess_with_workers(&world, change, workers);
            assert_eq!(serial, parallel, "diverged at {workers} workers");
        }
    }

    #[test]
    fn merge_is_idempotent_and_sorted() {
        let (world, change) = shifted_world(80.0);
        let items = Funnel::paper_default()
            .assess_change(&world, change)
            .unwrap()
            .items;
        let keys: Vec<KpiKey> = items.iter().map(|i| i.key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "assessment items must come out key-sorted");
        let remerged = merge(items.clone());
        assert_eq!(format!("{items:?}"), format!("{remerged:?}"));
    }

    #[test]
    fn zero_workers_resolves_to_available_parallelism() {
        let mut config = FunnelConfig::paper_default();
        config.assess.workers = 0;
        assert!(config.assess.effective_workers() >= 1);
        let (world, change) = shifted_world(0.0);
        // Auto worker count still assesses correctly on any machine.
        let a = Funnel::new(config).assess_change(&world, change).unwrap();
        assert!(!a.has_impact());
    }

    #[test]
    fn parallel_errors_are_deterministic() {
        // A store that knows none of the impact-set keys: every work unit
        // fails with MissingSeries; the reported key must be the lowest
        // work-unit index regardless of worker count.
        let (world, change) = shifted_world(0.0);
        let empty = funnel_sim::MetricStore::new();
        let record = world.change_log().get(change).unwrap();
        let kinds = |svc| world.kinds_of_service(svc).to_vec();
        let mut errs = Vec::new();
        for workers in [1, 2, 8] {
            let mut config = FunnelConfig::paper_default();
            config.assess.workers = workers;
            let err = Funnel::new(config)
                .assess_change_with(&empty, world.topology(), record, &kinds)
                .unwrap_err();
            errs.push(format!("{err:?}"));
        }
        assert_eq!(errs[0], errs[1]);
        assert_eq!(errs[1], errs[2]);
    }
}
