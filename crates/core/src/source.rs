//! Abstraction over where KPI series come from.
//!
//! The batch pipeline reads from either a frozen [`World`] (evaluation), a
//! live [`MetricStore`] (deployment), or a [`StoreSnapshot`] — a frozen,
//! lock-free view of a live store, the preferred source when fanning an
//! assessment across workers ([`crate::parallel`]): every worker reads the
//! same instant of the store without ever touching its locks. All expose
//! the same contract: a dense one-minute series per KPI key.

use funnel_sim::kpi::KpiKey;
use funnel_sim::store::{MetricStore, StoreSnapshot};
use funnel_sim::world::World;
use funnel_timeseries::mask::CoverageMask;
use funnel_timeseries::series::{MinuteBin, TimeSeries};

/// A provider of KPI series.
pub trait KpiSource {
    /// The full series for `key`, if the key exists.
    fn series(&self, key: &KpiKey) -> Option<TimeSeries>;

    /// Fraction of `[from, to)` backed by real measurements for `key`.
    /// Sources that cannot degrade (a frozen [`World`]) report full
    /// coverage; the live [`MetricStore`] reports its coverage mask, so the
    /// pipeline can tell measured data from substrate gap-fills.
    fn coverage(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> f64 {
        let _ = (key, from, to);
        1.0
    }

    /// The per-bin coverage mask for `key`, when the source tracks one.
    /// `None` (the default, and what degradation-free sources return) means
    /// "everything real": the pipeline then skips gap analysis entirely.
    /// The shape of the gaps matters beyond the coverage *fraction* — one
    /// contiguous partition-length gap flags an item for post-backfill
    /// re-assessment, while the same minutes lost as scattered frames do
    /// not.
    fn mask(&self, key: &KpiKey) -> Option<CoverageMask> {
        let _ = key;
        None
    }
}

impl KpiSource for World {
    fn series(&self, key: &KpiKey) -> Option<TimeSeries> {
        World::series(self, key).ok()
    }
}

impl KpiSource for MetricStore {
    fn series(&self, key: &KpiKey) -> Option<TimeSeries> {
        self.get(key)
    }

    fn coverage(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> f64 {
        MetricStore::coverage(self, key, from, to)
    }

    fn mask(&self, key: &KpiKey) -> Option<CoverageMask> {
        MetricStore::mask(self, key)
    }
}

impl KpiSource for StoreSnapshot {
    fn series(&self, key: &KpiKey) -> Option<TimeSeries> {
        self.get(key)
    }

    fn coverage(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> f64 {
        StoreSnapshot::coverage(self, key, from, to)
    }

    fn mask(&self, key: &KpiKey) -> Option<CoverageMask> {
        StoreSnapshot::mask(self, key)
    }
}

impl<T: KpiSource + ?Sized> KpiSource for &T {
    fn series(&self, key: &KpiKey) -> Option<TimeSeries> {
        (**self).series(key)
    }

    fn coverage(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> f64 {
        (**self).coverage(key, from, to)
    }

    fn mask(&self, key: &KpiKey) -> Option<CoverageMask> {
        (**self).mask(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_sim::kpi::KpiKind;
    use funnel_sim::world::{SimConfig, WorldBuilder};
    use funnel_topology::impact::Entity;
    use funnel_topology::model::ServerId;

    #[test]
    fn world_and_store_agree() {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 2,
            start: 0,
            duration: 60,
        });
        b.add_service("prod.t", 1).unwrap();
        let world = b.build();
        let store = world.materialize().unwrap();
        let key = KpiKey::new(Entity::Server(ServerId(0)), KpiKind::CpuUtilization);
        let a = KpiSource::series(&world, &key).unwrap();
        let b2 = KpiSource::series(&store, &key).unwrap();
        assert_eq!(a, b2);
        // Unknown key yields None from both.
        let bogus = KpiKey::new(Entity::Server(ServerId(99)), KpiKind::CpuUtilization);
        assert!(KpiSource::series(&world, &bogus).is_none());
        assert!(KpiSource::series(&store, &bogus).is_none());
    }

    #[test]
    fn coverage_defaults_full_and_store_reports_mask() {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 2,
            start: 0,
            duration: 60,
        });
        b.add_service("prod.t", 1).unwrap();
        let world = b.build();
        let key = KpiKey::new(Entity::Server(ServerId(0)), KpiKind::CpuUtilization);
        // A frozen world cannot degrade.
        assert_eq!(KpiSource::coverage(&world, &key, 0, 60), 1.0);
        // A store reports only the minutes really appended.
        let store = funnel_sim::MetricStore::new();
        store.append(key, 0, 1.0);
        store.append(key, 3, 1.0); // 1, 2 are fills
        assert_eq!(KpiSource::coverage(&store, &key, 0, 4), 0.5);
        // And only the store exposes the mask itself.
        assert!(KpiSource::mask(&world, &key).is_none());
        let mask = KpiSource::mask(&store, &key).expect("store tracks a mask");
        assert!(mask.is_present(0) && mask.is_present(3));
        assert!(!mask.is_present(1) && !mask.is_present(2));
    }

    #[test]
    fn snapshot_source_matches_store_source() {
        let key = KpiKey::new(Entity::Server(ServerId(0)), KpiKind::CpuUtilization);
        let store = funnel_sim::MetricStore::new();
        store.append(key, 0, 1.0);
        store.append(key, 3, 2.0);
        let snap = store.snapshot();
        assert_eq!(
            KpiSource::series(&snap, &key),
            KpiSource::series(&store, &key)
        );
        assert_eq!(
            KpiSource::coverage(&snap, &key, 0, 4),
            KpiSource::coverage(&store, &key, 0, 4)
        );
        assert!(KpiSource::mask(&snap, &key).is_some());
        // The snapshot is frozen: later appends do not reach it.
        store.append(key, 4, 9.0);
        assert_eq!(KpiSource::coverage(&snap, &key, 0, 5), 0.4);
    }
}
