//! FUNNEL's operational configuration.

use funnel_diag::DiagConfig;
use funnel_did::DidConfig;
use funnel_sst::SstConfig;

/// Fan-out configuration for the batch assessment engine
/// ([`crate::parallel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssessConfig {
    /// Worker threads assessing impact-set KPIs concurrently. `1` (the
    /// default) keeps everything on the calling thread — the right choice
    /// when an outer harness already parallelizes across changes, as the
    /// evaluation cohort runner does. `0` means one worker per available
    /// CPU. The merged report is byte-identical for every value: worker
    /// count is purely a latency knob, never a results knob.
    pub workers: usize,
}

impl AssessConfig {
    /// Everything on the calling thread (the default).
    pub fn serial() -> Self {
        Self { workers: 1 }
    }

    /// One worker per available CPU.
    pub fn auto() -> Self {
        Self { workers: 0 }
    }

    /// An explicit worker count (`0` = auto).
    pub fn with_workers(workers: usize) -> Self {
        Self { workers }
    }

    /// The concrete thread count to use: `workers`, or the machine's
    /// available parallelism when `workers` is `0` (falling back to 1 if
    /// the platform cannot report it).
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

impl Default for AssessConfig {
    fn default() -> Self {
        Self::serial()
    }
}

/// All knobs of the deployed tool, with the paper's defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct FunnelConfig {
    /// SST configuration (`ω = 9` ⇒ sliding window `W = 34` in the paper's
    /// evaluation; `ω = 5` for quick mitigation, `ω = 15` for precision).
    pub sst: SstConfig,
    /// Declaration threshold on the filtered SST score.
    pub sst_threshold: f64,
    /// Persistence requirement in minutes before a change is declared
    /// (7 in the paper, §4.1) — separates level shifts/ramps from one-off
    /// events.
    pub persistence_minutes: usize,
    /// DiD configuration (pre/post period length and α threshold; the
    /// evaluation uses 60-minute periods, §4.1).
    pub did: DidConfig,
    /// Days of history for the seasonal control group (30 in the paper's
    /// prototype; scenario worlds may carry less).
    pub history_days: u32,
    /// How long after the deployment FUNNEL watches for KPI changes
    /// ("the operators think that 1 hour is enough", §4.1).
    pub assessment_minutes: u64,
    /// Minimum fraction of truly measured minutes an assessment window
    /// needs before its verdict is trusted. Below it the item is reported
    /// `Inconclusive` rather than attributed (or cleared) on interpolated
    /// data, and a dark-launch control group that falls below it is
    /// abandoned for the seasonal history.
    pub min_coverage: f64,
    /// Shortest contiguous coverage gap (in minutes) treated as a network
    /// partition rather than scattered frame loss. A gap this long both
    /// suppresses change points bordering it (a forward-fill plateau ends
    /// in a step artifact exactly where the heal lands) and marks the
    /// item's `Inconclusive` verdict as `awaiting_backfill` for automatic
    /// re-assessment. Defaults to the persistence length: the shortest gap
    /// that could single-handedly fake the 7-minute rule.
    pub min_partition_gap: u64,
    /// Coverage fraction a previously partition-gapped assessment window
    /// must reach — via collector backfill — before the re-assessment
    /// queue re-runs the item for a firm verdict.
    pub reassess_coverage: f64,
    /// How the batch pipeline fans assessment work units across threads.
    pub assess: AssessConfig,
    /// The opt-in diagnosis stage ([`crate::diagnose`]): off by default so
    /// the assessment path is byte-for-byte what it was before the stage
    /// existed. Enabling it adds a strictly read-only explanation pass over
    /// the finished assessment; it never alters a verdict.
    pub diagnose: DiagConfig,
}

impl FunnelConfig {
    /// The paper's evaluation configuration.
    ///
    /// The SST threshold (0.5 on the filtered score) is calibrated for
    /// recall: persistent ≥3σ shifts always complete the 7-minute run,
    /// while noise and diurnal ramps that sneak past the persistence rule
    /// are excluded by the DiD step — mirroring the paper's Table 1, where
    /// the improved SST alone has very low precision and DiD restores it.
    pub fn paper_default() -> Self {
        Self {
            sst: SstConfig::paper_default(),
            sst_threshold: 0.5,
            persistence_minutes: funnel_detect::PERSISTENCE_MINUTES,
            did: DidConfig::default(),
            history_days: 30,
            assessment_minutes: 60,
            min_coverage: 0.8,
            min_partition_gap: funnel_detect::PERSISTENCE_MINUTES as u64,
            reassess_coverage: 0.8,
            assess: AssessConfig::default(),
            diagnose: DiagConfig::default(),
        }
    }

    /// Minutes of pre-change data the detector needs before the deployment
    /// minute so that the first scored window is fully pre-change.
    pub fn warmup_minutes(&self) -> u64 {
        self.sst.window_len() as u64
    }
}

impl Default for FunnelConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation() {
        let c = FunnelConfig::paper_default();
        assert_eq!(c.sst.window_len(), 34);
        assert_eq!(c.persistence_minutes, 7);
        assert_eq!(c.did.period_minutes, 60);
        assert_eq!(c.assessment_minutes, 60);
        assert_eq!(c.warmup_minutes(), 34);
        assert_eq!(c.min_coverage, 0.8);
        assert_eq!(c.min_partition_gap, 7);
        assert_eq!(c.reassess_coverage, 0.8);
        assert_eq!(c.assess.workers, 1);
        assert_eq!(c.assess.effective_workers(), 1);
        // Diagnosis is opt-in: the paper default must not enable it.
        assert!(!c.diagnose.enabled);
        assert_eq!(c.diagnose, DiagConfig::default());
    }

    #[test]
    fn assess_config_constructors() {
        assert_eq!(AssessConfig::default(), AssessConfig::serial());
        assert_eq!(AssessConfig::auto().workers, 0);
        assert!(AssessConfig::auto().effective_workers() >= 1);
        assert_eq!(AssessConfig::with_workers(8).effective_workers(), 8);
    }
}
