//! The batch assessment pipeline (paper Fig. 3).
//!
//! For one software change: identify the impact set, run the improved SST
//! over every impact-set KPI (steps 1–3), and for each detected KPI change
//! decide causality with DiD (steps 4–11): dark-launch control groups when
//! they exist, the 30-day seasonal history otherwise, and always the
//! seasonal history for affected-service KPIs (which have no cinstances).

use crate::config::FunnelConfig;
use crate::parallel::{self, control_level, AssessCache};
use crate::quality::{assess_quality, QualityConfig, QualityReport};
use crate::source::KpiSource;
use funnel_detect::detector::{ChangeEvent, DetectorRunner, MaskedRun};
use funnel_detect::sst_adapter::SstDetector;
use funnel_did::estimator::{DidError, DidEstimate};
use funnel_did::groups::{DidAssessor, DidVerdict};
use funnel_did::seasonal::SeasonalControl;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::world::World;
use funnel_sst::FastSst;
use funnel_timeseries::mask::CoverageMask;
use funnel_timeseries::series::{MinuteBin, TimeSeries};
use funnel_topology::change::{ChangeId, LaunchMode, SoftwareChange};
use funnel_topology::impact::{identify_impact_set, Entity, ImpactSet};
use funnel_topology::model::{ServiceId, Topology, TopologyError};

/// Which control group decided causality for an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssessmentMode {
    /// Compared against cservers/cinstances (dark launching, §3.2.4).
    DarkLaunchControl,
    /// Compared against the same clock windows on historical days
    /// (affected services and full launches, §3.2.5).
    SeasonalHistory,
}

/// Final per-item verdict, coverage-aware.
///
/// Operator-facing definitions of every variant (and every
/// [`QualityIssue`](crate::quality::QualityIssue) that can accompany one)
/// live in the glossary table of `OPERATORS.md` at the repository root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A KPI change exists *and* it is attributed to the software change.
    Caused,
    /// No attributed KPI change (nothing detected, or DiD cleared it).
    NotCaused,
    /// The telemetry behind the assessment window was mostly interpolation:
    /// neither attribution nor a clean bill can be trusted, so the item is
    /// handed to the operations team unresolved instead of asserting either.
    Inconclusive {
        /// `true` when the shortfall looks like an *unhealed partition* —
        /// one contiguous gap at least `min_partition_gap` minutes long, or
        /// a change point the gap-aware detector refused because it bordered
        /// such a gap. Those items are repairable: once the collector
        /// backfills the dark span, a re-assessment (see
        /// [`crate::reassess::ReassessmentQueue`]) can upgrade them to a
        /// firm verdict. `false` means scattered per-frame loss no backfill
        /// will heal — the operators must adjudicate on what exists.
        awaiting_backfill: bool,
    },
}

impl Verdict {
    /// Whether the item was attributed to the software change.
    pub fn is_caused(self) -> bool {
        self == Verdict::Caused
    }

    /// Whether the data was too degraded to decide.
    pub fn is_inconclusive(self) -> bool {
        matches!(self, Verdict::Inconclusive { .. })
    }

    /// Whether the item is inconclusive *and* a healed partition span could
    /// still upgrade it — the re-assessment queue's admission test.
    pub fn awaiting_backfill(self) -> bool {
        matches!(
            self,
            Verdict::Inconclusive {
                awaiting_backfill: true
            }
        )
    }
}

/// Provenance annotations attached to each item so operators can weigh the
/// verdict against the data behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct DataQuality {
    /// Fraction of the assessment window backed by real measurements
    /// (1.0 for sources without degradation tracking).
    pub coverage: f64,
    /// Statistical screening of the assessment window (constant / mostly
    /// zero / quantized / glitch-dominated data).
    pub report: QualityReport,
}

/// The per-KPI outcome delivered to the operations team.
#[derive(Debug, Clone)]
pub struct ItemAssessment {
    /// The assessed KPI.
    pub key: KpiKey,
    /// The SST detection, if a persistent behaviour change was declared in
    /// the assessment window.
    pub detection: Option<ChangeEvent>,
    /// The DiD result, when a detection triggered causality determination.
    pub did: Option<(DidVerdict, DidEstimate)>,
    /// Which control group was used.
    pub mode: AssessmentMode,
    /// Final verdict: a KPI change exists *and* it is attributed to the
    /// software change. (`false` also for [`Verdict::Inconclusive`]; check
    /// [`ItemAssessment::verdict`] to distinguish.)
    pub caused: bool,
    /// The coverage-aware verdict.
    pub verdict: Verdict,
    /// Telemetry coverage and data-quality screening for this item.
    pub quality: DataQuality,
    /// The `[from, to)` assessment window the verdict rests on — the span a
    /// re-assessment must see healed before re-running the item.
    pub window: (MinuteBin, MinuteBin),
}

/// The full assessment of one software change.
#[derive(Debug, Clone)]
pub struct ChangeAssessment {
    /// Which change.
    pub change: ChangeId,
    /// Its identified impact set.
    pub impact_set: ImpactSet,
    /// One entry per impact-set KPI.
    pub items: Vec<ItemAssessment>,
}

impl ChangeAssessment {
    /// Items whose KPI change was attributed to the software change.
    pub fn caused_items(&self) -> impl Iterator<Item = &ItemAssessment> {
        self.items.iter().filter(|i| i.caused)
    }

    /// Whether the software change had any attributed KPI impact.
    pub fn has_impact(&self) -> bool {
        self.items.iter().any(|i| i.caused)
    }

    /// Items whose telemetry was too degraded to decide either way.
    pub fn inconclusive_items(&self) -> impl Iterator<Item = &ItemAssessment> {
        self.items.iter().filter(|i| i.verdict.is_inconclusive())
    }

    /// Items a healed partition span could still upgrade — the candidates
    /// for [`crate::reassess::ReassessmentQueue::absorb`].
    pub fn awaiting_backfill_items(&self) -> impl Iterator<Item = &ItemAssessment> {
        self.items.iter().filter(|i| i.verdict.awaiting_backfill())
    }

    /// Replaces items in place with re-assessed versions (matched by KPI
    /// key), upgrading interim `Inconclusive { awaiting_backfill }` verdicts
    /// to the firm ones a post-heal re-run produced. Returns how many items
    /// were replaced; upgrades for keys not in the assessment are ignored.
    pub fn apply_upgrades(&mut self, upgrades: Vec<ItemAssessment>) -> usize {
        let mut applied = 0;
        for upgrade in upgrades {
            if let Some(slot) = self.items.iter_mut().find(|i| i.key == upgrade.key) {
                *slot = upgrade;
                applied += 1;
            }
        }
        applied
    }
}

/// Pipeline errors.
#[derive(Debug, Clone, PartialEq)]
pub enum FunnelError {
    /// The change id is not in the log.
    UnknownChange(ChangeId),
    /// Impact-set identification failed.
    Topology(TopologyError),
    /// A series the impact set requires is missing from the source.
    MissingSeries(KpiKey),
}

impl std::fmt::Display for FunnelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FunnelError::UnknownChange(id) => write!(f, "unknown change id {}", id.0),
            FunnelError::Topology(e) => write!(f, "topology error: {e}"),
            FunnelError::MissingSeries(k) => write!(f, "missing series for {k:?}"),
        }
    }
}

impl std::error::Error for FunnelError {}

impl From<TopologyError> for FunnelError {
    fn from(e: TopologyError) -> Self {
        FunnelError::Topology(e)
    }
}

/// Enumerates the work units of one change: every monitored impact-set KPI
/// per §3.1, one unit per `(entity, KPI kind)` — server KPIs of the
/// tservers, the changed service's instance KPIs on the tinstances and at
/// service level, and every KPI of the affected services.
///
/// The list is sorted and deduplicated, and it is the *single* enumeration
/// both the serial and parallel assessment paths consume, so the two can
/// never drift on what gets assessed.
pub fn enumerate_work_units(
    impact_set: &ImpactSet,
    change: &SoftwareChange,
    service_kinds: &dyn Fn(ServiceId) -> Vec<KpiKind>,
) -> Vec<KpiKey> {
    let changed_kinds = service_kinds(change.service);
    let mut work: Vec<KpiKey> = Vec::new();
    for &srv in &impact_set.tservers {
        for kind in KpiKind::SERVER_KINDS {
            work.push(KpiKey::new(Entity::Server(srv), kind));
        }
    }
    for &inst in &impact_set.tinstances {
        for &kind in &changed_kinds {
            work.push(KpiKey::new(Entity::Instance(inst), kind));
        }
    }
    for &kind in &changed_kinds {
        work.push(KpiKey::new(Entity::Service(change.service), kind));
    }
    for &svc in &impact_set.affected_services {
        for kind in service_kinds(svc) {
            work.push(KpiKey::new(Entity::Service(svc), kind));
        }
    }
    work.sort_unstable();
    work.dedup();
    work
}

/// Control-pool KPI keys for one treated item (§3.2.4): server items
/// contrast against the cservers, instance- and service-level items against
/// the cinstances. Shared by the DiD contrast and the diagnosis layer's
/// bias check so the two can never disagree about pool membership.
pub(crate) fn control_keys_for(impact_set: &ImpactSet, key: KpiKey) -> Vec<KpiKey> {
    match key.entity {
        Entity::Server(_) => impact_set
            .cservers
            .iter()
            .map(|&s| KpiKey::new(Entity::Server(s), key.kind))
            .collect(),
        Entity::Instance(_) | Entity::Service(_) => impact_set
            .cinstances
            .iter()
            .map(|&i| KpiKey::new(Entity::Instance(i), key.kind))
            .collect(),
    }
}

/// Treated-group KPI keys for one item: server/instance items are their own
/// treated group; the changed service's item aggregates the tinstances.
pub(crate) fn treated_keys_for(impact_set: &ImpactSet, key: KpiKey) -> Vec<KpiKey> {
    match key.entity {
        Entity::Server(_) | Entity::Instance(_) => vec![key],
        Entity::Service(_) => impact_set
            .tinstances
            .iter()
            .map(|&i| KpiKey::new(Entity::Instance(i), key.kind))
            .collect(),
    }
}

/// The FUNNEL tool.
#[derive(Debug, Clone)]
pub struct Funnel {
    config: FunnelConfig,
    assessor: DidAssessor,
    /// Pre-validated SST scorer: built (and config-checked) once in
    /// [`Funnel::new`] so the per-item detector path never constructs —
    /// and therefore never panics on — a scorer.
    sst: FastSst,
}

impl Funnel {
    /// Creates the tool with an explicit configuration.
    pub fn new(config: FunnelConfig) -> Self {
        let assessor = DidAssessor::new(config.did.clone());
        // Validate the SST config here, once: every later detector run
        // clones this pre-validated scorer, so the assessment hot path
        // contains no panic-capable constructor.
        let sst = FastSst::new(config.sst.clone());
        Self {
            config,
            assessor,
            sst,
        }
    }

    /// The paper's evaluation configuration.
    pub fn paper_default() -> Self {
        Self::new(FunnelConfig::paper_default())
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FunnelConfig {
        &self.config
    }

    /// The pre-validated SST scorer built in [`Funnel::new`]. Hot paths
    /// (the streaming engine's per-key monitors) clone this instead of
    /// constructing a scorer, so they contain no panic-capable constructor.
    pub(crate) fn scorer(&self) -> &FastSst {
        &self.sst
    }

    /// Assesses a change recorded in a simulated [`World`].
    ///
    /// # Errors
    ///
    /// [`FunnelError::UnknownChange`] for an id missing from the world's
    /// log; otherwise propagates topology/series errors.
    ///
    /// # Example
    ///
    /// ```
    /// use funnel_core::pipeline::Funnel;
    /// use funnel_sim::scenario::ads_world;
    ///
    /// let (world, _ads, change) = ads_world(42);
    /// let assessment = Funnel::paper_default()
    ///     .assess_change(&world, change)
    ///     .unwrap();
    /// // One verdict per impact-set KPI, in deterministic key order.
    /// assert!(!assessment.items.is_empty());
    /// assert!(assessment.has_impact());
    /// ```
    pub fn assess_change(
        &self,
        world: &World,
        change: ChangeId,
    ) -> Result<ChangeAssessment, FunnelError> {
        let record = world
            .change_log()
            .get(change)
            .ok_or(FunnelError::UnknownChange(change))?;
        self.assess_change_with(world, world.topology(), record, &|svc| {
            world.kinds_of_service(svc).to_vec()
        })
    }

    /// Fully-general assessment: any [`KpiSource`], any topology, any
    /// change record. `service_kinds` supplies the instance KPI kinds each
    /// service carries.
    ///
    /// The monitored KPIs come from [`enumerate_work_units`] and are fanned
    /// across [`AssessConfig::workers`](crate::config::AssessConfig)
    /// threads by the [`crate::parallel`] engine; the merged report is
    /// byte-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Propagates impact-set and missing-series failures; KPIs whose series
    /// exist are always assessed.
    pub fn assess_change_with(
        &self,
        source: &(impl KpiSource + Sync),
        topology: &Topology,
        change: &SoftwareChange,
        service_kinds: &dyn Fn(ServiceId) -> Vec<KpiKind>,
    ) -> Result<ChangeAssessment, FunnelError> {
        // Pin the timeline window to the change's deploy minute before the
        // span opens, so this assessment's spans and counters all land in
        // the data minute whose impact is being judged.
        funnel_obs::timeline::set_window(change.minute);
        let _span = funnel_obs::span!(funnel_obs::names::SPAN_ASSESS_CHANGE);
        let impact_set = identify_impact_set(topology, change)?;
        let work = enumerate_work_units(&impact_set, change, service_kinds);
        funnel_obs::timeline_gauge_set(
            funnel_obs::names::WORK_UNITS_TOTAL,
            change.minute,
            work.len() as u64,
        );
        let items = parallel::assess_work_units(
            self,
            source,
            change,
            &impact_set,
            &work,
            self.config.assess.effective_workers(),
        )?;
        Ok(ChangeAssessment {
            change: change.id,
            impact_set,
            items,
        })
    }

    /// Re-assesses a single impact-set KPI of `change` — the entry point
    /// the re-assessment queue uses once a healed span's coverage crosses
    /// the threshold, without re-running the whole impact set.
    ///
    /// # Errors
    ///
    /// Propagates impact-set identification and missing-series failures.
    pub fn assess_key(
        &self,
        source: &impl KpiSource,
        topology: &Topology,
        change: &SoftwareChange,
        key: KpiKey,
    ) -> Result<ItemAssessment, FunnelError> {
        let impact_set = identify_impact_set(topology, change)?;
        self.assess_item(source, change, &impact_set, key, &mut AssessCache::new())
    }

    /// Re-assesses a batch of impact-set KPIs of `change` through the same
    /// fan-out/merge engine as [`Funnel::assess_change_with`] — the plural
    /// form of [`Funnel::assess_key`], used by the re-assessment queue when
    /// several items become ready in the same heal. Duplicates are
    /// collapsed; the results come back in key-sorted order.
    ///
    /// # Errors
    ///
    /// Propagates impact-set identification and missing-series failures.
    pub fn assess_keys(
        &self,
        source: &(impl KpiSource + Sync),
        topology: &Topology,
        change: &SoftwareChange,
        keys: &[KpiKey],
    ) -> Result<Vec<ItemAssessment>, FunnelError> {
        let impact_set = identify_impact_set(topology, change)?;
        let mut work = keys.to_vec();
        work.sort_unstable();
        work.dedup();
        parallel::assess_work_units(
            self,
            source,
            change,
            &impact_set,
            &work,
            self.config.assess.effective_workers(),
        )
    }

    /// Assesses one impact-set KPI: detection, then causality, both
    /// tempered by how much of the window was really measured. `cache` is
    /// the calling worker's memo state; it only ever holds values derived
    /// from `source`, so any cache produces the same item.
    pub(crate) fn assess_item(
        &self,
        source: &impl KpiSource,
        change: &SoftwareChange,
        impact_set: &ImpactSet,
        key: KpiKey,
        cache: &mut AssessCache,
    ) -> Result<ItemAssessment, FunnelError> {
        let _span = funnel_obs::span!(funnel_obs::names::SPAN_ASSESS_ITEM);
        let series = source.series(&key).ok_or(FunnelError::MissingSeries(key))?;

        // The assessment window: enough pre-change data to warm the
        // detector up, plus the post-change watch period.
        let w = self.config.sst.window_len() as u64;
        let from = change
            .minute
            .saturating_sub(w + self.config.warmup_minutes());
        let to = change.minute + self.config.assessment_minutes + 1;
        let lo = from.max(series.start());
        let window = TimeSeries::new(lo, series.slice(lo, to).to_vec());

        let coverage = source.coverage(&key, lo, to);
        let quality = DataQuality {
            coverage,
            report: assess_quality(&window, &QualityConfig::default()),
        };
        let adequate = coverage >= self.config.min_coverage;

        // Steps 2–3, partition-aware when the source tracks coverage: a
        // contiguous gap of at least `min_partition_gap` minutes marks the
        // window as repairable-by-backfill, and any change point bordering
        // such a gap is suppressed rather than scored (it is
        // indistinguishable from the fill plateau's edge until the span
        // heals).
        let mask = source.mask(&key);
        let (detection, suppressed, partition_gapped) = match &mask {
            Some(mask) => {
                let run = self.detect_masked(&window, mask);
                let gapped = mask.longest_gap(lo, to) >= self.config.min_partition_gap;
                let event = run
                    .events
                    .into_iter()
                    .find(|e| e.declared_at >= change.minute);
                (event, run.suppressed_events, gapped)
            }
            None => (self.detect(&window, change.minute), 0, false),
        };

        let is_affected_service = matches!(key.entity, Entity::Service(s)
            if s != change.service && impact_set.affected_services.contains(&s));
        let seasonal = is_affected_service
            || change.launch == LaunchMode::Full
            || !impact_set.has_control_group();
        let mode = if seasonal {
            AssessmentMode::SeasonalHistory
        } else {
            AssessmentMode::DarkLaunchControl
        };

        // Steps 4–11: only determine causality when a change was detected,
        // and only trust either direction when the window is mostly real
        // data — an apparent shift (or apparent quiet) made of gap-fills
        // must reach the operations team as `Inconclusive`, not as a
        // verdict. Partition-shaped shortfalls additionally flag the item
        // for automatic re-assessment after backfill.
        let (did, verdict) = if !adequate {
            (
                None,
                Verdict::Inconclusive {
                    awaiting_backfill: partition_gapped,
                },
            )
        } else if detection.is_some() {
            match self.determine(source, change, impact_set, key, &series, mode, cache) {
                Ok((v, est)) => {
                    let verdict = if v.is_caused() {
                        Verdict::Caused
                    } else {
                        Verdict::NotCaused
                    };
                    (Some((v, est)), verdict)
                }
                // Control coverage shortfalls mean no trustworthy contrast
                // exists anywhere (the seasonal fallback already ran).
                Err(DidError::InsufficientCoverage { .. }) => (
                    None,
                    Verdict::Inconclusive {
                        awaiting_backfill: partition_gapped,
                    },
                ),
                // Other failures (e.g. series misalignment): deliver the
                // raw detection to the operations team (they adjudicate),
                // per the paper's deliver-everything stance on dubious data.
                Err(_) => (None, Verdict::Caused),
            }
        } else if suppressed > 0 {
            // A change point exists but borders an unhealed gap: neither
            // "caused" (it may be a fill artifact) nor "not caused" (it may
            // be real) — queue it for the post-heal re-run.
            (
                None,
                Verdict::Inconclusive {
                    awaiting_backfill: true,
                },
            )
        } else {
            (None, Verdict::NotCaused)
        };

        // Verdicts attribute to the change's own minute — workers inherit
        // the cursor pinned by the single-threaded assessment entry, so
        // every thread writes the same window.
        let tl_window = funnel_obs::timeline::current_window();
        match verdict {
            Verdict::Caused => {
                funnel_obs::timeline_counter_add(funnel_obs::names::VERDICT_CAUSED, tl_window, 1);
            }
            Verdict::NotCaused => {
                funnel_obs::timeline_counter_add(
                    funnel_obs::names::VERDICT_NOT_CAUSED,
                    tl_window,
                    1,
                );
            }
            Verdict::Inconclusive { awaiting_backfill } => {
                funnel_obs::timeline_counter_add(
                    funnel_obs::names::VERDICT_INCONCLUSIVE,
                    tl_window,
                    1,
                );
                if awaiting_backfill {
                    funnel_obs::timeline_counter_add(
                        funnel_obs::names::VERDICT_AWAITING_BACKFILL,
                        tl_window,
                        1,
                    );
                }
            }
        }

        Ok(ItemAssessment {
            key,
            detection,
            did,
            mode,
            caused: verdict.is_caused(),
            verdict,
            quality,
            window: (lo, to),
        })
    }

    /// Steps 2–3: SST + persistence over the (pre-sliced) assessment
    /// window.
    fn detect(&self, window: &TimeSeries, change_minute: MinuteBin) -> Option<ChangeEvent> {
        self.runner()
            .run(window)
            .into_iter()
            .find(|e| e.declared_at >= change_minute)
    }

    /// Coverage- and gap-aware detection for sources that track which bins
    /// were really measured: low-coverage windows are skipped and change
    /// points bordering a partition-length gap are suppressed.
    fn detect_masked(&self, window: &TimeSeries, mask: &CoverageMask) -> MaskedRun {
        self.runner().run_masked_gap_aware(
            window,
            mask,
            self.config.min_coverage,
            self.config.min_partition_gap,
        )
    }

    fn runner(&self) -> DetectorRunner<SstDetector<FastSst>> {
        DetectorRunner::new(
            SstDetector::fast(self.sst.clone()),
            self.config.sst_threshold,
            self.config.persistence_minutes,
        )
    }

    /// Steps 4–11: DiD against the appropriate control group.
    #[allow(clippy::too_many_arguments)]
    fn determine(
        &self,
        source: &impl KpiSource,
        change: &SoftwareChange,
        impact_set: &ImpactSet,
        key: KpiKey,
        series: &TimeSeries,
        mode: AssessmentMode,
        cache: &mut AssessCache,
    ) -> Result<(DidVerdict, DidEstimate), DidError> {
        match mode {
            AssessmentMode::SeasonalHistory => {
                let ctl = SeasonalControl::new(self.config.history_days);
                ctl.assess(&self.assessor, series, change.minute)
            }
            AssessmentMode::DarkLaunchControl => {
                // Control keys mirror the treated entity's level (§3.2.4):
                // server items contrast against the cservers, instance and
                // service items against the cinstances. Every treated item
                // at one level therefore shares the same control fetch, so
                // the members — with their coverage masks, needed because a
                // member whose measured fraction diverges across the change
                // minute would bias the contrast and `assess_masked` drops
                // it — and the group's mean coverage over the DiD periods
                // are memoized in the worker-local cache.
                let period = self.config.did.period_minutes;
                let did_from = change.minute.saturating_sub(period);
                let did_to = change.minute + period + 1;
                let group =
                    cache
                        .control
                        .get_or_insert_with((control_level(key.entity), key.kind), || {
                            let control_keys = control_keys_for(impact_set, key);
                            let coverage = if control_keys.is_empty() {
                                0.0
                            } else {
                                control_keys
                                    .iter()
                                    .map(|k| source.coverage(k, did_from, did_to))
                                    // funnel-lint: allow(float-accumulation-order): Vec built in sorted impact-set order, no hashed container
                                    .sum::<f64>()
                                    / control_keys.len() as f64
                            };
                            let members: Vec<(TimeSeries, Option<CoverageMask>)> = control_keys
                                .iter()
                                .filter_map(|k| source.series(k).map(|s| (s, source.mask(k))))
                                .collect();
                            (members, coverage)
                        });
                let (control_members, ctl_coverage) = &*group;
                // A contrast against a control group that was itself mostly
                // gap-filled proves nothing: bail out (into the seasonal
                // fallback below) when its coverage falls short.
                if *ctl_coverage < self.config.min_coverage {
                    Err(DidError::InsufficientCoverage {
                        group: "control",
                        required_pct: (self.config.min_coverage * 100.0).round() as u8,
                        got_pct: (ctl_coverage * 100.0).round().clamp(0.0, 100.0) as u8,
                    })
                } else {
                    // For the changed service's KPI the treated group is
                    // the tinstances; server/instance items are their own
                    // treated group.
                    let treated_keys = treated_keys_for(impact_set, key);
                    let treated: Vec<(TimeSeries, Option<CoverageMask>)> = treated_keys
                        .iter()
                        .filter_map(|k| source.series(k).map(|s| (s, source.mask(k))))
                        .collect();
                    let tr: Vec<(&TimeSeries, Option<&CoverageMask>)> =
                        treated.iter().map(|(s, m)| (s, m.as_ref())).collect();
                    let cr: Vec<(&TimeSeries, Option<&CoverageMask>)> = control_members
                        .iter()
                        .map(|(s, m)| (s, m.as_ref()))
                        .collect();
                    self.assessor.assess_masked(&tr, &cr, change.minute)
                }
            }
        }
        .or_else(|err| {
            // Dark-launch control unusable (series misalignment, coverage
            // shortfall): fall back to the seasonal mode before giving up —
            // but keep the coverage complaint if the fallback also fails.
            if mode == AssessmentMode::DarkLaunchControl {
                let ctl = SeasonalControl::new(self.config.history_days);
                ctl.assess(&self.assessor, series, change.minute)
                    .map_err(|fallback_err| {
                        if matches!(err, DidError::InsufficientCoverage { .. }) {
                            err
                        } else {
                            fallback_err
                        }
                    })
            } else {
                Err(err)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_sim::effect::{ChangeEffect, EffectScope};
    use funnel_sim::scenario::{ads_world, redis_world};
    use funnel_sim::world::{SimConfig, WorldBuilder};
    use funnel_topology::change::ChangeKind;

    fn dark_world(delta: f64) -> (World, ChangeId) {
        let mut b = WorldBuilder::new(SimConfig::days(17, 8));
        let svc = b.add_service("prod.pipe", 6).unwrap();
        let effect = if delta != 0.0 {
            ChangeEffect::none().with_level_shift(
                KpiKind::PageViewResponseDelay,
                EffectScope::TreatedInstances,
                delta,
            )
        } else {
            ChangeEffect::none()
        };
        let minute = 7 * 1440 + 300;
        let id = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, minute, effect, "test")
            .unwrap();
        (b.build(), id)
    }

    #[test]
    fn real_impact_is_attributed() {
        let (world, change) = dark_world(80.0);
        let funnel = Funnel::paper_default();
        let a = funnel.assess_change(&world, change).unwrap();
        assert!(a.has_impact());
        // The treated instances' delay KPI must be among the caused items.
        let caused_delay = a
            .caused_items()
            .filter(|i| {
                i.key.kind == KpiKind::PageViewResponseDelay
                    && matches!(i.key.entity, Entity::Instance(_))
            })
            .count();
        assert!(caused_delay >= 1, "no instance delay item attributed");
        // Detected under dark launching with a control group.
        let item = a
            .items
            .iter()
            .find(|i| i.caused && matches!(i.key.entity, Entity::Instance(_)))
            .unwrap();
        assert_eq!(item.mode, AssessmentMode::DarkLaunchControl);
        assert!(item.detection.is_some());
        assert!(item.did.is_some());
    }

    #[test]
    fn no_impact_change_is_clean() {
        let (world, change) = dark_world(0.0);
        let funnel = Funnel::paper_default();
        let a = funnel.assess_change(&world, change).unwrap();
        assert!(!a.has_impact(), "false attribution");
    }

    #[test]
    fn unknown_change_errors() {
        let (world, _) = dark_world(0.0);
        let funnel = Funnel::paper_default();
        assert!(matches!(
            funnel.assess_change(&world, ChangeId(99)),
            Err(FunnelError::UnknownChange(_))
        ));
    }

    #[test]
    fn degraded_telemetry_reports_inconclusive_not_caused() {
        use funnel_sim::agent::{replay_with_faults, FaultPlan};
        use funnel_sim::MetricStore;

        let (world, change) = dark_world(80.0);
        let store = MetricStore::new();
        let plan = FaultPlan {
            seed: 3,
            drop_frame_prob: 0.4,
            ..FaultPlan::none()
        };
        replay_with_faults(&world, &store, 3, plan).unwrap();

        let funnel = Funnel::paper_default();
        let record = world.change_log().get(change).unwrap();
        let a = funnel
            .assess_change_with(&store, world.topology(), record, &|svc| {
                world.kinds_of_service(svc).to_vec()
            })
            .unwrap();

        // Hard guarantee: no attribution rests on a window below the
        // coverage threshold — those items are Inconclusive instead.
        let min_cov = funnel.config().min_coverage;
        for item in &a.items {
            assert!(
                !(item.caused && item.quality.coverage < min_cov),
                "{:?} attributed on {:.0}% coverage",
                item.key,
                item.quality.coverage * 100.0
            );
            if item.verdict.is_inconclusive() {
                assert!(!item.caused);
            }
        }
        // 40% frame loss leaves most windows under the threshold.
        assert!(
            a.inconclusive_items().count() > 0,
            "heavy loss must yield inconclusive items"
        );
    }

    #[test]
    fn clean_store_assessment_matches_world_assessment() {
        let (world, change) = dark_world(80.0);
        let store = world.materialize().unwrap();
        let funnel = Funnel::paper_default();
        let record = world.change_log().get(change).unwrap();
        let via_store = funnel
            .assess_change_with(&store, world.topology(), record, &|svc| {
                world.kinds_of_service(svc).to_vec()
            })
            .unwrap();
        let via_world = funnel.assess_change(&world, change).unwrap();
        assert_eq!(via_store.items.len(), via_world.items.len());
        for (s, w) in via_store.items.iter().zip(&via_world.items) {
            assert_eq!(s.key, w.key);
            assert_eq!(s.verdict, w.verdict, "{:?}", s.key);
            assert_eq!(s.quality.coverage, 1.0, "{:?}", s.key);
        }
    }

    #[test]
    fn ads_incident_detected_seasonally() {
        let (world, ads, change) = ads_world(42);
        let mut config = FunnelConfig::paper_default();
        config.history_days = 6;
        let funnel = Funnel::new(config);
        let a = funnel.assess_change(&world, change).unwrap();
        assert!(a.has_impact());
        let click_item = a
            .items
            .iter()
            .find(|i| i.key == KpiKey::new(Entity::Service(ads), KpiKind::EffectiveClickCount))
            .expect("click item assessed");
        assert!(click_item.caused, "click collapse not attributed");
        assert_eq!(click_item.mode, AssessmentMode::SeasonalHistory);
    }

    #[test]
    fn redis_config_change_flags_both_classes() {
        let (world, class_a, class_b, change) = redis_world(7);
        let mut config = FunnelConfig::paper_default();
        config.history_days = 2;
        let funnel = Funnel::new(config);
        let a = funnel.assess_change(&world, change).unwrap();
        let caused_servers: Vec<_> = a
            .caused_items()
            .filter_map(|i| match i.key.entity {
                Entity::Server(s) if i.key.kind == KpiKind::NicThroughput => Some(s),
                _ => None,
            })
            .collect();
        // The paper's Fig. 6 case flagged 16 of 118 impact-set KPIs — not
        // every server individually clears the bar on variable NIC data, so
        // require a majority signal per class rather than a clean sweep.
        let a_hits = class_a
            .iter()
            .filter(|s| caused_servers.contains(s))
            .count();
        let b_hits = class_b
            .iter()
            .filter(|s| caused_servers.contains(s))
            .count();
        assert!(a_hits >= 3, "class A hits {a_hits}");
        assert!(b_hits >= 3, "class B hits {b_hits}");
        assert!(a_hits + b_hits >= 8, "total NIC hits {}", a_hits + b_hits);
    }
}
