//! The streaming assessment engine — bounded memory, backpressure, and
//! graceful load shedding.
//!
//! The batch pipeline ([`Funnel::assess_change_with`]) re-reads full series
//! from an unbounded store every time it runs. This module is the
//! continuously-running form: frames flow tick-by-tick into fixed-capacity
//! per-KPI ring buffers ([`RingSeries`] — resident window memory is bounded
//! regardless of uptime), a dirty-set scheduler re-scores only the
//! `(entity, kpi)` pairs whose window actually changed, and per-KPI SST
//! state ([`StreamingSst`]) folds each new minute in incrementally instead
//! of re-scoring the whole window history.
//!
//! # Robustness contract
//!
//! * **Every inter-stage queue is bounded.** The scoring fan-out uses a
//!   bounded job channel (the submitter blocks — explicit backpressure —
//!   rather than queueing unboundedly) and the verdict output channel is
//!   bounded drop-not-block (a slow consumer loses verdicts, counted in
//!   [`StreamStats::verdicts_dropped`], and never stalls ingest — the same
//!   discipline as the store's subscriber fan-out).
//! * **Deterministic load shedding.** When a tick's pending re-scores
//!   exceed [`StreamConfig::tick_budget`], the lowest-priority keys are
//!   dropped for that tick by a pure function of `(seed, tick, key)` —
//!   recorded, never randomized, exactly like the supervisor's backoff
//!   schedule. Service-level KPIs outrank server KPIs outrank instance
//!   KPIs (aggregates are few and answer for many). A work unit that was
//!   shed inside its assessment window is *not* silently assessed from a
//!   degraded monitor: it completes as [`Verdict::Inconclusive`] flagged
//!   [`QualityIssue::LoadShed`].
//! * **Staleness watermark.** A verdict is only computed from a window
//!   whose newest data is at most [`StreamConfig::staleness_limit`]
//!   minutes older than the window it needs; keys whose feed died are
//!   flagged `LoadShed` instead of being judged on stale data.
//! * **Late frames** behind the tick watermark route through
//!   [`RingSeries::backfill`] (the store's backfill semantics), mark the
//!   key dirty, and force the key's SST monitor to re-prime — the cheap
//!   incremental fold is only valid while history is immutable.
//!
//! # Streaming ≡ batch
//!
//! For every key that was neither shed nor stale, the final verdict is
//! produced by the *same* [`Funnel`] assessment code as the batch path,
//! reading through a [`KpiSource`] view of the rings. While nothing a
//! change needs has been evicted (see [`StreamConfig::capacity_for`]),
//! the ring content is byte-identical to the unbounded store's series —
//! proven by the `ring_model` property tests — so streaming verdicts are
//! byte-identical to `assess_change_with` on a snapshot, at any worker
//! count. The incremental SST monitors only drive *detection latency*
//! reporting and dirty-set bookkeeping; they never replace the
//! assessment-window scoring.

use crate::config::FunnelConfig;
use crate::diagnose::diagnose_assessment;
use crate::parallel;
use crate::pipeline::{
    enumerate_work_units, AssessmentMode, DataQuality, Funnel, FunnelError, ItemAssessment, Verdict,
};
use crate::quality::{QualityIssue, QualityReport};
use crate::source::KpiSource;
use crate::supervise::splitmix64;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use funnel_diag::DiagReport;
use funnel_obs::names;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::store::Measurement;
use funnel_sim::wire::key_to_bytes;
use funnel_sst::{FastSst, StreamingSst};
use funnel_timeseries::mask::CoverageMask;
use funnel_timeseries::ring::{RingSeries, RingWrite};
use funnel_timeseries::series::{MinuteBin, TimeSeries};
use funnel_topology::change::{ChangeId, SoftwareChange};
use funnel_topology::impact::{identify_impact_set, Entity, ImpactSet};
use funnel_topology::model::{ServiceId, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning for one [`StreamEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Per-KPI ring capacity in one-minute bins: the resident window.
    /// Memory is bounded by `keys × ring_capacity × 9` bytes no matter how
    /// long the engine runs. Size with [`StreamConfig::capacity_for`] when
    /// streaming verdicts must be byte-identical to batch.
    pub ring_capacity: usize,
    /// Deadline budget per tick, measured in key-minute folds (the unit of
    /// scoring work — wall clocks are banned from the pipeline, and a work
    /// count is deterministic where a clock is not). `0` means unbounded:
    /// never shed. When a tick's pending folds exceed the budget, the
    /// shedding policy drops the lowest-priority keys for this tick.
    pub tick_budget: u64,
    /// Seed for the shed-rank mixer. Same seed + same tick + same keys →
    /// the same shed set, on every machine, at every worker count.
    pub shed_seed: u64,
    /// Maximum age, in minutes, of a window's newest data relative to the
    /// window a due verdict needs. Keys whose feed fell further behind are
    /// flagged [`QualityIssue::LoadShed`] instead of judged on stale data.
    pub staleness_limit: u64,
    /// Capacity of the bounded scoring job queue. The tick's submitter
    /// blocks when it fills — backpressure, not unbounded queueing.
    pub queue_capacity: usize,
    /// Capacity of the bounded verdict output channel; when full, further
    /// verdicts are dropped (and counted), never allowed to stall a tick.
    pub verdict_capacity: usize,
    /// Worker threads for the per-tick scoring fan-out (the due-change
    /// final assessments use the [`FunnelConfig::assess`] worker count).
    pub workers: usize,
}

impl StreamConfig {
    /// Defaults paired with `funnel`: ring sized for a 7-day horizon, no
    /// tick budget (never shed), a 60-minute staleness watermark.
    pub fn paired_with(funnel: &FunnelConfig) -> Self {
        Self {
            ring_capacity: Self::capacity_for(funnel, 7 * 1440),
            tick_budget: 0,
            shed_seed: 2015,
            staleness_limit: 60,
            queue_capacity: 1024,
            verdict_capacity: 65_536,
            workers: 1,
        }
    }

    /// The ring capacity that guarantees streaming verdicts are
    /// byte-identical to batch for any change assessed within
    /// `horizon_minutes` of its series anchor: the batch pipeline's
    /// seasonal-history control reads the *full* series, so nothing may be
    /// evicted between the anchor and the due tick. `horizon_minutes`
    /// covers anchor → change; the assessment tail and detector lookback
    /// are added here.
    pub fn capacity_for(config: &FunnelConfig, horizon_minutes: u64) -> usize {
        let tail = config.assessment_minutes
            + config.warmup_minutes()
            + config.sst.window_len() as u64
            + 2;
        usize::try_from(horizon_minutes.saturating_add(tail)).unwrap_or(usize::MAX)
    }
}

/// How [`StreamEngine::offer`] routed one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamIngest {
    /// Appended at (or ahead of) the frontier — the live path.
    Live,
    /// Behind the watermark but inside the retained window: backfilled,
    /// key re-marked dirty, monitor scheduled for a re-prime.
    Late,
    /// The bin already held a real measurement; first write wins.
    Duplicate,
    /// Behind the retained window — the bin was already evicted.
    Evicted,
}

/// A live change declaration from a streaming monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDetection {
    /// Which KPI changed.
    pub key: KpiKey,
    /// The minute the persistence rule declared the change.
    pub declared_at: MinuteBin,
    /// The minute the score first exceeded the threshold.
    pub first_exceeded_at: MinuteBin,
    /// Peak filtered SST score in the run.
    pub peak_score: f64,
}

/// One item verdict on the streaming output channel.
#[derive(Debug, Clone)]
pub struct StreamVerdict {
    /// The change the verdict belongs to.
    pub change: ChangeId,
    /// The item, byte-identical to the batch pipeline's unless flagged
    /// [`QualityIssue::LoadShed`].
    pub item: ItemAssessment,
    /// The tick minute the verdict was emitted.
    pub emitted_at: MinuteBin,
    /// Minutes from the change to the first streaming detection on any of
    /// the change's work keys, when one fired before emission.
    pub detection_latency: Option<u64>,
}

/// A completed change assessment returned from [`StreamEngine::tick`].
#[derive(Debug, Clone)]
pub struct StreamAssessment {
    /// The assessed change.
    pub change: ChangeId,
    /// All work-unit items in key order: assessed items for keys that were
    /// neither shed nor stale, `LoadShed`-flagged `Inconclusive` items for
    /// the rest.
    pub items: Vec<ItemAssessment>,
    /// Work keys dropped by the shedding policy inside the assessment
    /// window (sorted).
    pub shed: Vec<KpiKey>,
    /// Work keys whose window data was stale (or absent) past the
    /// watermark at assessment time (sorted).
    pub stale: Vec<KpiKey>,
    /// The tick minute the assessment completed.
    pub emitted_at: MinuteBin,
    /// Minutes from the change to the first streaming detection on any of
    /// its work keys.
    pub detection_latency: Option<u64>,
    /// The diagnosis of the completed assessment, when the opt-in stage
    /// ([`FunnelConfig::diagnose`]) is enabled — `None` otherwise. Strictly
    /// derived *from* the items above; its presence never alters them.
    pub diagnosis: Option<DiagReport>,
}

/// What one [`StreamEngine::tick`] did.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// The tick minute.
    pub minute: MinuteBin,
    /// Dirty keys at the top of the tick.
    pub dirty: usize,
    /// Keys actually re-scored this tick.
    pub scored_keys: usize,
    /// Key-minute folds performed this tick.
    pub folds: u64,
    /// Keys dropped by the shedding policy this tick.
    pub shed_keys: usize,
    /// Change declarations fired this tick, in work-order.
    pub detections: Vec<StreamDetection>,
    /// Changes whose assessment window completed this tick.
    pub completed: Vec<StreamAssessment>,
}

/// Monotonic counters over the engine's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Ticks processed.
    pub ticks: u64,
    /// Key-minute folds performed.
    pub folds: u64,
    /// Key re-scores dropped by the shedding policy.
    pub shed: u64,
    /// Work keys flagged stale at assessment time.
    pub stale: u64,
    /// Streaming change declarations.
    pub detections: u64,
    /// Verdicts delivered on the output channel.
    pub verdicts: u64,
    /// Verdicts dropped because the output channel was full.
    pub verdicts_dropped: u64,
    /// Late frames folded in via ring backfill.
    pub late_backfilled: u64,
    /// Late frames refused (duplicate bin or evicted window).
    pub late_rejected: u64,
    /// Live frames refused as duplicates.
    pub duplicates: u64,
    /// Due-change assessments that failed internally and were degraded to
    /// `LoadShed` items instead of stalling the engine.
    pub assess_errors: u64,
    /// Peak total resident window memory observed, in accounted bytes.
    pub peak_window_bytes: usize,
    /// Peak dirty-set depth observed at the top of a tick.
    pub peak_dirty: usize,
}

/// Per-key incremental monitor: rolling SST window + persistence counter.
struct KeyMonitor {
    sst: StreamingSst<FastSst>,
    /// First minute not yet folded. Valid only while `primed`.
    next_minute: MinuteBin,
    /// Cleared when a backfill rewrites folded history: the next scoring
    /// pass resets the rolling window and re-primes from the ring.
    primed: bool,
    run_len: usize,
    run_start: MinuteBin,
    run_peak: f64,
    armed: bool,
}

impl KeyMonitor {
    fn new(scorer: FastSst, start: MinuteBin) -> Self {
        Self {
            sst: StreamingSst::new(scorer),
            next_minute: start,
            primed: true,
            run_len: 0,
            run_start: 0,
            run_peak: 0.0,
            armed: true,
        }
    }
}

/// A change under streaming assessment.
struct TrackedChange {
    record: SoftwareChange,
    impact_set: ImpactSet,
    /// The topology snapshot at tracking time, kept only when the
    /// diagnosis stage is enabled (it needs entity names and zones at
    /// completion; the engine itself never reads topology after tracking).
    topology: Option<Topology>,
    /// The enumerated work units, sorted (the batch enumeration).
    work: Vec<KpiKey>,
    /// The last minute the assessment window needs; the change completes
    /// on the first tick at or after it.
    due: MinuteBin,
    /// Work keys shed inside the assessment window.
    shed: BTreeSet<KpiKey>,
    /// First streaming detection on any work key at/after the change.
    first_detection: Option<MinuteBin>,
    done: bool,
}

/// A [`KpiSource`] view over the engine's rings, handed to the batch
/// assessment code at due time. While nothing relevant was evicted the
/// views are byte-identical to the unbounded store's series and masks.
struct RingView<'a> {
    rings: &'a BTreeMap<KpiKey, RingSeries>,
}

impl KpiSource for RingView<'_> {
    fn series(&self, key: &KpiKey) -> Option<TimeSeries> {
        let ring = self.rings.get(key)?;
        if ring.is_empty() {
            return None;
        }
        Some(ring.to_series())
    }

    fn coverage(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> f64 {
        self.rings
            .get(key)
            .map_or(0.0, |ring| ring.coverage(from, to))
    }

    fn mask(&self, key: &KpiKey) -> Option<CoverageMask> {
        let ring = self.rings.get(key)?;
        if ring.is_empty() {
            return None;
        }
        Some(ring.to_mask())
    }
}

/// Shedding priority class: lower keeps longer. Service aggregates are few
/// and answer for many KPIs; instance KPIs are plentiful and redundant.
fn shed_class(entity: Entity) -> u8 {
    match entity {
        Entity::Service(_) => 0,
        Entity::Server(_) => 1,
        Entity::Instance(_) => 2,
    }
}

/// Index-free LE packing of the 6 key bytes into the low 48 bits — the
/// same key hash the supervisor's backoff schedule uses.
fn key_hash(key: KpiKey) -> u64 {
    key_to_bytes(key)
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << (8 * i)))
}

/// The shed rank of `key` at `tick`: a pure, recorded function of the seed
/// — never a random draw, so a re-run with the same seed sheds the same
/// set and the decision can be audited after the fact.
fn shed_rank(seed: u64, tick: MinuteBin, key: KpiKey) -> u64 {
    splitmix64(seed ^ key_hash(key).rotate_left(17) ^ tick)
}

/// The synthesized verdict for a shed or stale work unit: `Inconclusive`,
/// zero trusted coverage, flagged [`QualityIssue::LoadShed`]. Mirrors the
/// supervisor's quarantine item — the window comes from the change and
/// config alone, because the data was never trustworthily scored.
fn shed_item(funnel: &Funnel, change: &SoftwareChange, key: KpiKey) -> ItemAssessment {
    let config = funnel.config();
    let lookback = config.sst.window_len() as u64 + config.warmup_minutes();
    let from = change.minute.saturating_sub(lookback);
    let to = change.minute + config.assessment_minutes + 1;
    funnel_obs::timeline_counter_add(names::VERDICT_INCONCLUSIVE, change.minute, 1);
    ItemAssessment {
        key,
        detection: None,
        did: None,
        mode: AssessmentMode::SeasonalHistory,
        caused: false,
        verdict: Verdict::Inconclusive {
            awaiting_backfill: false,
        },
        quality: DataQuality {
            coverage: 0.0,
            report: QualityReport {
                issues: vec![QualityIssue::LoadShed],
            },
        },
        window: (from, to),
    }
}

/// One scoring assignment: fold ring minutes `[lo, to)` into the monitor.
struct ScorePlan {
    lo: MinuteBin,
    to: MinuteBin,
    /// Reset the rolling window before folding (re-prime after backfill).
    reprime: bool,
    cost: u64,
}

/// Folds the planned ring minutes into one monitor, applying the
/// threshold-persistence rule; returns the folds done and any declaration.
/// Runs on scoring workers — must stay panic-free (hot path).
fn score_key(
    monitor: &mut KeyMonitor,
    ring: &RingSeries,
    plan: &ScorePlan,
    threshold: f64,
    persistence: usize,
    key: KpiKey,
) -> (u64, Vec<StreamDetection>) {
    let mut detections = Vec::new();
    if plan.reprime {
        monitor.sst.reset();
        monitor.run_len = 0;
        monitor.run_peak = 0.0;
        monitor.armed = true;
    }
    let mut folds = 0u64;
    let mut minute = plan.lo;
    while minute < plan.to {
        let Some(value) = ring.at(minute) else {
            // Planned past the retained window (cannot happen by
            // construction; defensive skip keeps the path panic-free).
            minute += 1;
            continue;
        };
        folds += 1;
        if let Some(score) = monitor.sst.fold(value) {
            if score >= threshold {
                if monitor.run_len == 0 {
                    monitor.run_start = minute;
                    monitor.run_peak = score;
                } else {
                    monitor.run_peak = monitor.run_peak.max(score);
                }
                monitor.run_len += 1;
                if monitor.armed && monitor.run_len >= persistence {
                    monitor.armed = false;
                    detections.push(StreamDetection {
                        key,
                        declared_at: minute,
                        first_exceeded_at: monitor.run_start,
                        peak_score: monitor.run_peak,
                    });
                }
            } else {
                monitor.run_len = 0;
                monitor.armed = true;
            }
        }
        minute += 1;
    }
    monitor.next_minute = plan.to;
    monitor.primed = true;
    (folds, detections)
}

/// The streaming assessment engine. Single-threaded at the API surface
/// (`offer`/`track_change`/`tick` take `&mut self`); each tick fans its
/// scoring across [`StreamConfig::workers`] scoped threads internally.
pub struct StreamEngine {
    funnel: Funnel,
    config: StreamConfig,
    service_kinds: BTreeMap<ServiceId, Vec<KpiKind>>,
    rings: BTreeMap<KpiKey, RingSeries>,
    monitors: BTreeMap<KpiKey, KeyMonitor>,
    dirty: BTreeSet<KpiKey>,
    watermark: Option<MinuteBin>,
    changes: Vec<TrackedChange>,
    shed_log: Vec<(MinuteBin, KpiKey)>,
    verdict_tx: Sender<StreamVerdict>,
    verdict_rx: Receiver<StreamVerdict>,
    stats: StreamStats,
}

impl StreamEngine {
    /// Creates an engine. `service_kinds` maps each service to the
    /// instance KPI kinds it carries (the same table the batch
    /// enumeration consumes).
    pub fn new(
        funnel: FunnelConfig,
        config: StreamConfig,
        service_kinds: BTreeMap<ServiceId, Vec<KpiKind>>,
    ) -> Self {
        let (verdict_tx, verdict_rx) = bounded(config.verdict_capacity.max(1));
        Self {
            funnel: Funnel::new(funnel),
            config,
            service_kinds,
            rings: BTreeMap::new(),
            monitors: BTreeMap::new(),
            dirty: BTreeSet::new(),
            watermark: None,
            changes: Vec::new(),
            shed_log: Vec::new(),
            verdict_tx,
            verdict_rx,
            stats: StreamStats::default(),
        }
    }

    /// The engine's stream tuning.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The wrapped assessment pipeline.
    pub fn funnel(&self) -> &Funnel {
        &self.funnel
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The bounded verdict output channel (drop-not-block on overflow).
    pub fn verdicts(&self) -> &Receiver<StreamVerdict> {
        &self.verdict_rx
    }

    /// Every `(tick, key)` the shedding policy dropped, in decision order
    /// — the audit trail proving sheds are recorded, never random.
    pub fn shed_log(&self) -> &[(MinuteBin, KpiKey)] {
        &self.shed_log
    }

    /// The last tick minute processed.
    pub fn watermark(&self) -> Option<MinuteBin> {
        self.watermark
    }

    /// KPI keys with resident ring state.
    pub fn key_count(&self) -> usize {
        self.rings.len()
    }

    /// Total resident window memory across all rings, in accounted bytes
    /// (capacity × bin size — the deterministic bound, not an allocator
    /// measurement).
    pub fn window_bytes(&self) -> usize {
        self.rings
            .values()
            .map(RingSeries::window_bytes)
            .fold(0usize, usize::saturating_add)
    }

    /// Changes tracked and not yet completed.
    pub fn pending_changes(&self) -> usize {
        self.changes.iter().filter(|c| !c.done).count()
    }

    /// Registers a change for streaming assessment. The work units are
    /// enumerated exactly as the batch pipeline would; the assessment
    /// completes on the first tick at or after
    /// `change.minute + assessment_minutes`.
    ///
    /// # Errors
    ///
    /// Propagates impact-set identification failures.
    pub fn track_change(
        &mut self,
        topology: &Topology,
        record: SoftwareChange,
    ) -> Result<ChangeId, FunnelError> {
        let impact_set = identify_impact_set(topology, &record)?;
        let kinds = &self.service_kinds;
        let work = enumerate_work_units(&impact_set, &record, &|svc| {
            kinds.get(&svc).cloned().unwrap_or_default()
        });
        let due = record.minute + self.funnel.config().assessment_minutes;
        let id = record.id;
        let diag_topology = self
            .funnel
            .config()
            .diagnose
            .enabled
            .then(|| topology.clone());
        self.changes.push(TrackedChange {
            record,
            impact_set,
            topology: diag_topology,
            work,
            due,
            shed: BTreeSet::new(),
            first_detection: None,
            done: false,
        });
        Ok(id)
    }

    /// Ingests one measurement. Never blocks, never panics: live frames
    /// append to the key's ring (evicting the oldest bin when full), late
    /// frames behind the tick watermark take the backfill path, and either
    /// way an accepted write marks the key dirty for the next tick.
    pub fn offer(&mut self, m: Measurement) -> StreamIngest {
        if !m.value.is_finite() {
            // The collector quarantines non-finite values before the store;
            // a directly-driven engine applies the same plausibility gate.
            self.stats.late_rejected += 1;
            return StreamIngest::Duplicate;
        }
        let late = self.watermark.is_some_and(|w| m.minute <= w);
        let capacity = self.config.ring_capacity;
        let ring = self
            .rings
            .entry(m.key)
            .or_insert_with(|| RingSeries::new(capacity));
        if late {
            match ring.backfill(m.minute, m.value) {
                RingWrite::Accepted => {
                    self.stats.late_backfilled += 1;
                    funnel_obs::timeline_counter_add(names::STREAM_LATE_BACKFILLED, m.minute, 1);
                    self.dirty.insert(m.key);
                    if let Some(monitor) = self.monitors.get_mut(&m.key) {
                        if m.minute < monitor.next_minute {
                            monitor.primed = false;
                        }
                    }
                    StreamIngest::Late
                }
                RingWrite::Duplicate => {
                    self.stats.late_rejected += 1;
                    funnel_obs::timeline_counter_add(names::STREAM_LATE_REJECTED, m.minute, 1);
                    StreamIngest::Duplicate
                }
                RingWrite::Evicted => {
                    self.stats.late_rejected += 1;
                    funnel_obs::timeline_counter_add(names::STREAM_LATE_REJECTED, m.minute, 1);
                    StreamIngest::Evicted
                }
            }
        } else {
            match ring.push(m.minute, m.value) {
                RingWrite::Accepted => {
                    self.dirty.insert(m.key);
                    StreamIngest::Live
                }
                _ => {
                    self.stats.duplicates += 1;
                    StreamIngest::Duplicate
                }
            }
        }
    }

    /// Processes one tick: advance the watermark to `minute`, shed if the
    /// pending work exceeds the budget, re-score the surviving dirty keys
    /// across the worker pool, then complete every change whose assessment
    /// window closed. Never blocks on a slow consumer and never panics;
    /// overload degrades to recorded sheds, not stalls.
    pub fn tick(&mut self, minute: MinuteBin) -> TickReport {
        // The tick minute is the stream's timeline window: pinned at this
        // single-threaded choke point before the span opens, so every
        // metric and span below (including the scoring fan-out's) lands in
        // the minute being processed.
        funnel_obs::timeline::set_window(minute);
        let _span = funnel_obs::span!(names::SPAN_STREAM_TICK);
        self.watermark = Some(self.watermark.map_or(minute, |w| w.max(minute)));
        self.stats.ticks += 1;
        funnel_obs::timeline_counter_add(names::STREAM_TICKS, minute, 1);

        let mut report = TickReport {
            minute,
            dirty: self.dirty.len(),
            ..TickReport::default()
        };
        self.stats.peak_dirty = self.stats.peak_dirty.max(self.dirty.len());
        funnel_obs::timeline_histogram_record(
            names::STREAM_DIRTY_DEPTH,
            minute,
            self.dirty.len() as u64,
        );

        let plans = self.plan_scoring(minute);
        let lag = plans
            .values()
            .map(|p| (minute + 1).saturating_sub(p.lo))
            .max()
            .unwrap_or(0);
        funnel_obs::timeline_histogram_record(names::STREAM_WATERMARK_LAG, minute, lag);

        let (admitted, shed) = self.shed_policy(minute, plans);
        report.shed_keys = shed.len();
        self.apply_sheds(minute, shed);

        let (folds, detections) = self.run_scoring(minute, &admitted);
        report.scored_keys = admitted.len();
        report.folds = folds;
        self.stats.folds += folds;
        funnel_obs::timeline_counter_add(names::STREAM_SCORES, minute, folds);
        for d in &detections {
            self.stats.detections += 1;
            funnel_obs::timeline_counter_add(names::STREAM_DETECTIONS, minute, 1);
            for change in self.changes.iter_mut().filter(|c| !c.done) {
                if d.declared_at >= change.record.minute
                    && change.work.binary_search(&d.key).is_ok()
                {
                    let first = change.first_detection.get_or_insert(d.declared_at);
                    *first = (*first).min(d.declared_at);
                }
            }
        }
        report.detections = detections;

        report.completed = self.complete_due_changes(minute);

        funnel_obs::timeline_gauge_set(names::STREAM_KEYS, minute, self.rings.len() as u64);
        let window_bytes = self.window_bytes();
        self.stats.peak_window_bytes = self.stats.peak_window_bytes.max(window_bytes);
        funnel_obs::timeline_gauge_set(names::STREAM_WINDOW_BYTES, minute, window_bytes as u64);
        report
    }

    /// Plans the fold range for every dirty key (and creates missing
    /// monitors). Pure bookkeeping; no scoring happens here.
    fn plan_scoring(&mut self, minute: MinuteBin) -> BTreeMap<KpiKey, ScorePlan> {
        let window = self.funnel.config().sst.window_len() as u64;
        let scorer = self.funnel.scorer().clone();
        let mut plans = BTreeMap::new();
        let mut clean = Vec::new();
        for &key in &self.dirty {
            let Some(ring) = self.rings.get(&key) else {
                clean.push(key);
                continue;
            };
            let monitor = self
                .monitors
                .entry(key)
                .or_insert_with(|| KeyMonitor::new(scorer.clone(), ring.start()));
            let to = ring.end().min(minute + 1);
            let (lo, reprime) = if monitor.primed {
                (monitor.next_minute.max(ring.start()), false)
            } else {
                // Rewind far enough that every window ending at or after
                // the first unfolded minute gets scored from a fully
                // re-primed rolling window.
                let lo = monitor
                    .next_minute
                    .saturating_add(1)
                    .saturating_sub(window)
                    .max(ring.start());
                (lo, true)
            };
            if to <= lo {
                if ring.end() <= minute + 1 {
                    clean.push(key);
                }
                continue;
            }
            plans.insert(
                key,
                ScorePlan {
                    lo,
                    to,
                    reprime,
                    cost: to - lo,
                },
            );
        }
        for key in clean {
            self.dirty.remove(&key);
        }
        plans
    }

    /// Applies the deterministic shedding policy: admit plans in priority
    /// order until the tick budget is spent. The first key is always
    /// admitted so sustained overload still makes progress (no livelock).
    fn shed_policy(
        &self,
        minute: MinuteBin,
        plans: BTreeMap<KpiKey, ScorePlan>,
    ) -> (BTreeMap<KpiKey, ScorePlan>, Vec<KpiKey>) {
        let budget = self.config.tick_budget;
        let total: u64 = plans.values().map(|p| p.cost).sum();
        if budget == 0 || total <= budget {
            return (plans, Vec::new());
        }
        let mut ranked: Vec<(u8, u64, KpiKey)> = plans
            .keys()
            .map(|&key| {
                (
                    shed_class(key.entity),
                    shed_rank(self.config.shed_seed, minute, key),
                    key,
                )
            })
            .collect();
        ranked.sort_unstable();
        let mut admitted = BTreeMap::new();
        let mut shed = Vec::new();
        let mut spent = 0u64;
        let mut open = true;
        let mut plans = plans;
        for (_, _, key) in ranked {
            let Some(plan) = plans.remove(&key) else {
                continue;
            };
            let fits = spent.saturating_add(plan.cost) <= budget;
            if open && (fits || admitted.is_empty()) {
                spent = spent.saturating_add(plan.cost);
                admitted.insert(key, plan);
                open = fits || admitted.len() == 1;
            } else {
                open = false;
                shed.push(key);
            }
        }
        shed.sort_unstable();
        (admitted, shed)
    }

    /// Records this tick's sheds: counters, the audit log, and the shed
    /// set of every change whose assessment window covers the tick. Shed
    /// keys stay dirty — they are retried next tick.
    fn apply_sheds(&mut self, minute: MinuteBin, shed: Vec<KpiKey>) {
        for key in shed {
            self.stats.shed += 1;
            funnel_obs::timeline_counter_add(names::STREAM_SHED, minute, 1);
            self.shed_log.push((minute, key));
            for change in self.changes.iter_mut().filter(|c| !c.done) {
                if minute >= change.record.minute
                    && minute <= change.due
                    && change.work.binary_search(&key).is_ok()
                {
                    change.shed.insert(key);
                }
            }
        }
    }

    /// Scores the admitted keys, serially or across the bounded-queue
    /// worker pool; detections come back in key order either way.
    fn run_scoring(
        &mut self,
        minute: MinuteBin,
        admitted: &BTreeMap<KpiKey, ScorePlan>,
    ) -> (u64, Vec<StreamDetection>) {
        if admitted.is_empty() {
            return (0, Vec::new());
        }
        let threshold = self.funnel.config().sst_threshold;
        let persistence = self.funnel.config().persistence_minutes;
        let workers = self.config.workers.clamp(1, admitted.len());
        funnel_obs::timeline_histogram_record(
            names::STREAM_QUEUE_DEPTH,
            minute,
            admitted.len() as u64,
        );

        let rings = &self.rings;
        // Disjoint `&mut` monitors for exactly the admitted keys, in key
        // order (both maps iterate sorted).
        let mut jobs: Vec<(usize, KpiKey, &mut KeyMonitor, &ScorePlan)> = Vec::new();
        for (idx, (key, monitor)) in self
            .monitors
            .iter_mut()
            .filter(|(key, _)| admitted.contains_key(*key))
            .enumerate()
        {
            if let Some(plan) = admitted.get(key) {
                jobs.push((idx, *key, monitor, plan));
            }
        }

        let mut folds = 0u64;
        let mut per_key: Vec<(usize, Vec<StreamDetection>)> = Vec::with_capacity(jobs.len());
        if workers == 1 {
            for (idx, key, monitor, plan) in jobs {
                let ring = rings.get(&key);
                let Some(ring) = ring else { continue };
                let (f, dets) = score_key(monitor, ring, plan, threshold, persistence, key);
                folds += f;
                per_key.push((idx, dets));
            }
        } else {
            let queue = self.config.queue_capacity.max(1);
            let (job_tx, job_rx) = bounded::<(usize, KpiKey, &mut KeyMonitor, &ScorePlan)>(queue);
            // Sized so a result send can never block: at most one message
            // per job. Bounded all the same — no queue in the engine is
            // unbounded.
            let (result_tx, result_rx) =
                bounded::<(usize, u64, Vec<StreamDetection>)>(jobs.len().max(1));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let jobs_in = job_rx.clone();
                    let results = result_tx.clone();
                    scope.spawn(move || {
                        while let Ok((idx, key, monitor, plan)) = jobs_in.recv() {
                            let Some(ring) = rings.get(&key) else {
                                continue;
                            };
                            let (f, dets) =
                                score_key(monitor, ring, plan, threshold, persistence, key);
                            if results.send((idx, f, dets)).is_err() {
                                break;
                            }
                        }
                        funnel_obs::flush_thread();
                    });
                }
                drop(result_tx);
                drop(job_rx);
                for job in jobs {
                    // Blocking send on the bounded queue: backpressure on
                    // the submitter, not unbounded buffering.
                    if job_tx.send(job).is_err() {
                        break;
                    }
                }
                drop(job_tx);
                while let Ok((idx, f, dets)) = result_rx.recv() {
                    folds += f;
                    per_key.push((idx, dets));
                }
            });
        }
        per_key.sort_unstable_by_key(|(idx, _)| *idx);
        let detections = per_key.into_iter().flat_map(|(_, d)| d).collect();
        for key in admitted.keys() {
            let fully_folded = self
                .monitors
                .get(key)
                .zip(self.rings.get(key))
                .is_some_and(|(m, r)| m.primed && m.next_minute >= r.end());
            if fully_folded {
                self.dirty.remove(key);
            }
        }
        (folds, detections)
    }

    /// Completes every tracked change whose assessment window closed by
    /// this tick: the batch assessment runs over the ring view for keys
    /// that were neither shed nor stale; the rest get `LoadShed` items.
    fn complete_due_changes(&mut self, minute: MinuteBin) -> Vec<StreamAssessment> {
        let mut completed = Vec::new();
        let due: Vec<usize> = self
            .changes
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.done && minute >= c.due)
            .map(|(i, _)| i)
            .collect();
        for index in due {
            let Some(change) = self.changes.get(index) else {
                continue;
            };
            // The embedded batch assessment is attributed to the change's
            // own minute (like the batch path), not the tick that happened
            // to complete it; the cursor is restored before returning.
            funnel_obs::timeline::set_window(change.record.minute);
            let _span = funnel_obs::span!(names::SPAN_STREAM_ASSESS);
            let to = change.record.minute + self.funnel.config().assessment_minutes + 1;
            let mut live = Vec::new();
            let mut stale = Vec::new();
            for &key in &change.work {
                if change.shed.contains(&key) {
                    continue;
                }
                let fresh = self.rings.get(&key).is_some_and(|ring| {
                    !ring.is_empty() && ring.end().saturating_add(self.config.staleness_limit) >= to
                });
                if fresh {
                    live.push(key);
                } else {
                    stale.push(key);
                }
            }
            self.stats.stale += stale.len() as u64;
            funnel_obs::timeline_counter_add(
                names::STREAM_STALE,
                change.record.minute,
                stale.len() as u64,
            );

            let view = RingView { rings: &self.rings };
            let workers = self.funnel.config().assess.effective_workers();
            let mut items = match parallel::assess_work_units(
                &self.funnel,
                &view,
                &change.record,
                &change.impact_set,
                &live,
                workers,
            ) {
                Ok(items) => items,
                Err(_) => {
                    // A deterministic pipeline error mid-stream must not
                    // stall the engine: degrade the whole change to
                    // LoadShed items and count it.
                    self.stats.assess_errors += 1;
                    live.iter()
                        .map(|&key| shed_item(&self.funnel, &change.record, key))
                        .collect()
                }
            };
            items.extend(
                change
                    .shed
                    .iter()
                    .chain(stale.iter())
                    .map(|&key| shed_item(&self.funnel, &change.record, key)),
            );
            items.sort_by_key(|a| a.key);

            // The opt-in diagnosis stage: runs over the same ring view the
            // assessment just read, after the items are final — it can
            // explain them but never change them.
            let diagnosis = change.topology.as_ref().map(|topology| {
                diagnose_assessment(
                    &self.funnel,
                    &view,
                    topology,
                    &change.record,
                    &change.impact_set,
                    &items,
                )
            });

            let detection_latency = change
                .first_detection
                .map(|d| d.saturating_sub(change.record.minute));
            let assessment = StreamAssessment {
                change: change.record.id,
                items,
                shed: change.shed.iter().copied().collect(),
                stale,
                emitted_at: minute,
                detection_latency,
                diagnosis,
            };
            for item in &assessment.items {
                let verdict = StreamVerdict {
                    change: assessment.change,
                    item: item.clone(),
                    emitted_at: minute,
                    detection_latency,
                };
                match self.verdict_tx.try_send(verdict) {
                    Ok(()) => {
                        self.stats.verdicts += 1;
                        funnel_obs::timeline_counter_add(names::STREAM_VERDICTS, minute, 1);
                    }
                    Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                        self.stats.verdicts_dropped += 1;
                        funnel_obs::timeline_counter_add(names::STREAM_VERDICTS_DROPPED, minute, 1);
                    }
                }
            }
            completed.push(assessment);
            if let Some(change) = self.changes.get_mut(index) {
                change.done = true;
            }
        }
        // Restore the tick window for whatever runs after this call.
        funnel_obs::timeline::set_window(minute);
        completed
    }
}
