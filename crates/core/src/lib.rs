//! FUNNEL — rapid and robust impact assessment of software changes in large
//! internet-based services (Zhang et al., CoNEXT 2015).
//!
//! This crate is the end-to-end tool of the paper's Fig. 3. For each
//! software change it:
//!
//! 1. identifies the **impact set** — tservers, tinstances, the changed
//!    service, and transitively related (affected) services — from the
//!    change log and the service topology (step 1; `funnel-topology`),
//! 2. detects **KPI behaviour changes** in every impact-set KPI with the
//!    improved, IKA-accelerated SST under the 7-minute persistence rule
//!    (steps 2–3; `funnel-sst` + `funnel-detect`),
//! 3. **determines causality** for each detected change with a
//!    difference-in-differences comparison (steps 4–11; `funnel-did`):
//!    against the dark-launch control group when one exists, against the
//!    same clock windows on historical days otherwise,
//! 4. **delivers** the per-KPI verdicts to the operations team (step 12;
//!    [`report`]).
//!
//! Two driving modes are provided: [`pipeline::Funnel::assess_change`] runs
//! the batch assessment the paper's evaluation uses, and
//! [`online::OnlinePipeline`] consumes a live measurement subscription from
//! the metric store, scoring every KPI minute by minute — the deployment
//! mode of §5.
//!
//! The batch mode fans its per-KPI work units across a configurable worker
//! pool ([`config::AssessConfig`], [`parallel`]) with a deterministic
//! merge: the delivered report is byte-identical for any worker count.
//!
//! # Quick start
//!
//! ```
//! use funnel_core::pipeline::Funnel;
//! use funnel_sim::scenario::ads_world;
//!
//! let (world, _ads, change) = ads_world(42);
//! let funnel = Funnel::paper_default();
//! let assessment = funnel.assess_change(&world, change).unwrap();
//! // The broken upgrade's click collapse is detected and attributed:
//! assert!(assessment.items.iter().any(|i| i.caused));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod diagnose;
pub mod online;
pub mod online_assess;
pub mod parallel;
pub mod pipeline;
pub mod quality;
pub mod reassess;
pub mod report;
pub mod selfmon;
pub mod source;
pub mod stream;
pub mod supervise;

pub use config::{AssessConfig, FunnelConfig};
pub use funnel_diag::{DiagConfig, DiagReport};
pub use pipeline::{
    enumerate_work_units, AssessmentMode, ChangeAssessment, DataQuality, Funnel, FunnelError,
    ItemAssessment, Verdict,
};
pub use reassess::{PendingItem, QueueState, ReassessmentQueue};
pub use selfmon::{run_selfmon, PipelineHealthReport, SelfMonConfig, SeriesHealth};
pub use source::KpiSource;
pub use stream::{
    StreamAssessment, StreamConfig, StreamDetection, StreamEngine, StreamIngest, StreamStats,
    StreamVerdict, TickReport,
};
pub use supervise::{
    FaultProbe, InjectedFault, NoFaults, Supervised, SupervisorConfig, SupervisorReport,
};
