//! KPI data-quality screening.
//!
//! The paper notes that "there might exist some KPIs of dubious quality"
//! and that FUNNEL deliberately "detects all KPI changes in the impact set
//! regardless of the quality of the KPI, and delivers the results to the
//! operations team" (§2.2). This module implements the screening step the
//! paper leaves to the operators: it never suppresses a verdict, it only
//! *annotates* KPIs whose data looks untrustworthy, so the operations team
//! can triage deliveries faster.

use funnel_timeseries::series::TimeSeries;
use funnel_timeseries::stats::{mad, median};

/// Reasons a KPI's data may be untrustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualityIssue {
    /// The series is (nearly) constant — a stuck collector or an unused
    /// counter; change detection on it is vacuous.
    Constant,
    /// A large fraction of bins is exactly zero — usually gaps filled by
    /// the collection substrate rather than real measurements.
    MostlyZero,
    /// The series takes very few distinct values — heavy quantization
    /// (e.g. a gauge rounded to integers spanning three values) breaks the
    /// SST's subspace geometry.
    Quantized,
    /// Extreme outliers dominate the series (max deviation over 50 robust
    /// sigmas) — telemetry glitches that will dominate any matrix method.
    GlitchOutliers,
    /// The supervised assessment engine exhausted its retry budget on this
    /// work unit (repeated crashes, stalls, or a poisoned input) and
    /// refused to guess: the data was never fully assessed. Set by
    /// [`crate::supervise`], not by screening.
    SupervisorQuarantined,
    /// The streaming engine's load-shedding policy dropped this work unit's
    /// re-scores while it was under assessment (tick budget exhausted, or
    /// its window went stale past the watermark), so no trustworthy verdict
    /// exists: the engine degrades to `Inconclusive` rather than stalling
    /// ingest or guessing from stale data. Set by [`crate::stream`], not by
    /// screening.
    LoadShed,
}

/// The screening verdict for one KPI series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityReport {
    /// Issues found, in detection order; empty means the data looks sound.
    pub issues: Vec<QualityIssue>,
}

impl QualityReport {
    /// Whether the KPI passed every check.
    pub fn is_good(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Screening thresholds (tuned loose — the goal is annotating clearly bad
/// data, not judging marginal data).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityConfig {
    /// Flag when the robust coefficient of variation (MAD / |median|) is
    /// below this and the absolute MAD is negligible.
    pub constant_rel_mad: f64,
    /// Flag when more than this fraction of bins is exactly zero.
    pub zero_fraction: f64,
    /// Flag when fewer than this many distinct values occur (and the series
    /// is long enough for that to be suspicious).
    pub min_distinct: usize,
    /// Flag when any point deviates more than this many robust sigmas.
    pub glitch_sigmas: f64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        Self {
            constant_rel_mad: 1e-6,
            zero_fraction: 0.5,
            min_distinct: 4,
            glitch_sigmas: 50.0,
        }
    }
}

/// Screens one KPI series.
pub fn assess_quality(series: &TimeSeries, config: &QualityConfig) -> QualityReport {
    let xs = series.values();
    let mut issues = Vec::new();
    if xs.is_empty() {
        return QualityReport {
            issues: vec![QualityIssue::Constant],
        };
    }

    let med = median(xs);
    let m = mad(xs);

    if m <= config.constant_rel_mad * med.abs().max(1.0) {
        issues.push(QualityIssue::Constant);
    }

    let zeros = xs.iter().filter(|&&x| x == 0.0).count();
    if zeros as f64 > config.zero_fraction * xs.len() as f64 {
        issues.push(QualityIssue::MostlyZero);
    }

    if xs.len() >= 4 * config.min_distinct {
        let mut distinct: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() < config.min_distinct && !issues.contains(&QualityIssue::Constant) {
            issues.push(QualityIssue::Quantized);
        }
    }

    if m > 0.0 {
        let worst = xs.iter().map(|x| (x - med).abs()).fold(0.0, f64::max);
        if worst > config.glitch_sigmas * m {
            issues.push(QualityIssue::GlitchOutliers);
        }
    }

    QualityReport { issues }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(0, values)
    }

    fn check(values: Vec<f64>) -> QualityReport {
        assess_quality(&series(values), &QualityConfig::default())
    }

    #[test]
    fn healthy_series_is_good() {
        let vals: Vec<f64> = (0..100)
            .map(|i| 50.0 + ((i * 37) % 17) as f64 * 0.5)
            .collect();
        assert!(check(vals).is_good());
    }

    #[test]
    fn constant_flagged() {
        let r = check(vec![7.0; 60]);
        assert!(r.issues.contains(&QualityIssue::Constant));
    }

    #[test]
    fn mostly_zero_flagged() {
        let mut vals = vec![0.0; 80];
        for i in (0..80).step_by(5) {
            vals[i] = 10.0 + i as f64;
        }
        let r = check(vals);
        assert!(r.issues.contains(&QualityIssue::MostlyZero));
    }

    #[test]
    fn quantized_flagged() {
        let vals: Vec<f64> = (0..100).map(|i| (i % 3) as f64).collect();
        let r = check(vals);
        assert!(r.issues.contains(&QualityIssue::Quantized), "{r:?}");
    }

    #[test]
    fn glitch_flagged() {
        let mut vals: Vec<f64> = (0..100).map(|i| 50.0 + ((i * 13) % 7) as f64).collect();
        vals[40] = 1e7;
        let r = check(vals);
        assert!(r.issues.contains(&QualityIssue::GlitchOutliers));
    }

    #[test]
    fn empty_series_is_constant() {
        let r = check(vec![]);
        assert_eq!(r.issues, vec![QualityIssue::Constant]);
    }
}
