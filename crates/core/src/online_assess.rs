//! Live assessment: online detection *plus* causality, per change.
//!
//! [`crate::online::OnlinePipeline`] is the raw streaming detector. This
//! module adds the rest of Fig. 3 for the deployment mode of §5: when a
//! software change is announced, an [`OnlineAssessor`] watches exactly the
//! change's impact-set KPIs on the live store; each streaming declaration
//! inside the assessment window is immediately DiD-tested against the
//! change's control group (dark-launch peers, or the store's own history in
//! the seasonal mode), and the attributed verdicts are pushed to the
//! operations team's channel while the roll-out is still in progress.

use crate::config::FunnelConfig;
use crate::online::{OnlineDetection, OnlinePipeline};
use crate::pipeline::AssessmentMode;
use crate::source::KpiSource;
use funnel_did::groups::{DidAssessor, DidVerdict};
use funnel_did::seasonal::SeasonalControl;
use funnel_did::DidEstimate;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::store::MetricStore;
use funnel_timeseries::series::TimeSeries;
use funnel_topology::change::{LaunchMode, SoftwareChange};
use funnel_topology::impact::{identify_impact_set, Entity, ImpactSet};
use funnel_topology::model::{ServiceId, Topology, TopologyError};
use std::sync::Arc;

/// A live, attributed KPI-change verdict.
#[derive(Debug, Clone)]
pub struct LiveVerdict {
    /// The KPI that changed.
    pub key: KpiKey,
    /// The streaming detection that triggered the causality test.
    pub detection: OnlineDetection,
    /// The DiD outcome (None when no usable control data existed — the
    /// detection is delivered raw, as the paper's tool does).
    pub did: Option<(DidVerdict, DidEstimate)>,
    /// Whether the change is attributed to the software change.
    pub caused: bool,
    /// Which control group was used.
    pub mode: AssessmentMode,
}

/// Watches one software change live on a store.
pub struct OnlineAssessor {
    store: Arc<MetricStore>,
    config: FunnelConfig,
    change: SoftwareChange,
    impact_set: ImpactSet,
    pipeline: OnlinePipeline,
    assessor: DidAssessor,
}

impl OnlineAssessor {
    /// Starts watching `change`'s impact set on `store`. `service_kinds`
    /// supplies the instance KPI kinds per service (as in the batch
    /// pipeline).
    ///
    /// # Errors
    ///
    /// Propagates impact-set identification failures.
    pub fn start(
        store: &Arc<MetricStore>,
        topology: &Topology,
        change: SoftwareChange,
        config: FunnelConfig,
        service_kinds: &dyn Fn(ServiceId) -> Vec<KpiKind>,
    ) -> Result<Self, TopologyError> {
        let impact_set = identify_impact_set(topology, &change)?;
        let mut keys = Vec::new();
        for &srv in &impact_set.tservers {
            for kind in KpiKind::SERVER_KINDS {
                keys.push(KpiKey::new(Entity::Server(srv), kind));
            }
        }
        let changed_kinds = service_kinds(change.service);
        for &inst in &impact_set.tinstances {
            for &kind in &changed_kinds {
                keys.push(KpiKey::new(Entity::Instance(inst), kind));
            }
        }
        for &kind in &changed_kinds {
            keys.push(KpiKey::new(Entity::Service(change.service), kind));
        }
        for &svc in &impact_set.affected_services {
            for kind in service_kinds(svc) {
                keys.push(KpiKey::new(Entity::Service(svc), kind));
            }
        }

        let pipeline = OnlinePipeline::start(store, Some(keys), config.clone());
        let assessor = DidAssessor::new(config.did.clone());
        Ok(Self {
            store: Arc::clone(store),
            config,
            change,
            impact_set,
            pipeline,
            assessor,
        })
    }

    /// The impact set being watched.
    pub fn impact_set(&self) -> &ImpactSet {
        &self.impact_set
    }

    /// Drains all streaming detections currently available and runs the
    /// causality step on those declared within the assessment window
    /// (`[change, change + assessment_minutes]`). Detections outside the
    /// window are dropped (they belong to other causes).
    pub fn drain_verdicts(&self) -> Vec<LiveVerdict> {
        let mut out = Vec::new();
        while let Ok(d) = self.pipeline.detections().try_recv() {
            let window_end = self.change.minute + self.config.assessment_minutes;
            if d.declared_at < self.change.minute || d.declared_at > window_end {
                continue;
            }
            out.push(self.judge(d));
        }
        out
    }

    /// Runs DiD for one streaming detection against the store's current
    /// contents.
    fn judge(&self, detection: OnlineDetection) -> LiveVerdict {
        JudgeView {
            store: &self.store,
            config: &self.config,
            change: &self.change,
            impact_set: &self.impact_set,
            assessor: &self.assessor,
        }
        .judge(detection)
    }

    /// Stops watching (waits for the stream to close), judges every
    /// remaining in-window detection, and returns the verdicts plus the
    /// pipeline statistics.
    pub fn finish(self) -> (Vec<LiveVerdict>, crate::online::OnlineStats) {
        let mut verdicts = self.drain_verdicts();
        let Self {
            store,
            config,
            change,
            impact_set,
            pipeline,
            assessor,
        } = self;
        let (rest, stats) = pipeline.finish();
        // Re-assemble a borrow-only view to judge the stragglers.
        let view = JudgeView {
            store: &store,
            config: &config,
            change: &change,
            impact_set: &impact_set,
            assessor: &assessor,
        };
        for d in rest {
            let window_end = change.minute + config.assessment_minutes;
            if d.declared_at < change.minute || d.declared_at > window_end {
                continue;
            }
            verdicts.push(view.judge(d));
        }
        (verdicts, stats)
    }
}

/// Borrow-only view of the assessor's causality machinery, usable both
/// while the pipeline runs and after it has been consumed by `finish`.
struct JudgeView<'a> {
    store: &'a MetricStore,
    config: &'a FunnelConfig,
    change: &'a SoftwareChange,
    impact_set: &'a ImpactSet,
    assessor: &'a DidAssessor,
}

impl JudgeView<'_> {
    fn judge(&self, detection: OnlineDetection) -> LiveVerdict {
        let key = detection.key;
        let is_affected_service = matches!(key.entity, Entity::Service(s)
            if s != self.change.service && self.impact_set.affected_services.contains(&s));
        let seasonal = is_affected_service
            || self.change.launch == LaunchMode::Full
            || !self.impact_set.has_control_group();
        let mode = if seasonal {
            AssessmentMode::SeasonalHistory
        } else {
            AssessmentMode::DarkLaunchControl
        };

        let did = if seasonal {
            self.store.series(&key).and_then(|series| {
                SeasonalControl::new(self.config.history_days)
                    .assess(self.assessor, &series, self.change.minute)
                    .ok()
            })
        } else {
            let control_keys: Vec<KpiKey> = match key.entity {
                Entity::Server(_) => self
                    .impact_set
                    .cservers
                    .iter()
                    .map(|&s| KpiKey::new(Entity::Server(s), key.kind))
                    .collect(),
                Entity::Instance(_) | Entity::Service(_) => self
                    .impact_set
                    .cinstances
                    .iter()
                    .map(|&i| KpiKey::new(Entity::Instance(i), key.kind))
                    .collect(),
            };
            let treated_keys: Vec<KpiKey> = match key.entity {
                Entity::Service(_) => self
                    .impact_set
                    .tinstances
                    .iter()
                    .map(|&i| KpiKey::new(Entity::Instance(i), key.kind))
                    .collect(),
                _ => vec![key],
            };
            let fetch = |keys: &[KpiKey]| -> Vec<TimeSeries> {
                keys.iter().filter_map(|k| self.store.series(k)).collect()
            };
            let treated = fetch(&treated_keys);
            let control = fetch(&control_keys);
            let tr: Vec<&TimeSeries> = treated.iter().collect();
            let cr: Vec<&TimeSeries> = control.iter().collect();
            self.assessor.assess(&tr, &cr, self.change.minute).ok()
        };

        let caused = did.as_ref().is_none_or(|(v, _)| v.is_caused());
        LiveVerdict {
            key,
            detection,
            did,
            caused,
            mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_sim::agent::replay;
    use funnel_sim::effect::{ChangeEffect, EffectScope};
    use funnel_sim::world::{SimConfig, WorldBuilder};
    use funnel_topology::change::ChangeKind;

    #[test]
    fn live_detection_and_attribution() {
        // Dark launch with a real latency regression, replayed live.
        let mut b = WorldBuilder::new(SimConfig {
            seed: 5,
            start: 0,
            duration: 400,
        });
        let svc = b.add_service("live.assess", 6).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            KpiKind::PageViewResponseDelay,
            EffectScope::TreatedInstances,
            90.0,
        );
        let id = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, 200, effect, "live bug")
            .unwrap();
        let world = b.build();
        let record = world.change_log().get(id).unwrap().clone();

        let store = MetricStore::shared();
        let mut config = FunnelConfig::paper_default();
        config.assessment_minutes = 120;
        let assessor = OnlineAssessor::start(&store, world.topology(), record, config, &|s| {
            world.kinds_of_service(s).to_vec()
        })
        .unwrap();
        assert_eq!(assessor.impact_set().tinstances.len(), 2);

        replay(&world, &store, 2).unwrap();
        store.close_subscriptions();
        let (verdicts, stats) = assessor.finish();
        assert!(stats.measurements > 0);

        let attributed: Vec<_> = verdicts
            .iter()
            .filter(|v| v.caused && v.key.kind == KpiKind::PageViewResponseDelay)
            .collect();
        assert!(
            !attributed.is_empty(),
            "latency regression not attributed live: {verdicts:?}"
        );
        for v in &attributed {
            assert_eq!(v.mode, AssessmentMode::DarkLaunchControl);
            assert!(v.detection.declared_at >= 200);
        }
    }

    #[test]
    fn clean_change_yields_no_attributed_verdicts() {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 6,
            start: 0,
            duration: 400,
        });
        let svc = b.add_service("live.clean", 6).unwrap();
        let id = b
            .deploy_change(
                ChangeKind::ConfigChange,
                svc,
                2,
                200,
                ChangeEffect::none(),
                "noop",
            )
            .unwrap();
        let world = b.build();
        let record = world.change_log().get(id).unwrap().clone();

        let store = MetricStore::shared();
        let assessor = OnlineAssessor::start(
            &store,
            world.topology(),
            record,
            FunnelConfig::paper_default(),
            &|s| world.kinds_of_service(s).to_vec(),
        )
        .unwrap();
        replay(&world, &store, 2).unwrap();
        store.close_subscriptions();
        let (verdicts, _) = assessor.finish();
        let attributed = verdicts.iter().filter(|v| v.caused).count();
        assert_eq!(
            attributed, 0,
            "clean change wrongly attributed: {verdicts:?}"
        );
    }
}
