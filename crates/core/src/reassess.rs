//! Healed-span re-assessment.
//!
//! A network partition leaves assessment windows with one long coverage gap;
//! the pipeline reports those items `Inconclusive { awaiting_backfill: true }`
//! rather than attributing (or clearing) a change on forward-filled data.
//! When the partition heals, the collector backfills the dark span into the
//! metric store — at which point those interim verdicts *can* be firmed up,
//! but only by re-running the assessment over the now-real data.
//!
//! [`ReassessmentQueue`] is that loop: [`absorb`](ReassessmentQueue::absorb)
//! the repairable items of an interim assessment, poll
//! [`ready`](ReassessmentQueue::ready) as backfill lands, and
//! [`reassess`](ReassessmentQueue::reassess) once a window's healed coverage
//! crosses [`FunnelConfig::reassess_coverage`] — feeding the firm verdicts
//! back into the delivered report via
//! [`ChangeAssessment::apply_upgrades`](crate::pipeline::ChangeAssessment::apply_upgrades).
//!
//! An item whose re-run still comes back `awaiting_backfill` (the heal was
//! partial) stays queued; anything else — firm verdict, or inconclusive for
//! a reason backfill cannot repair — leaves the queue, so the loop always
//! terminates.

use crate::config::FunnelConfig;
use crate::pipeline::{ChangeAssessment, Funnel, FunnelError, ItemAssessment};
use crate::source::KpiSource;
use funnel_sim::kpi::KpiKey;
use funnel_timeseries::series::MinuteBin;
use funnel_topology::change::{ChangeId, SoftwareChange};
use funnel_topology::model::Topology;
use std::collections::BTreeSet;

/// One queued item: a KPI whose interim verdict a healed partition span
/// could upgrade.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingItem {
    /// The software change the item belongs to.
    pub change: ChangeId,
    /// The assessed KPI.
    pub key: KpiKey,
    /// The `[from, to)` assessment window that must heal.
    pub window: (MinuteBin, MinuteBin),
    /// Coverage the window must reach before the re-run fires
    /// ([`FunnelConfig::reassess_coverage`] at absorb time).
    pub required_coverage: f64,
}

/// A queue of partition-blocked verdicts awaiting collector backfill.
#[derive(Debug, Clone, Default)]
pub struct ReassessmentQueue {
    pending: Vec<PendingItem>,
    /// (change, KPI) pairs whose re-run already produced a firm verdict.
    /// Recovery re-derives interim assessments and absorbs them again; this
    /// memory keeps an already-upgraded item from re-entering the queue and
    /// being upgraded twice (which would double-count obs counters and let
    /// a later re-run silently overwrite a delivered verdict).
    applied: BTreeSet<(ChangeId, KpiKey)>,
}

/// The queue's complete durable state — what a recovery checkpoint
/// serializes. Plain data, order preserved, no behaviour.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueueState {
    /// Absorbed-but-not-yet-firm items, in absorb order.
    pub pending: Vec<PendingItem>,
    /// (change, KPI) pairs already upgraded to a firm verdict, sorted.
    pub applied: Vec<(ChangeId, KpiKey)>,
}

impl ReassessmentQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// The queue's durable state, for checkpointing. Deterministic:
    /// `pending` keeps absorb order, `applied` is sorted.
    pub fn export_state(&self) -> QueueState {
        QueueState {
            pending: self.pending.clone(),
            applied: self.applied.iter().cloned().collect(),
        }
    }

    /// Rebuilds a queue from checkpointed state. Items that were absorbed
    /// but not yet ready resume waiting for their windows to heal; the
    /// applied memory keeps re-absorbed interim assessments from
    /// double-upgrading verdicts that were already firmed before the crash.
    pub fn from_state(state: QueueState) -> Self {
        Self {
            pending: state.pending,
            applied: state.applied.into_iter().collect(),
        }
    }

    /// Number of items still waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The queued items, in absorb order.
    pub fn pending(&self) -> &[PendingItem] {
        &self.pending
    }

    /// Enqueues every `awaiting_backfill` item of an interim assessment,
    /// with the configuration's re-assessment threshold as the trigger.
    /// Items already queued for the same (change, KPI) — or already
    /// upgraded to a firm verdict by an earlier
    /// [`ReassessmentQueue::reassess`] run (possibly before a crash, via
    /// the checkpointed applied memory) — are not (re-)added. Returns how
    /// many items were added.
    pub fn absorb(&mut self, assessment: &ChangeAssessment, config: &FunnelConfig) -> usize {
        let mut added = 0;
        for item in assessment.awaiting_backfill_items() {
            let dup = self
                .pending
                .iter()
                .any(|p| p.change == assessment.change && p.key == item.key)
                || self.applied.contains(&(assessment.change, item.key));
            if dup {
                continue;
            }
            self.pending.push(PendingItem {
                change: assessment.change,
                key: item.key,
                window: item.window,
                required_coverage: config.reassess_coverage,
            });
            added += 1;
        }
        // Attributed to the window cursor: absorb runs right after the
        // assessment that produced these items, so the cursor still holds
        // that change's minute.
        let window = funnel_obs::timeline::current_window();
        funnel_obs::timeline_counter_add(
            funnel_obs::names::REASSESS_ABSORBED,
            window,
            added as u64,
        );
        funnel_obs::timeline_gauge_set(
            funnel_obs::names::REASSESS_QUEUE_DEPTH,
            window,
            self.pending.len() as u64,
        );
        added
    }

    /// Items whose assessment window now meets its required coverage — the
    /// ones [`ReassessmentQueue::reassess`] would re-run against `source`.
    pub fn ready<'a>(&'a self, source: &impl KpiSource) -> Vec<&'a PendingItem> {
        self.pending
            .iter()
            .filter(|p| source.coverage(&p.key, p.window.0, p.window.1) >= p.required_coverage)
            .collect()
    }

    /// Re-runs every queued item of `change` whose window has healed past
    /// its coverage trigger, returning the fresh assessments in key-sorted
    /// order (pass them to [`ChangeAssessment::apply_upgrades`]). The
    /// re-runs go through the same fan-out/merge engine as the batch
    /// pipeline ([`Funnel::assess_keys`]), so a large post-heal backlog
    /// clears at the configured worker count. Items below their trigger are
    /// left queued untouched; a re-run that still reports
    /// `awaiting_backfill` keeps its item queued for the next heal.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures from the re-run; the queue is left
    /// unchanged in that case.
    pub fn reassess(
        &mut self,
        funnel: &Funnel,
        source: &(impl KpiSource + Sync),
        topology: &Topology,
        change: &SoftwareChange,
    ) -> Result<Vec<ItemAssessment>, FunnelError> {
        funnel_obs::timeline::set_window(change.minute);
        let _span = funnel_obs::span!(funnel_obs::names::SPAN_REASSESS);
        let ready_keys: Vec<KpiKey> = self
            .pending
            .iter()
            .filter(|p| {
                p.change == change.id
                    && source.coverage(&p.key, p.window.0, p.window.1) >= p.required_coverage
            })
            .map(|p| p.key)
            .collect();
        if ready_keys.is_empty() {
            return Ok(Vec::new());
        }
        funnel_obs::timeline_counter_add(
            funnel_obs::names::REASSESS_READY,
            change.minute,
            ready_keys.len() as u64,
        );

        // Re-run everything first: an error must not half-drain the queue.
        let upgrades = funnel.assess_keys(source, topology, change, &ready_keys)?;

        let firm: BTreeSet<KpiKey> = upgrades
            .iter()
            .filter(|item| !item.verdict.awaiting_backfill())
            .map(|item| item.key)
            .collect();
        funnel_obs::timeline_counter_add(
            funnel_obs::names::REASSESS_UPGRADED,
            change.minute,
            firm.len() as u64,
        );
        for key in &firm {
            self.applied.insert((change.id, *key));
        }
        self.pending
            .retain(|p| !(p.change == change.id && firm.contains(&p.key)));
        funnel_obs::timeline_gauge_set(
            funnel_obs::names::REASSESS_QUEUE_DEPTH,
            change.minute,
            self.pending.len() as u64,
        );
        Ok(upgrades)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_sim::agent::{replay_prefix, replay_with_faults};
    use funnel_sim::effect::{ChangeEffect, EffectScope};
    use funnel_sim::faults::{FaultPlan, HealMode, PartitionScope, PartitionWindow};
    use funnel_sim::kpi::KpiKind;
    use funnel_sim::store::MetricStore;
    use funnel_sim::world::{SimConfig, World, WorldBuilder};
    use funnel_topology::change::ChangeKind;

    /// A dark-launch world where a partition darkens the treated zone right
    /// across the change minute, healing by staggered catch-up later.
    fn partitioned_world(delta: f64) -> (World, ChangeId, FaultPlan) {
        let mut b = WorldBuilder::new(SimConfig::days(31, 8));
        let svc = b.add_service("prod.part", 6).unwrap();
        let effect = if delta != 0.0 {
            ChangeEffect::none().with_level_shift(
                KpiKind::PageViewResponseDelay,
                EffectScope::TreatedInstances,
                delta,
            )
        } else {
            ChangeEffect::none()
        };
        let minute = 7 * 1440 + 300;
        let id = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, minute, effect, "t")
            .unwrap();
        let world = b.build();
        let plan = FaultPlan::none().with_partition(PartitionWindow {
            scope: PartitionScope::Collector,
            start: minute - 20,
            duration: 45,
            heal: HealMode::StaggeredCatchUp {
                queue: 64,
                per_minute: 1,
            },
        });
        (world, id, plan)
    }

    #[test]
    fn interim_inconclusive_upgrades_after_heal() {
        let (world, change, plan) = partitioned_world(90.0);
        let record = world.change_log().get(change).unwrap().clone();
        let funnel = Funnel::paper_default();
        let kinds = |svc| world.kinds_of_service(svc).to_vec();

        // Phase 1: the partition is still open (replay cut off mid-window):
        // the treated KPIs sit behind a 30+-minute gap, so the interim
        // assessment must refuse a verdict but flag it repairable.
        let interim_store = MetricStore::new();
        replay_prefix(
            &world,
            &interim_store,
            3,
            plan.clone(),
            record.minute as usize + 15,
        )
        .unwrap();
        let mut interim = funnel
            .assess_change_with(&interim_store, world.topology(), &record, &kinds)
            .unwrap();
        let awaiting = interim.awaiting_backfill_items().count();
        assert!(awaiting > 0, "open partition produced no repairable items");

        let mut queue = ReassessmentQueue::new();
        let absorbed = queue.absorb(&interim, funnel.config());
        assert_eq!(absorbed, awaiting);
        // Absorbing twice must not duplicate.
        assert_eq!(queue.absorb(&interim, funnel.config()), 0);

        // Against the still-dark store nothing is ready.
        assert!(queue.ready(&interim_store).is_empty());

        // Phase 2: full replay — the staggered catch-up backfills the dark
        // span, so every queued window heals.
        let healed_store = MetricStore::new();
        replay_with_faults(&world, &healed_store, 3, plan).unwrap();
        assert_eq!(queue.ready(&healed_store).len(), queue.len());

        let upgrades = queue
            .reassess(&funnel, &healed_store, world.topology(), &record)
            .unwrap();
        assert!(!upgrades.is_empty());
        assert!(queue.is_empty(), "healed items must leave the queue");
        for up in &upgrades {
            assert!(
                !up.verdict.awaiting_backfill(),
                "{:?} still awaiting backfill after full heal",
                up.key
            );
        }

        // The upgrades land back in the assessment, and the real impact —
        // invisible during the partition — is now attributed.
        let replaced = interim.apply_upgrades(upgrades);
        assert!(replaced > 0);
        assert_eq!(interim.awaiting_backfill_items().count(), 0);
        let treated_delay_caused = interim.caused_items().any(|i| {
            i.key.kind == KpiKind::PageViewResponseDelay
                && matches!(i.key.entity, funnel_topology::impact::Entity::Instance(_))
        });
        assert!(
            treated_delay_caused,
            "post-heal re-assessment missed the real impact"
        );
    }

    #[test]
    fn restored_queue_survives_without_double_upgrading() {
        let (world, change, plan) = partitioned_world(90.0);
        let record = world.change_log().get(change).unwrap().clone();
        let funnel = Funnel::paper_default();
        let kinds = |svc| world.kinds_of_service(svc).to_vec();

        let interim_store = MetricStore::new();
        replay_prefix(
            &world,
            &interim_store,
            3,
            plan.clone(),
            record.minute as usize + 15,
        )
        .unwrap();
        let interim = funnel
            .assess_change_with(&interim_store, world.topology(), &record, &kinds)
            .unwrap();
        let mut queue = ReassessmentQueue::new();
        let absorbed = queue.absorb(&interim, funnel.config());
        assert!(absorbed > 0);

        // Crash #1: right after absorb, before anything healed. The
        // restored queue must still hold every absorbed-but-not-yet-ready
        // item.
        let mut queue = ReassessmentQueue::from_state(queue.export_state());
        assert_eq!(queue.len(), absorbed);

        let healed_store = MetricStore::new();
        replay_with_faults(&world, &healed_store, 3, plan).unwrap();
        let upgrades = queue
            .reassess(&funnel, &healed_store, world.topology(), &record)
            .unwrap();
        assert_eq!(upgrades.len(), absorbed);
        assert!(queue.is_empty());

        // Crash #2: after the upgrades were applied. Recovery re-derives
        // the same interim assessment and absorbs it again — the restored
        // applied memory must keep the already-firmed items from
        // resurfacing and being upgraded twice.
        let mut queue = ReassessmentQueue::from_state(queue.export_state());
        assert_eq!(queue.absorb(&interim, funnel.config()), 0);
        assert!(queue.is_empty());
        let again = queue
            .reassess(&funnel, &healed_store, world.topology(), &record)
            .unwrap();
        assert!(again.is_empty(), "items were upgraded twice");

        // A state round trip is lossless.
        assert_eq!(queue.export_state(), queue.export_state());
    }

    #[test]
    fn unhealed_items_stay_queued() {
        let (world, change, plan) = partitioned_world(90.0);
        let record = world.change_log().get(change).unwrap().clone();
        let funnel = Funnel::paper_default();
        let kinds = |svc| world.kinds_of_service(svc).to_vec();

        let store = MetricStore::new();
        replay_prefix(&world, &store, 3, plan, record.minute as usize + 15).unwrap();
        let interim = funnel
            .assess_change_with(&store, world.topology(), &record, &kinds)
            .unwrap();
        let mut queue = ReassessmentQueue::new();
        queue.absorb(&interim, funnel.config());
        let before = queue.len();
        assert!(before > 0);

        // Reassessing against the same unhealed store re-runs nothing and
        // drops nothing.
        let upgrades = queue
            .reassess(&funnel, &store, world.topology(), &record)
            .unwrap();
        assert!(upgrades.is_empty());
        assert_eq!(queue.len(), before);
    }

    #[test]
    fn healed_replay_produces_no_queue_entries() {
        let (world, change, plan) = partitioned_world(90.0);
        let record = world.change_log().get(change).unwrap().clone();
        let funnel = Funnel::paper_default();
        let kinds = |svc| world.kinds_of_service(svc).to_vec();

        // Full healed replay straight away: nothing should be queued.
        let store = MetricStore::new();
        replay_with_faults(&world, &store, 3, plan).unwrap();
        let assessment = funnel
            .assess_change_with(&store, world.topology(), &record, &kinds)
            .unwrap();
        let mut queue = ReassessmentQueue::new();
        assert_eq!(queue.absorb(&assessment, funnel.config()), 0);
        assert!(queue.is_empty());
    }
}
