//! Power iteration and deflated subspace iteration.
//!
//! SST needs the dominant eigenvector `β(t)` of the future Gram operator
//! `A(t)A(t)ᵀ` (paper Eq. 4–5), and the robust variant needs the top-η
//! eigenpairs (§3.2.2). For symmetric positive semi-definite operators,
//! deflated power iteration converges quickly and works against the
//! implicit [`crate::hankel::GramOperator`] without materializing anything.

use crate::matrix::{axpy, dot, normalize};
use crate::op::LinearOperator;

/// Iteration budget per eigenpair.
const MAX_ITERS: usize = 500;

/// Finds the dominant eigenpair `(λ₁, v₁)` of a symmetric PSD operator.
///
/// Deterministic: starts from a fixed ramp vector (non-zero in every
/// coordinate, so it cannot be orthogonal to a dominant eigenvector whose
/// support is unknown), iterates `v ← Av / ‖Av‖` until the Rayleigh quotient
/// stabilizes to relative `tol`. Returns `(0, e₁)` for the zero operator.
pub fn dominant_eigenpair(op: &impl LinearOperator, tol: f64) -> (f64, Vec<f64>) {
    top_eigenpairs(op, 1, tol)
        .pop()
        .unwrap_or((0.0, Vec::new()))
}

/// Finds the `m` largest eigenpairs of a symmetric PSD operator by power
/// iteration with deflation; results are ordered by descending eigenvalue.
///
/// `m` is clamped to the operator dimension. Converged eigenvectors are
/// orthonormal to `~tol`; eigenvalues are Rayleigh quotients.
pub fn top_eigenpairs(op: &impl LinearOperator, m: usize, tol: f64) -> Vec<(f64, Vec<f64>)> {
    let n = op.dim();
    let m = m.min(n);
    let mut pairs: Vec<(f64, Vec<f64>)> = Vec::with_capacity(m);
    let mut av = vec![0.0; n];

    for idx in 0..m {
        // Deterministic start: a ramp shifted per eigenpair index so that
        // after deflation the start is never the zero vector.
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                1.0 + (i as f64 + 1.0) / n as f64 + if (i + idx) % 2 == 0 { 0.25 } else { 0.0 }
            })
            .collect();
        deflate(&mut v, &pairs);
        if normalize(&mut v) == 0.0 {
            // Start vector fell entirely inside the found subspace; fall back
            // to basis vectors.
            let mut found = false;
            for b in 0..n {
                let mut cand = vec![0.0; n];
                cand[b] = 1.0;
                deflate(&mut cand, &pairs);
                if normalize(&mut cand) > 1e-8 {
                    v = cand;
                    found = true;
                    break;
                }
            }
            if !found {
                break;
            }
        }

        let mut lambda = 0.0;
        for _ in 0..MAX_ITERS {
            op.apply(&v, &mut av);
            deflate(&mut av, &pairs);
            let norm_av = normalize(&mut av);
            if norm_av == 0.0 {
                // v is in the null space (after deflation): eigenvalue 0.
                lambda = 0.0;
                break;
            }
            v.copy_from_slice(&av);
            op.apply(&v, &mut av);
            let new_lambda = dot(&v, &av);
            let converged = (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1e-300);
            lambda = new_lambda;
            if converged {
                break;
            }
        }
        pairs.push((lambda, v.clone()));
    }
    pairs
}

/// Removes the components of `v` along the eigenvectors already found.
fn deflate(v: &mut [f64], pairs: &[(f64, Vec<f64>)]) {
    for (_, u) in pairs {
        let c = dot(u, v);
        axpy(-c, u, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;
    use crate::op::DenseOperator;

    fn sym_op(entries: Vec<f64>, n: usize) -> DenseOperator {
        DenseOperator::new(Mat::from_rows(n, n, entries))
    }

    #[test]
    fn dominant_of_diagonal() {
        let op = sym_op(vec![2.0, 0.0, 0.0, 0.0, 7.0, 0.0, 0.0, 0.0, 4.0], 3);
        let (l, v) = dominant_eigenpair(&op, 1e-14);
        assert!((l - 7.0).abs() < 1e-9);
        assert!((v[1].abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn top_two_with_deflation() {
        let op = sym_op(vec![5.0, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 1.0], 3);
        let pairs = top_eigenpairs(&op, 2, 1e-14);
        assert_eq!(pairs.len(), 2);
        assert!((pairs[0].0 - 5.0).abs() < 1e-9);
        assert!((pairs[1].0 - 3.0).abs() < 1e-9);
        // Orthogonality of the eigenvectors.
        assert!(dot(&pairs[0].1, &pairs[1].1).abs() < 1e-6);
    }

    #[test]
    fn non_diagonal_symmetric() {
        // [[2,1],[1,2]] → λ = 3 with v ∝ (1,1).
        let op = sym_op(vec![2.0, 1.0, 1.0, 2.0], 2);
        let (l, v) = dominant_eigenpair(&op, 1e-14);
        assert!((l - 3.0).abs() < 1e-9);
        assert!((v[0] - v[1]).abs() < 1e-5);
    }

    #[test]
    fn zero_operator() {
        let op = sym_op(vec![0.0; 9], 3);
        let (l, v) = dominant_eigenpair(&op, 1e-12);
        assert_eq!(l, 0.0);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn m_clamped_to_dimension() {
        let op = sym_op(vec![1.0, 0.0, 0.0, 2.0], 2);
        let pairs = top_eigenpairs(&op, 10, 1e-12);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn agrees_with_jacobi_on_psd_gram() {
        use crate::symeig::sym_eig;
        let b = Mat::from_rows(3, 5, (0..15).map(|i| ((i * 7 % 11) as f64) - 5.0).collect());
        let g = b.gram();
        let exact = sym_eig(&g);
        let op = DenseOperator::new(g.clone());
        let pairs = top_eigenpairs(&op, 3, 1e-14);
        for (p, want) in pairs.iter().zip(exact.values.iter()) {
            assert!(
                (p.0 - want).abs() < 1e-6 * want.max(1.0),
                "{} vs {}",
                p.0,
                want
            );
        }
    }
}
