//! Dense linear algebra for the FUNNEL reproduction — built from scratch.
//!
//! FUNNEL's detection core is the Singular Spectrum Transform, whose exact
//! form needs an SVD of a Hankel trajectory matrix and whose fast form (the
//! Implicit Krylov Approximation of Idé & Tsuda, paper §3.2.3) needs
//! Lanczos tridiagonalization plus a QL eigensolver on the resulting
//! tridiagonal. The MRLS baseline additionally needs repeated SVDs. No
//! mainstream crate exposes Lanczos over an *implicit* operator in the form
//! IKA wants, so this crate implements the whole stack:
//!
//! * [`matrix`] — a small dense row-major matrix plus vector helpers,
//! * [`mod@svd`] — one-sided Jacobi SVD (accurate for the small matrices SST
//!   builds; dimensions are `ω×δ` with `ω ≈ 9..100`),
//! * [`symeig`] — cyclic Jacobi eigendecomposition for dense symmetric
//!   matrices (used by the exact robust-SST path on `A(t)A(t)ᵀ`),
//! * [`tridiag`] — implicit-shift QL eigensolver for symmetric tridiagonal
//!   matrices (the "QL iteration" of paper §3.2.3),
//! * [`op`] — the [`LinearOperator`] abstraction ("implicit inner product
//!   calculation": operators are applied, never materialized),
//! * [`hankel`] — implicit Hankel trajectory-matrix operators and their
//!   Gram operators `BBᵀ` ("matrix compression": `O(ω)` storage for the
//!   `ω×δ` matrix),
//! * [`mod@lanczos`] — Lanczos tridiagonalization with full reorthogonalization,
//! * [`power`] — power/deflated-subspace iteration for a few extreme
//!   eigenpairs.
//!
//! Everything is `f64`, deterministic, and allocation-light; the per-window
//! hot path of the fast SST allocates only a handful of `ω`-length vectors.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod hankel;
pub mod lanczos;
pub mod matrix;
pub mod op;
pub mod power;
pub mod svd;
pub mod symeig;
pub mod tridiag;

pub use hankel::{GramOperator, HankelMatrix};
pub use lanczos::{lanczos, LanczosResult};
pub use matrix::Mat;
pub use op::LinearOperator;
pub use power::{dominant_eigenpair, top_eigenpairs};
pub use svd::{svd, Svd};
pub use symeig::{sym_eig, SymEig};
pub use tridiag::{tridiag_eig, TridiagEig};

/// Convergence tolerance used across iterative routines (relative).
pub const EPS: f64 = 1e-12;
