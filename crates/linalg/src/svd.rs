//! One-sided Jacobi singular value decomposition.
//!
//! Classic SST (paper Eq. 2) needs `B(t) = U S Vᵀ` for the `ω×δ` Hankel
//! trajectory matrix; the MRLS baseline needs SVDs of similarly small
//! matrices, repeatedly. One-sided Jacobi (Hestenes rotations) is simple,
//! unconditionally stable, and the most accurate dense SVD for small
//! matrices — rotations are applied to columns until all pairs are mutually
//! orthogonal, at which point the column norms are the singular values.

use crate::matrix::{dot, norm, Mat};

/// Result of [`svd`]: `a == u * diag(s) * vᵀ` with `u` (m×r), `s` descending,
/// `v` (n×r), where `r = min(m, n)`. Columns of `u` and `v` are orthonormal.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, one column per singular value.
    pub u: Mat,
    /// Singular values, descending, non-negative.
    pub s: Vec<f64>,
    /// Right singular vectors, one column per singular value.
    pub v: Mat,
}

impl Svd {
    /// Reconstructs `u * diag(s) * vᵀ` (testing helper).
    pub fn reconstruct(&self) -> Mat {
        let r = self.s.len();
        let mut us = self.u.clone();
        for j in 0..r {
            for i in 0..us.rows() {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// The first `k` left singular vectors as columns (`k ≤ s.len()`).
    pub fn left_vectors(&self, k: usize) -> Mat {
        assert!(
            k <= self.s.len(),
            "requested more singular vectors than available"
        );
        let mut out = Mat::zeros(self.u.rows(), k);
        for j in 0..k {
            for i in 0..self.u.rows() {
                out[(i, j)] = self.u[(i, j)];
            }
        }
        out
    }
}

const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of `a` by one-sided Jacobi.
///
/// Works on columns; when `a` is wide (`m < n`) the transpose is decomposed
/// and the factors are swapped, so the caller always receives the thin
/// factorization of the original matrix.
pub fn svd(a: &Mat) -> Svd {
    if a.rows() < a.cols() {
        let t = svd(&a.transpose());
        return Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        };
    }

    let m = a.rows();
    let n = a.cols();
    // Work array: columns of `a` that will be rotated into U * diag(s).
    let mut w: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut v = Mat::identity(n);

    let tol = f64::EPSILON * (m as f64).sqrt();
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let alpha = dot(&w[p], &w[p]);
                let beta = dot(&w[q], &w[q]);
                let gamma = dot(&w[p], &w[q]);
                if gamma.abs() <= tol * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                rotated = true;
                // Jacobi rotation that orthogonalizes columns p and q.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let (left, right) = w.split_at_mut(q);
                for (a, b) in left[p].iter_mut().zip(right[0].iter_mut()) {
                    let (wp, wq) = (*a, *b);
                    *a = c * wp - s * wq;
                    *b = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values are the column norms; sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = w.iter().map(|c| norm(c)).collect();
    order.sort_by(|&i, &j| norms[j].total_cmp(&norms[i]));

    let mut u = Mat::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut v_sorted = Mat::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        let nrm = norms[src];
        s.push(nrm);
        if nrm > 0.0 {
            for i in 0..m {
                u[(i, dst)] = w[src][i] / nrm;
            }
        } else {
            // Null singular value: complete U with a deterministic unit
            // vector orthogonal to the previous columns (Gram–Schmidt over
            // the standard basis).
            'basis: for b in 0..m {
                let mut cand = vec![0.0; m];
                cand[b] = 1.0;
                for j in 0..dst {
                    let proj = (0..m).map(|i| u[(i, j)] * cand[i]).sum::<f64>();
                    for (i, ci) in cand.iter_mut().enumerate() {
                        *ci -= proj * u[(i, j)];
                    }
                }
                let nn = norm(&cand);
                if nn > 1e-8 {
                    for i in 0..m {
                        u[(i, dst)] = cand[i] / nn;
                    }
                    break 'basis;
                }
            }
        }
        for i in 0..n {
            v_sorted[(i, dst)] = v[(i, src)];
        }
    }

    Svd { u, s, v: v_sorted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(m: &Mat, tol: f64) {
        for p in 0..m.cols() {
            for q in p..m.cols() {
                let d: f64 = (0..m.rows()).map(|i| m[(i, p)] * m[(i, q)]).sum();
                let want = if p == q { 1.0 } else { 0.0 };
                assert!((d - want).abs() < tol, "col {p}·col {q} = {d}");
            }
        }
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Mat::from_rows(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let f = svd(&a);
        assert!((f.s[0] - 3.0).abs() < 1e-12);
        assert!((f.s[1] - 2.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn reconstruction_tall_matrix() {
        let a = Mat::from_rows(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let f = svd(&a);
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-10);
        assert_orthonormal_cols(&f.u, 1e-10);
        assert_orthonormal_cols(&f.v, 1e-10);
        assert!(f.s[0] >= f.s[1]);
    }

    #[test]
    fn reconstruction_wide_matrix() {
        let a = Mat::from_rows(2, 4, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.5, 2.0]);
        let f = svd(&a);
        assert_eq!(f.u.rows(), 2);
        assert_eq!(f.v.rows(), 4);
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn rank_deficient_matrix_gets_zero_singular_value() {
        // Second column is 2× the first: rank 1.
        let a = Mat::from_rows(3, 2, vec![1.0, 2.0, 2.0, 4.0, 3.0, 6.0]);
        let f = svd(&a);
        assert!(f.s[1].abs() < 1e-10, "s = {:?}", f.s);
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-10);
        assert_orthonormal_cols(&f.u, 1e-8);
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        let a = Mat::from_rows(3, 3, vec![2.0, -1.0, 0.5, 0.0, 1.0, 4.0, -2.0, 3.0, 1.0]);
        let f = svd(&a);
        let g = a.gram();
        // Tr(AAᵀ) = Σ σ².
        let trace: f64 = (0..3).map(|i| g[(i, i)]).sum();
        let sumsq: f64 = f.s.iter().map(|s| s * s).sum();
        assert!((trace - sumsq).abs() < 1e-9);
    }

    #[test]
    fn left_vectors_truncates() {
        let a = Mat::from_rows(3, 3, vec![5.0, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 1.0]);
        let f = svd(&a);
        let u2 = f.left_vectors(2);
        assert_eq!(u2.cols(), 2);
        assert!((u2[(0, 0)].abs() - 1.0).abs() < 1e-12);
        assert!((u2[(1, 1)].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix_svd() {
        let a = Mat::zeros(3, 2);
        let f = svd(&a);
        assert!(f.s.iter().all(|&s| s == 0.0));
        assert_orthonormal_cols(&f.u, 1e-10);
    }
}
