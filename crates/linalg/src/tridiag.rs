//! Implicit-shift QL eigensolver for symmetric tridiagonal matrices.
//!
//! This is the "QL iteration" of paper §3.2.3: after Lanczos compresses the
//! covariance operator to a `k×k` tridiagonal `T_k` (with `k = 5` for
//! `η = 3`), "the eigenvectors of the tridiagonal matrix T_k can be
//! calculated extremely fast" by QL with implicit Wilkinson shifts — the
//! classic `tql2` algorithm.

use crate::matrix::Mat;

/// Result of [`tridiag_eig`]: eigenvalues **descending**, with orthonormal
/// eigenvectors as columns in the same order (expressed in the basis in
/// which the tridiagonal was given, i.e. the Lanczos basis for IKA).
#[derive(Debug, Clone)]
pub struct TridiagEig {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors, one column per eigenvalue.
    pub vectors: Mat,
}

/// Maximum QL iterations per eigenvalue before declaring non-convergence.
const MAX_ITER: usize = 50;

/// Diagonalizes the symmetric tridiagonal matrix with diagonal `diag` and
/// subdiagonal `subdiag` (`subdiag[i]` couples rows `i` and `i+1`).
///
/// Panics if `subdiag.len() + 1 != diag.len()` (except the `n = 0` case).
/// Non-finite input (overflowed covariances from telemetry carrying
/// corrupted magnitudes) and the theoretical non-convergence case degrade
/// gracefully instead of panicking: the current (possibly NaN) diagonal is
/// returned, which downstream scoring treats as "no evidence" because NaN
/// fails every threshold comparison.
pub fn tridiag_eig(diag: &[f64], subdiag: &[f64]) -> TridiagEig {
    let n = diag.len();
    if n == 0 {
        return TridiagEig {
            values: Vec::new(),
            vectors: Mat::zeros(0, 0),
        };
    }
    assert_eq!(subdiag.len() + 1, n, "subdiagonal must have n-1 entries");

    let mut d = diag.to_vec();
    // Working copy of the subdiagonal, padded so e[n-1] exists (always 0).
    let mut e = vec![0.0; n];
    e[..n - 1].copy_from_slice(subdiag);
    let mut z = Mat::identity(n);

    // Garbage in, NaN out — but never a hang or a panic: the QL recurrence
    // cannot converge on non-finite entries, so poison the diagonal up
    // front and skip the iteration entirely.
    if d.iter().chain(e.iter()).any(|x| !x.is_finite()) {
        d.fill(f64::NAN);
        return sorted_eig(&d, &z, n);
    }

    'outer: for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first negligible subdiagonal element at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] has converged.
            }
            iter += 1;
            if iter > MAX_ITER {
                // LAPACK-style iteration cap exceeded (finite input makes
                // this practically unreachable, but rounding pathologies
                // exist): accept the current approximation rather than
                // aborting the caller.
                break 'outer;
            }

            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0_f64, 1.0_f64);
            let mut p = 0.0_f64;

            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Deflate: rescue the eigenvalue and restart this l.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;

                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    sorted_eig(&d, &z, n)
}

/// Sorts eigenvalues descending, carrying eigenvector columns along.
fn sorted_eig(d: &[f64], z: &Mat, n: usize) -> TridiagEig {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].total_cmp(&d[i]));
    let mut values = Vec::with_capacity(n);
    let mut vectors = Mat::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        values.push(d[src]);
        for i in 0..n {
            vectors[(i, dst)] = z[(i, src)];
        }
    }
    TridiagEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symeig::sym_eig;

    fn tridiag_mat(diag: &[f64], sub: &[f64]) -> Mat {
        let n = diag.len();
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = diag[i];
        }
        for i in 0..n - 1 {
            m[(i, i + 1)] = sub[i];
            m[(i + 1, i)] = sub[i];
        }
        m
    }

    #[test]
    fn empty_and_singleton() {
        let e = tridiag_eig(&[], &[]);
        assert!(e.values.is_empty());
        let e = tridiag_eig(&[4.2], &[]);
        assert_eq!(e.values, vec![4.2]);
        assert_eq!(e.vectors[(0, 0)], 1.0);
    }

    #[test]
    fn known_2x2() {
        // [[1,2],[2,1]] → eigenvalues 3, -1.
        let e = tridiag_eig(&[1.0, 1.0], &[2.0]);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_jacobi_on_random_tridiagonal() {
        let diag = [2.0, -1.0, 3.5, 0.7, 1.2, -0.4];
        let sub = [1.1, 0.3, -2.0, 0.9, 1.7];
        let ql = tridiag_eig(&diag, &sub);
        let jac = sym_eig(&tridiag_mat(&diag, &sub));
        for (a, b) in ql.values.iter().zip(jac.values.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let diag = [4.0, 1.0, -2.0, 0.5];
        let sub = [0.8, -1.5, 2.2];
        let m = tridiag_mat(&diag, &sub);
        let e = tridiag_eig(&diag, &sub);
        for j in 0..4 {
            let v = e.vectors.col(j);
            let mv = m.matvec(&v);
            for i in 0..4 {
                assert!(
                    (mv[i] - e.values[j] * v[i]).abs() < 1e-9,
                    "Av != λv at ({i},{j})"
                );
            }
        }
        // Orthonormality.
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.max_abs_diff(&Mat::identity(4)) < 1e-10);
    }

    #[test]
    fn decoupled_blocks_via_zero_subdiagonal() {
        // e[1] = 0 splits into two independent blocks.
        let e = tridiag_eig(&[5.0, 5.0, 1.0], &[0.0, 0.0]);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_input_degrades_to_nan_without_panicking() {
        // Corrupted telemetry bytes can decode to ±huge f64s; squaring them
        // in a covariance overflows to infinity. The solver must not hang
        // or abort — it returns NaNs, which fail every downstream
        // threshold comparison.
        let e = tridiag_eig(&[f64::INFINITY, 1.0, 2.0], &[0.5, f64::NAN]);
        assert_eq!(e.values.len(), 3);
        assert!(e.values.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn extreme_finite_magnitudes_do_not_panic() {
        // Magnitudes near f64::MAX (what a corrupted-but-valid frame can
        // carry) must complete within the iteration cap or bail out
        // gracefully — either way, no panic.
        let diag = [1e300, -1e300, 1e-300, 0.0, 1e308];
        let sub = [1e290, 1e150, 1e-290, 1e300];
        let e = tridiag_eig(&diag, &sub);
        assert_eq!(e.values.len(), 5);
    }

    #[test]
    fn ika_sized_problem_k5() {
        // The k = 2η−1 = 5 case FUNNEL actually solves each window.
        let diag = [3.0, 2.5, 2.0, 1.5, 1.0];
        let sub = [0.5, 0.4, 0.3, 0.2];
        let e = tridiag_eig(&diag, &sub);
        assert_eq!(e.values.len(), 5);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let m = tridiag_mat(&diag, &sub);
        let jac = sym_eig(&m);
        for (a, b) in e.values.iter().zip(jac.values.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
