//! The implicit-operator abstraction.
//!
//! The heart of IKA's "implicit inner product calculation" (paper §3.2.3) is
//! that the covariance `C = B(t)B(t)ᵀ` is never formed: Lanczos and power
//! iteration only ever need `C·v`. [`LinearOperator`] captures exactly that
//! capability, so the same solvers run against dense matrices (tests,
//! baselines) and compressed Hankel operators (the fast path).

use crate::matrix::Mat;

/// A linear map `R^dim → R^dim` applied without materializing the matrix.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `out = A * v`. Implementations must not read `out`'s prior
    /// contents. `v.len() == out.len() == self.dim()` is guaranteed by
    /// callers via [`LinearOperator::apply_vec`].
    fn apply(&self, v: &[f64], out: &mut [f64]);

    /// Convenience allocating wrapper around [`LinearOperator::apply`].
    /// Panics if `v.len() != self.dim()`.
    fn apply_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim(), "operator dimension mismatch");
        let mut out = vec![0.0; self.dim()];
        self.apply(v, &mut out);
        out
    }
}

/// A dense symmetric matrix viewed as an operator (testing / exact paths).
#[derive(Debug, Clone)]
pub struct DenseOperator {
    mat: Mat,
}

impl DenseOperator {
    /// Wraps a square matrix. Panics if `mat` is not square.
    pub fn new(mat: Mat) -> Self {
        assert_eq!(
            mat.rows(),
            mat.cols(),
            "DenseOperator requires a square matrix"
        );
        Self { mat }
    }

    /// The wrapped matrix.
    pub fn mat(&self) -> &Mat {
        &self.mat
    }
}

impl LinearOperator for DenseOperator {
    fn dim(&self) -> usize {
        self.mat.rows()
    }

    fn apply(&self, v: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.mat.matvec(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_operator_applies_matrix() {
        let m = Mat::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let op = DenseOperator::new(m);
        assert_eq!(op.apply_vec(&[1.0, 0.0]), vec![2.0, 1.0]);
        assert_eq!(op.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn dense_operator_rejects_rectangular() {
        let _ = DenseOperator::new(Mat::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn apply_vec_checks_length() {
        let op = DenseOperator::new(Mat::identity(3));
        let _ = op.apply_vec(&[1.0, 2.0]);
    }
}
