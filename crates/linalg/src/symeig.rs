//! Cyclic Jacobi eigendecomposition for dense symmetric matrices.
//!
//! The exact robust-SST path (paper §3.2.2) needs the η extreme eigenpairs
//! of `A(t)A(t)ᵀ`, an `ω×ω` symmetric positive semi-definite matrix with
//! `ω ≈ 9..15`. At that size a full cyclic Jacobi diagonalization is cheap
//! and gives every eigenpair at machine precision, which also makes it the
//! reference oracle that the Lanczos/QL fast path is tested against.

use crate::matrix::Mat;

/// Result of [`sym_eig`]: `a == vectors * diag(values) * vectorsᵀ`, with
/// `values` sorted **descending** and `vectors` column `j` the eigenvector
/// for `values[j]`.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one column per eigenvalue.
    pub vectors: Mat,
}

impl SymEig {
    /// Eigenvalues sorted ascending (convenience for "smallest-η" selection).
    pub fn values_ascending(&self) -> Vec<f64> {
        let mut v = self.values.clone();
        v.reverse();
        v
    }

    /// The eigenvector for the `j`-th **largest** eigenvalue.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }

    /// The eigenvector for the `j`-th **smallest** eigenvalue.
    pub fn vector_from_smallest(&self, j: usize) -> Vec<f64> {
        self.vectors.col(self.values.len() - 1 - j)
    }
}

const MAX_SWEEPS: usize = 64;

/// Diagonalizes a symmetric matrix by cyclic Jacobi rotations.
///
/// Panics if `a` is not square. Symmetry is assumed (only the upper triangle
/// drives the rotations); feed `(A + Aᵀ)/2` if in doubt.
pub fn sym_eig(a: &Mat) -> SymEig {
    assert_eq!(a.rows(), a.cols(), "sym_eig requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Mat::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius norm; converged when negligible relative to
        // the diagonal scale.
        let mut off = 0.0;
        let mut diag_scale: f64 = 1e-300;
        for i in 0..n {
            diag_scale = diag_scale.max(m[(i, i)].abs());
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= f64::EPSILON * diag_scale * n as f64 {
            break;
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq == 0.0 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                if apq.abs() <= f64::EPSILON * (app.abs() + aqq.abs()) {
                    m[(p, q)] = 0.0;
                    m[(q, p)] = 0.0;
                    continue;
                }
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update the matrix: M ← Jᵀ M J for the (p,q) rotation.
                for i in 0..n {
                    let mip = m[(i, p)];
                    let miq = m[(i, q)];
                    m[(i, p)] = c * mip - s * miq;
                    m[(i, q)] = s * mip + c * miq;
                }
                for i in 0..n {
                    let mpi = m[(p, i)];
                    let mqi = m[(q, i)];
                    m[(p, i)] = c * mpi - s * mqi;
                    m[(q, i)] = s * mpi + c * mqi;
                }
                // Accumulate eigenvectors: V ← V J.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = c * vip - s * viq;
                    v[(i, q)] = s * vip + c * viq;
                }
            }
        }
    }

    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].total_cmp(&diag[i]));

    let mut values = Vec::with_capacity(n);
    let mut vectors = Mat::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        values.push(diag[src]);
        for i in 0..n {
            vectors[(i, dst)] = v[(i, src)];
        }
    }
    SymEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEig) -> Mat {
        let n = e.values.len();
        let mut vd = e.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                vd[(i, j)] *= e.values[j];
            }
        }
        vd.matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Mat::from_rows(3, 3, vec![1.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 3.0]);
        let e = sym_eig(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = sym_eig(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        let v0 = e.vector(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_holds() {
        let a = Mat::from_rows(
            4,
            4,
            vec![
                4.0, 1.0, -2.0, 0.5, 1.0, 3.0, 0.0, 1.0, -2.0, 0.0, 2.5, -1.0, 0.5, 1.0, -1.0, 1.5,
            ],
        );
        let e = sym_eig(&a);
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-9);
        // Orthonormality.
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.max_abs_diff(&Mat::identity(4)) < 1e-10);
    }

    #[test]
    fn negative_eigenvalues_sorted_descending() {
        let a = Mat::from_rows(2, 2, vec![0.0, 2.0, 2.0, 0.0]); // eigenvalues ±2
        let e = sym_eig(&a);
        assert!((e.values[0] - 2.0).abs() < 1e-12);
        assert!((e.values[1] + 2.0).abs() < 1e-12);
        assert_eq!(e.values_ascending()[0], e.values[1]);
    }

    #[test]
    fn vector_from_smallest_indexes_backwards() {
        let a = Mat::from_rows(3, 3, vec![1.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 3.0]);
        let e = sym_eig(&a);
        let smallest = e.vector_from_smallest(0);
        // Smallest eigenvalue 1 has eigenvector e1 (up to sign).
        assert!((smallest[0].abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gram_of_hankel_like_matrix_is_psd() {
        let b = Mat::from_rows(
            3,
            4,
            vec![1.0, 2.0, 3.0, 4.0, 2.0, 3.0, 4.0, 5.0, 3.0, 4.0, 5.0, 6.0],
        );
        let e = sym_eig(&b.gram());
        assert!(e.values.iter().all(|&l| l > -1e-9));
    }
}
