//! Lanczos tridiagonalization with full reorthogonalization.
//!
//! IKA (paper §3.2.3) runs `Lanczos(C, β(t), k)` to compress the implicit
//! covariance operator `C = BBᵀ` to a `k×k` symmetric tridiagonal `T_k`
//! whose eigen-structure, expressed in the Krylov basis started at the
//! future-direction vector `β(t)`, approximates the projection SST needs.
//! With `k = 2η−1 = 5`, full reorthogonalization costs almost nothing and
//! removes the classic Lanczos ghost-eigenvalue problem entirely.

use crate::matrix::{axpy, dot, normalize};
use crate::op::LinearOperator;

/// Output of [`lanczos`]: the tridiagonal `T_k` (diagonal `alpha`,
/// subdiagonal `beta`) and the orthonormal Krylov basis `q[0..k]`, where
/// `q[0]` is the normalized start vector.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Diagonal of `T_k` (length = steps actually taken).
    pub alpha: Vec<f64>,
    /// Subdiagonal of `T_k` (length = steps − 1).
    pub beta: Vec<f64>,
    /// Krylov basis vectors, `basis[i] ∈ R^dim`, mutually orthonormal.
    pub basis: Vec<Vec<f64>>,
}

impl LanczosResult {
    /// Number of Lanczos steps actually taken (may be < requested `k` when
    /// the Krylov space is exhausted early).
    pub fn steps(&self) -> usize {
        self.alpha.len()
    }
}

/// Runs `k` Lanczos steps of `op` from `start`.
///
/// Returns fewer than `k` steps when the Krylov subspace closes early (the
/// residual underflows), which is exact convergence, not failure. A zero
/// `start` vector yields an empty result.
pub fn lanczos(op: &impl LinearOperator, start: &[f64], k: usize) -> LanczosResult {
    let n = op.dim();
    assert_eq!(start.len(), n, "start vector dimension mismatch");
    let mut q = start.to_vec();
    if normalize(&mut q) == 0.0 || k == 0 {
        return LanczosResult {
            alpha: Vec::new(),
            beta: Vec::new(),
            basis: Vec::new(),
        };
    }

    let mut alpha = Vec::with_capacity(k);
    let mut beta: Vec<f64> = Vec::with_capacity(k.saturating_sub(1));
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k);
    basis.push(q.clone());

    let mut w = vec![0.0; n];
    for step in 0..k {
        op.apply(&basis[step], &mut w);
        let a = dot(&basis[step], &w);
        alpha.push(a);
        if step + 1 == k {
            break;
        }
        // w ← w − a·q_step − b_{step−1}·q_{step−1}
        axpy(-a, &basis[step], &mut w);
        if step > 0 {
            axpy(-beta[step - 1], &basis[step - 1], &mut w);
        }
        // Full reorthogonalization (twice is enough; k is tiny).
        for _ in 0..2 {
            for qi in &basis {
                let c = dot(qi, &w);
                axpy(-c, qi, &mut w);
            }
        }
        let b = normalize(&mut w);
        // Breakdown = invariant subspace found; T is exact at this size.
        let scale = alpha.iter().fold(1e-300_f64, |m, a| m.max(a.abs()));
        if b <= f64::EPSILON * scale * 16.0 {
            break;
        }
        beta.push(b);
        basis.push(w.clone());
    }

    LanczosResult { alpha, beta, basis }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;
    use crate::op::DenseOperator;
    use crate::tridiag::tridiag_eig;

    fn diag_op(d: &[f64]) -> DenseOperator {
        let n = d.len();
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = d[i];
        }
        DenseOperator::new(m)
    }

    #[test]
    fn basis_is_orthonormal() {
        let m = Mat::from_rows(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, 1.0, 3.0, 1.0, 0.5, 0.5, 1.0, 2.0, 1.0, 0.0, 0.5, 1.0, 1.0,
            ],
        );
        let op = DenseOperator::new(m);
        let r = lanczos(&op, &[1.0, 0.5, -0.5, 0.25], 4);
        assert_eq!(r.steps(), 4);
        for i in 0..r.basis.len() {
            for j in i..r.basis.len() {
                let d = dot(&r.basis[i], &r.basis[j]);
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-10, "q{i}·q{j} = {d}");
            }
        }
    }

    #[test]
    fn full_rank_run_recovers_spectrum() {
        let op = diag_op(&[5.0, 3.0, 2.0, 1.0]);
        // Start with weight in every eigendirection.
        let r = lanczos(&op, &[0.5, 0.5, 0.5, 0.5], 4);
        let e = tridiag_eig(&r.alpha, &r.beta);
        let mut got = e.values.clone();
        got.sort_by(|a, b| b.total_cmp(a));
        for (g, w) in got.iter().zip([5.0, 3.0, 2.0, 1.0]) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn early_breakdown_on_invariant_subspace() {
        // Start vector is an exact eigenvector: Krylov space has dim 1.
        let op = diag_op(&[5.0, 3.0, 2.0]);
        let r = lanczos(&op, &[1.0, 0.0, 0.0], 3);
        assert_eq!(r.steps(), 1);
        assert!((r.alpha[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_start_vector_yields_empty() {
        let op = diag_op(&[1.0, 2.0]);
        let r = lanczos(&op, &[0.0, 0.0], 2);
        assert_eq!(r.steps(), 0);
    }

    #[test]
    fn tridiagonal_reproduces_operator_in_krylov_basis() {
        // Qᵀ A Q should equal T.
        let m = Mat::from_rows(3, 3, vec![2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0]);
        let op = DenseOperator::new(m.clone());
        let r = lanczos(&op, &[1.0, 1.0, 0.0], 3);
        let k = r.steps();
        for i in 0..k {
            let aqi = op.apply_vec(&r.basis[i]);
            for j in 0..k {
                let tij = dot(&r.basis[j], &aqi);
                let want = if i == j {
                    r.alpha[i]
                } else if j + 1 == i || i + 1 == j {
                    r.beta[i.min(j)]
                } else {
                    0.0
                };
                assert!(
                    (tij - want).abs() < 1e-10,
                    "T[{j},{i}] = {tij}, want {want}"
                );
            }
        }
    }
}
