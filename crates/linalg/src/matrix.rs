//! Dense row-major matrices and vector helpers.
//!
//! SST's matrices are tiny (`ω×δ` with `ω ≈ 9..100`), so a simple contiguous
//! row-major layout with bounds-checked accessors is both fast enough and
//! easy to audit. The free functions at the bottom are the vector kernel the
//! iterative solvers are built from.

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row-major data. Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix whose columns are the given equal-length vectors.
    /// Panics when columns disagree on length or none are given.
    pub fn from_cols(cols: &[Vec<f64>]) -> Self {
        let n = cols.len();
        assert!(n > 0, "from_cols needs at least one column");
        let m = cols[0].len();
        let mut out = Self::zeros(m, n);
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(col.len(), m, "column length mismatch");
            for (i, &v) in col.iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `i`-th row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies the `j`-th column into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`. Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`. Panics on dimension mismatch.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Transposed matrix–vector product `selfᵀ * v`.
    pub fn matvec_t(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "matvec_t dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += a * vi;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Gram matrix `self * selfᵀ` (symmetric, `rows × rows`).
    pub fn gram(&self) -> Mat {
        let mut g = Mat::zeros(self.rows, self.rows);
        for i in 0..self.rows {
            for j in i..self.rows {
                let v = dot(self.row(i), self.row(j));
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        g
    }

    /// Maximum absolute entry difference against `other`; `∞` when shapes
    /// differ. Intended for tests and convergence checks.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        if self.rows != other.rows || self.cols != other.cols {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product. Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// `y += alpha * x`. Panics on length mismatch.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `v` in place by `alpha`.
pub fn scale(v: &mut [f64], alpha: f64) {
    for x in v.iter_mut() {
        *x *= alpha;
    }
}

/// Normalizes `v` in place; returns the original norm. A zero vector is left
/// untouched and `0.0` is returned.
pub fn normalize(v: &mut [f64]) -> f64 {
    let n = norm(v);
    if n > 0.0 {
        scale(v, 1.0 / n);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Mat::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(2, 2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn matvec_and_matvec_t_agree_with_transpose() {
        let a = Mat::from_rows(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let v = vec![2.0, 1.0, 0.0];
        assert_eq!(a.matvec(&v), vec![2.0, 1.0]);
        let w = vec![1.0, -1.0];
        assert_eq!(a.matvec_t(&w), a.transpose().matvec(&w));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Mat::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gram();
        let explicit = a.matmul(&a.transpose());
        assert!(g.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn from_cols_lays_out_columns() {
        let m = Mat::from_cols(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m.col(1), vec![3.0, 4.0]);
    }

    #[test]
    fn vector_kernels() {
        let mut v = vec![3.0, 4.0];
        assert_eq!(norm(&v), 5.0);
        assert_eq!(normalize(&mut v), 5.0);
        assert!((norm(&v) - 1.0).abs() < 1e-15);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Mat::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
