//! Implicit Hankel trajectory matrices — IKA's "matrix compression".
//!
//! SST builds the `ω×δ` trajectory matrix `B(t) = [q(t−δ), …, q(t−1)]` with
//! `q(τ) = [x(τ−ω+1), …, x(τ)]ᵀ` (paper Eq. 1). Because consecutive columns
//! overlap, the whole matrix is determined by the `ω+δ−1` samples it covers:
//! entry `(i, j)` is `signal[i + j]`. [`HankelMatrix`] stores only that
//! signal slice and applies `B·v` / `Bᵀ·u` directly — `O(ωδ)` work and
//! `O(ω+δ)` memory, never materializing the matrix. [`GramOperator`] exposes
//! `C = BBᵀ` the same way, which is what Lanczos and the power iteration
//! consume ("implicit inner product calculation", §3.2.3).

use crate::matrix::Mat;
use crate::op::LinearOperator;

/// An `ω×δ` Hankel matrix stored as its generating signal.
#[derive(Debug, Clone)]
pub struct HankelMatrix {
    signal: Vec<f64>,
    omega: usize,
    delta: usize,
}

impl HankelMatrix {
    /// Builds the trajectory matrix with window length `omega` and `delta`
    /// lagged columns over `signal`, which must hold exactly
    /// `omega + delta − 1` samples: column `j` is
    /// `signal[j .. j+omega]`, oldest samples first.
    ///
    /// # Panics
    ///
    /// Panics when the signal length does not match or either dimension is
    /// zero.
    pub fn new(signal: &[f64], omega: usize, delta: usize) -> Self {
        assert!(omega > 0 && delta > 0, "Hankel dimensions must be positive");
        assert_eq!(
            signal.len(),
            omega + delta - 1,
            "signal length must be omega + delta - 1"
        );
        Self {
            signal: signal.to_vec(),
            omega,
            delta,
        }
    }

    /// Row count `ω`.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// Column count `δ`.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Entry `(i, j) = signal[i + j]`.
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.omega && j < self.delta,
            "Hankel index out of bounds"
        );
        self.signal[i + j]
    }

    /// `B · v` for `v ∈ R^δ`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.delta, "Hankel matvec dimension mismatch");
        (0..self.omega)
            .map(|i| {
                v.iter()
                    .enumerate()
                    .map(|(j, &vj)| self.signal[i + j] * vj)
                    .sum()
            })
            .collect()
    }

    /// `Bᵀ · u` for `u ∈ R^ω`.
    pub fn matvec_t(&self, u: &[f64]) -> Vec<f64> {
        assert_eq!(u.len(), self.omega, "Hankel matvec_t dimension mismatch");
        (0..self.delta)
            .map(|j| {
                u.iter()
                    .enumerate()
                    .map(|(i, &ui)| self.signal[i + j] * ui)
                    .sum()
            })
            .collect()
    }

    /// Materializes the dense matrix (tests and the exact SVD path).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.omega, self.delta);
        for i in 0..self.omega {
            for j in 0..self.delta {
                m[(i, j)] = self.signal[i + j];
            }
        }
        m
    }

    /// The Gram operator `C = BBᵀ` over this matrix (borrows `self`).
    pub fn gram_operator(&self) -> GramOperator<'_> {
        GramOperator { hankel: self }
    }
}

/// `C = BBᵀ ∈ R^{ω×ω}` applied implicitly: `C·v = B(Bᵀv)` in `O(ωδ)`.
#[derive(Debug, Clone, Copy)]
pub struct GramOperator<'a> {
    hankel: &'a HankelMatrix,
}

impl LinearOperator for GramOperator<'_> {
    fn dim(&self) -> usize {
        self.hankel.omega
    }

    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let bt_v = self.hankel.matvec_t(v);
        let b_btv = self.hankel.matvec(&bt_v);
        out.copy_from_slice(&b_btv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::LinearOperator;

    #[test]
    fn entries_follow_hankel_structure() {
        let h = HankelMatrix::new(&[1.0, 2.0, 3.0, 4.0, 5.0], 3, 3);
        assert_eq!(h.entry(0, 0), 1.0);
        assert_eq!(h.entry(2, 0), 3.0);
        assert_eq!(h.entry(0, 2), 3.0);
        assert_eq!(h.entry(2, 2), 5.0);
        // Anti-diagonals are constant.
        assert_eq!(h.entry(1, 1), h.entry(0, 2));
        assert_eq!(h.entry(1, 1), h.entry(2, 0));
    }

    #[test]
    fn implicit_matvec_matches_dense() {
        let sig: Vec<f64> = (0..10).map(|i| (i as f64).sin() + 0.1 * i as f64).collect();
        let h = HankelMatrix::new(&sig, 4, 7);
        let dense = h.to_dense();
        let v: Vec<f64> = (0..7).map(|i| 0.5 - 0.1 * i as f64).collect();
        let u: Vec<f64> = (0..4).map(|i| 1.0 + i as f64).collect();
        let hv = h.matvec(&v);
        let dv = dense.matvec(&v);
        for (a, b) in hv.iter().zip(dv.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        let htu = h.matvec_t(&u);
        let dtu = dense.matvec_t(&u);
        for (a, b) in htu.iter().zip(dtu.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_operator_matches_dense_gram() {
        let sig: Vec<f64> = (0..12).map(|i| (0.7 * i as f64).cos()).collect();
        let h = HankelMatrix::new(&sig, 5, 8);
        let c = h.gram_operator();
        let dense_gram = h.to_dense().gram();
        let v: Vec<f64> = (0..5).map(|i| (i as f64) - 2.0).collect();
        let cv = c.apply_vec(&v);
        let dv = dense_gram.matvec(&v);
        for (a, b) in cv.iter().zip(dv.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
        assert_eq!(c.dim(), 5);
    }

    #[test]
    #[should_panic(expected = "signal length")]
    fn wrong_signal_length_panics() {
        let _ = HankelMatrix::new(&[1.0, 2.0, 3.0], 3, 3);
    }

    #[test]
    fn column_matches_paper_definition() {
        // Column j is q(t-δ+j): ω consecutive samples starting at offset j.
        let sig = [10.0, 20.0, 30.0, 40.0];
        let h = HankelMatrix::new(&sig, 2, 3);
        let dense = h.to_dense();
        assert_eq!(dense.col(0), vec![10.0, 20.0]);
        assert_eq!(dense.col(1), vec![20.0, 30.0]);
        assert_eq!(dense.col(2), vec![30.0, 40.0]);
    }
}
