//! Property-based tests for the linear-algebra substrate.
//!
//! These check the algebraic contracts the SST implementations rely on:
//! SVD factorizations must reconstruct their input, eigen-solvers must agree
//! with each other, and implicit Hankel operators must match their dense
//! materializations on arbitrary signals.

use funnel_linalg::matrix::{dot, Mat};
use funnel_linalg::op::DenseOperator;
use funnel_linalg::{lanczos, svd, sym_eig, tridiag_eig, HankelMatrix, LinearOperator};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn svd_reconstructs_random_matrices(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in finite_vec(64),
    ) {
        let data: Vec<f64> = seed.iter().take(rows * cols).copied().collect();
        prop_assume!(data.len() == rows * cols);
        let a = Mat::from_rows(rows, cols, data);
        let f = svd(&a);
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(f.reconstruct().max_abs_diff(&a) < 1e-9 * scale);
        // Singular values descending and non-negative.
        for w in f.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(f.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_left_vectors_orthonormal(
        rows in 2usize..8,
        cols in 2usize..8,
        seed in finite_vec(64),
    ) {
        let data: Vec<f64> = seed.iter().take(rows * cols).copied().collect();
        prop_assume!(data.len() == rows * cols);
        let f = svd(&Mat::from_rows(rows, cols, data));
        let r = f.s.len();
        for p in 0..r {
            for q in p..r {
                let d: f64 = (0..f.u.rows()).map(|i| f.u[(i, p)] * f.u[(i, q)]).sum();
                let want = if p == q { 1.0 } else { 0.0 };
                prop_assert!((d - want).abs() < 1e-8, "u{p}·u{q} = {d}");
            }
        }
    }

    #[test]
    fn symeig_matches_svd_singular_values_on_gram(
        n in 2usize..6,
        seed in finite_vec(36),
    ) {
        let data: Vec<f64> = seed.iter().take(n * n).copied().collect();
        prop_assume!(data.len() == n * n);
        let a = Mat::from_rows(n, n, data);
        // Eigenvalues of AAᵀ are squared singular values of A.
        let e = sym_eig(&a.gram());
        let f = svd(&a);
        let scale = a.frobenius_norm().powi(2).max(1.0);
        for (l, s) in e.values.iter().zip(f.s.iter()) {
            prop_assert!((l - s * s).abs() < 1e-8 * scale, "{l} vs {}", s * s);
        }
    }

    #[test]
    fn tridiag_eig_matches_jacobi(
        n in 2usize..8,
        dseed in finite_vec(8),
        eseed in finite_vec(7),
    ) {
        let diag: Vec<f64> = dseed.iter().take(n).copied().collect();
        let sub: Vec<f64> = eseed.iter().take(n - 1).copied().collect();
        prop_assume!(diag.len() == n && sub.len() == n - 1);
        let mut dense = Mat::zeros(n, n);
        for i in 0..n {
            dense[(i, i)] = diag[i];
        }
        for i in 0..n - 1 {
            dense[(i, i + 1)] = sub[i];
            dense[(i + 1, i)] = sub[i];
        }
        let ql = tridiag_eig(&diag, &sub);
        let jac = sym_eig(&dense);
        let scale = dense.frobenius_norm().max(1.0);
        for (a, b) in ql.values.iter().zip(jac.values.iter()) {
            prop_assert!((a - b).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn hankel_implicit_matches_dense(
        omega in 2usize..8,
        delta in 2usize..8,
        seed in finite_vec(20),
        vseed in finite_vec(8),
    ) {
        let sig: Vec<f64> = seed.iter().take(omega + delta - 1).copied().collect();
        prop_assume!(sig.len() == omega + delta - 1);
        let v: Vec<f64> = vseed.iter().take(delta).copied().collect();
        prop_assume!(v.len() == delta);
        let h = HankelMatrix::new(&sig, omega, delta);
        let dense = h.to_dense();
        let hv = h.matvec(&v);
        let dv = dense.matvec(&v);
        for (a, b) in hv.iter().zip(dv.iter()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
        // Gram operator agrees with the dense Gram matrix.
        let u: Vec<f64> = vseed.iter().take(omega).copied().collect();
        prop_assume!(u.len() == omega);
        let cu = h.gram_operator().apply_vec(&u);
        let du = dense.gram().matvec(&u);
        for (a, b) in cu.iter().zip(du.iter()) {
            prop_assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn lanczos_eigenvalues_bounded_by_operator_spectrum(
        n in 2usize..7,
        seed in finite_vec(49),
        sseed in finite_vec(7),
    ) {
        let data: Vec<f64> = seed.iter().take(n * n).copied().collect();
        prop_assume!(data.len() == n * n);
        let raw = Mat::from_rows(n, n, data);
        let spd = raw.gram(); // symmetric PSD
        let exact = sym_eig(&spd);
        let start: Vec<f64> = sseed.iter().take(n).copied().collect();
        prop_assume!(start.len() == n);
        prop_assume!(start.iter().any(|&x| x.abs() > 1e-6));
        let op = DenseOperator::new(spd.clone());
        let r = lanczos(&op, &start, n);
        prop_assume!(r.steps() > 0);
        let ritz = tridiag_eig(&r.alpha, &r.beta);
        // Ritz values interlace: all lie within [λ_min, λ_max].
        let lo = exact.values.last().copied().unwrap_or(0.0);
        let hi = exact.values.first().copied().unwrap_or(0.0);
        let tol = 1e-6 * hi.abs().max(1.0);
        for v in &ritz.values {
            prop_assert!(*v >= lo - tol && *v <= hi + tol, "ritz {v} outside [{lo}, {hi}]");
        }
        // Basis orthonormal.
        for i in 0..r.basis.len() {
            for j in i..r.basis.len() {
                let d = dot(&r.basis[i], &r.basis[j]);
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((d - want).abs() < 1e-7);
            }
        }
    }
}
