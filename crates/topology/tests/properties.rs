//! Property-based tests for topology construction and impact-set
//! identification (§3.1 invariants).

use funnel_topology::change::{ChangeId, ChangeKind, LaunchMode, SoftwareChange};
use funnel_topology::impact::{identify_impact_set, Entity};
use funnel_topology::model::{InstanceId, Topology};
use funnel_topology::naming::ServiceName;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Builds a topology with `sizes.len()` services of the given instance
/// counts, relating service i to i+1 when `relate[i]`.
fn build(sizes: &[usize], relate: &[bool]) -> Topology {
    let mut t = Topology::new();
    let mut ids = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let svc = t
            .add_service(ServiceName::parse(&format!("prop.s{i}")).unwrap())
            .unwrap();
        for k in 0..n {
            let server = t.add_server(format!("s{i}-h{k}"));
            t.add_instance(svc, server).unwrap();
        }
        ids.push(svc);
    }
    for (i, &r) in relate.iter().enumerate() {
        if r && i + 1 < ids.len() {
            t.relate(ids[i], ids[i + 1]).unwrap();
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// tinstances and cinstances partition the changed service's instances,
    /// and tservers/cservers never overlap.
    #[test]
    fn impact_set_partitions_service(
        sizes in prop::collection::vec(1usize..8, 1..6),
        relate in prop::collection::vec(any::<bool>(), 5),
        svc_pick in any::<prop::sample::Index>(),
        n_targets in 0usize..9,
    ) {
        let topo = build(&sizes, &relate);
        let services: Vec<_> = topo.services().map(|(id, _)| id).collect();
        let service = services[svc_pick.index(services.len())];
        let all: Vec<InstanceId> = topo.instances_of(service).iter().map(|i| i.id).collect();
        let n_targets = n_targets.min(all.len()).max(1);
        let change = SoftwareChange {
            id: ChangeId(0),
            kind: ChangeKind::Upgrade,
            service,
            targets: all[..n_targets].to_vec(),
            minute: 100,
            launch: if n_targets == all.len() { LaunchMode::Full } else { LaunchMode::Dark },
            description: String::new(),
        };
        let set = identify_impact_set(&topo, &change).unwrap();

        // Partition.
        let t: BTreeSet<_> = set.tinstances.iter().collect();
        let c: BTreeSet<_> = set.cinstances.iter().collect();
        prop_assert!(t.is_disjoint(&c));
        prop_assert_eq!(t.len() + c.len(), all.len());

        // Server disjointness.
        let ts: BTreeSet<_> = set.tservers.iter().collect();
        let cs: BTreeSet<_> = set.cservers.iter().collect();
        prop_assert!(ts.is_disjoint(&cs));

        // Control exists iff the launch left instances untouched.
        prop_assert_eq!(set.has_control_group(), n_targets < all.len());

        // The changed service never appears among its own affected services.
        prop_assert!(!set.affected_services.contains(&service));

        // Monitored entities are unique.
        let monitored = set.monitored_entities();
        let uniq: BTreeSet<_> = monitored.iter().collect();
        prop_assert_eq!(uniq.len(), monitored.len());

        // Control entities are never monitored.
        for &ci in &set.cinstances {
            prop_assert!(!monitored.contains(&Entity::Instance(ci)));
        }
    }

    /// Affected services are symmetric under the relation graph: if B is
    /// affected by a change on A, then A is affected by a change on B.
    #[test]
    fn affectedness_is_symmetric(
        sizes in prop::collection::vec(1usize..4, 2..6),
        relate in prop::collection::vec(any::<bool>(), 5),
    ) {
        let topo = build(&sizes, &relate);
        let services: Vec<_> = topo.services().map(|(id, _)| id).collect();
        for &a in &services {
            for b in topo.affected_services(a) {
                prop_assert!(
                    topo.affected_services(b).contains(&a),
                    "{a:?} affects {b:?} but not vice versa"
                );
            }
        }
    }

    /// Service names round-trip through parse/display.
    #[test]
    fn names_roundtrip(segs in prop::collection::vec("[a-z][a-z0-9_-]{0,6}", 1..5)) {
        let joined = segs.join(".");
        let name = ServiceName::parse(&joined).unwrap();
        prop_assert_eq!(name.to_string(), joined);
        prop_assert_eq!(name.depth(), segs.len());
        prop_assert_eq!(name.leaf(), segs.last().unwrap());
    }
}
