//! The datacenter model: services, servers, instances, relationships.
//!
//! "Each service … runs on one or more servers with a specific process on
//! each server. An instance denotes a process of a specific service on a
//! specific server" (§2.2). Servers are dedicated to one service in the
//! studied company, and services exchange requests along relationship edges
//! that the operations team knows (§3.1, Fig. 4).

use crate::naming::ServiceName;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

/// Identifier of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerId(pub u32);

/// Identifier of an instance (one service process on one server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

/// Errors from topology construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A service name was registered twice.
    DuplicateService(ServiceName),
    /// An id does not exist.
    UnknownService(ServiceId),
    /// An id does not exist.
    UnknownServer(ServerId),
    /// An id does not exist.
    UnknownInstance(InstanceId),
    /// A server already hosts an instance of a different service (servers
    /// are dedicated to a single service in the studied company).
    ServerServiceMismatch {
        /// The server in question.
        server: ServerId,
        /// The service already hosted.
        existing: ServiceId,
        /// The service that was being added.
        requested: ServiceId,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateService(n) => write!(f, "duplicate service name '{n}'"),
            TopologyError::UnknownService(id) => write!(f, "unknown service id {}", id.0),
            TopologyError::UnknownServer(id) => write!(f, "unknown server id {}", id.0),
            TopologyError::UnknownInstance(id) => write!(f, "unknown instance id {}", id.0),
            TopologyError::ServerServiceMismatch {
                server,
                existing,
                requested,
            } => write!(
                f,
                "server {} already dedicated to service {} (requested {})",
                server.0, existing.0, requested.0
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// One service process on one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// The instance's id.
    pub id: InstanceId,
    /// The service this process belongs to.
    pub service: ServiceId,
    /// The server the process runs on.
    pub server: ServerId,
}

/// The full registry: services, servers, instances, and the service
/// relationship graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    services: Vec<ServiceName>,
    servers: Vec<String>,
    server_service: Vec<Option<ServiceId>>,
    instances: Vec<Instance>,
    /// Undirected relationship edges: `relations[a]` holds every service
    /// that exchanges requests/responses with `a`.
    relations: BTreeMap<ServiceId, BTreeSet<ServiceId>>,
    name_index: BTreeMap<ServiceName, ServiceId>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service.
    ///
    /// # Errors
    ///
    /// [`TopologyError::DuplicateService`] when the name already exists.
    pub fn add_service(&mut self, name: ServiceName) -> Result<ServiceId, TopologyError> {
        if self.name_index.contains_key(&name) {
            return Err(TopologyError::DuplicateService(name));
        }
        let id = ServiceId(self.services.len() as u32);
        self.name_index.insert(name.clone(), id);
        self.services.push(name);
        Ok(id)
    }

    /// Registers a server by hostname (hostnames need not be unique; the id
    /// is authoritative).
    pub fn add_server(&mut self, hostname: impl Into<String>) -> ServerId {
        let id = ServerId(self.servers.len() as u32);
        self.servers.push(hostname.into());
        self.server_service.push(None);
        id
    }

    /// Creates an instance of `service` on `server`.
    ///
    /// # Errors
    ///
    /// Unknown ids, or the server is already dedicated to another service.
    pub fn add_instance(
        &mut self,
        service: ServiceId,
        server: ServerId,
    ) -> Result<InstanceId, TopologyError> {
        self.service_name(service)?;
        let slot = self
            .server_service
            .get_mut(server.0 as usize)
            .ok_or(TopologyError::UnknownServer(server))?;
        match slot {
            Some(existing) if *existing != service => {
                return Err(TopologyError::ServerServiceMismatch {
                    server,
                    existing: *existing,
                    requested: service,
                });
            }
            _ => *slot = Some(service),
        }
        let id = InstanceId(self.instances.len() as u32);
        self.instances.push(Instance {
            id,
            service,
            server,
        });
        Ok(id)
    }

    /// Declares that `a` and `b` exchange requests/responses (undirected).
    ///
    /// # Errors
    ///
    /// Unknown service ids.
    pub fn relate(&mut self, a: ServiceId, b: ServiceId) -> Result<(), TopologyError> {
        self.service_name(a)?;
        self.service_name(b)?;
        if a != b {
            self.relations.entry(a).or_default().insert(b);
            self.relations.entry(b).or_default().insert(a);
        }
        Ok(())
    }

    /// The name of a service.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownService`].
    pub fn service_name(&self, id: ServiceId) -> Result<&ServiceName, TopologyError> {
        self.services
            .get(id.0 as usize)
            .ok_or(TopologyError::UnknownService(id))
    }

    /// Looks a service up by name.
    pub fn service_by_name(&self, name: &ServiceName) -> Option<ServiceId> {
        self.name_index.get(name).copied()
    }

    /// The hostname of a server.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownServer`].
    pub fn server_hostname(&self, id: ServerId) -> Result<&str, TopologyError> {
        self.servers
            .get(id.0 as usize)
            .map(String::as_str)
            .ok_or(TopologyError::UnknownServer(id))
    }

    /// The service a server is dedicated to, if any instance was placed.
    pub fn server_service(&self, id: ServerId) -> Option<ServiceId> {
        self.server_service.get(id.0 as usize).copied().flatten()
    }

    /// An instance record.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownInstance`].
    pub fn instance(&self, id: InstanceId) -> Result<Instance, TopologyError> {
        self.instances
            .get(id.0 as usize)
            .copied()
            .ok_or(TopologyError::UnknownInstance(id))
    }

    /// All instances of a service, in id order.
    pub fn instances_of(&self, service: ServiceId) -> Vec<Instance> {
        self.instances
            .iter()
            .copied()
            .filter(|i| i.service == service)
            .collect()
    }

    /// Services directly related to `service`.
    pub fn related_services(&self, service: ServiceId) -> Vec<ServiceId> {
        self.relations
            .get(&service)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Services reachable from `service` over relationship edges (excluding
    /// `service` itself) — the *affected services* of §3.1 / Fig. 4, where
    /// service C (related to B, which is related to changed A) is affected.
    pub fn affected_services(&self, service: ServiceId) -> Vec<ServiceId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![service];
        seen.insert(service);
        while let Some(s) = stack.pop() {
            if let Some(neigh) = self.relations.get(&s) {
                for &n in neigh {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        seen.remove(&service);
        seen.into_iter().collect()
    }

    /// Iterates all services.
    pub fn services(&self) -> impl Iterator<Item = (ServiceId, &ServiceName)> {
        self.services
            .iter()
            .enumerate()
            .map(|(i, n)| (ServiceId(i as u32), n))
    }

    /// Iterates all instances.
    pub fn instances(&self) -> impl Iterator<Item = Instance> + '_ {
        self.instances.iter().copied()
    }

    /// Number of servers registered.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of services registered.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> ServiceName {
        ServiceName::parse(s).unwrap()
    }

    #[test]
    fn build_and_query() {
        let mut t = Topology::new();
        let web = t.add_service(name("search.web")).unwrap();
        let idx = t.add_service(name("search.index")).unwrap();
        let s1 = t.add_server("host-1");
        let s2 = t.add_server("host-2");
        let i1 = t.add_instance(web, s1).unwrap();
        let _i2 = t.add_instance(web, s2).unwrap();
        t.relate(web, idx).unwrap();

        assert_eq!(t.service_by_name(&name("search.web")), Some(web));
        assert_eq!(t.instance(i1).unwrap().server, s1);
        assert_eq!(t.instances_of(web).len(), 2);
        assert_eq!(t.related_services(web), vec![idx]);
        assert_eq!(t.server_service(s1), Some(web));
        assert_eq!(t.server_hostname(s2).unwrap(), "host-2");
    }

    #[test]
    fn duplicate_service_rejected() {
        let mut t = Topology::new();
        t.add_service(name("a")).unwrap();
        assert!(matches!(
            t.add_service(name("a")),
            Err(TopologyError::DuplicateService(_))
        ));
    }

    #[test]
    fn server_dedicated_to_one_service() {
        let mut t = Topology::new();
        let a = t.add_service(name("a")).unwrap();
        let b = t.add_service(name("b")).unwrap();
        let s = t.add_server("h");
        t.add_instance(a, s).unwrap();
        // Same service again on the same server is fine (multi-process).
        t.add_instance(a, s).unwrap();
        assert!(matches!(
            t.add_instance(b, s),
            Err(TopologyError::ServerServiceMismatch { .. })
        ));
    }

    #[test]
    fn affected_services_transitive_closure() {
        // Fig. 4: A—B, B—C, A—D. Affected(A) = {B, C, D}.
        let mut t = Topology::new();
        let a = t.add_service(name("a")).unwrap();
        let b = t.add_service(name("b")).unwrap();
        let c = t.add_service(name("c")).unwrap();
        let d = t.add_service(name("d")).unwrap();
        let e = t.add_service(name("e")).unwrap(); // unrelated
        t.relate(a, b).unwrap();
        t.relate(b, c).unwrap();
        t.relate(a, d).unwrap();
        let affected = t.affected_services(a);
        assert_eq!(affected, vec![b, c, d]);
        assert!(t.affected_services(e).is_empty());
    }

    #[test]
    fn unknown_ids_error() {
        let t = Topology::new();
        assert!(t.service_name(ServiceId(0)).is_err());
        assert!(t.server_hostname(ServerId(0)).is_err());
        assert!(t.instance(InstanceId(0)).is_err());
    }

    #[test]
    fn self_relation_ignored() {
        let mut t = Topology::new();
        let a = t.add_service(name("a")).unwrap();
        t.relate(a, a).unwrap();
        assert!(t.related_services(a).is_empty());
    }
}
