//! Hierarchical service names.
//!
//! "The operations team names the services based on the service hierarchy.
//! … FUNNEL derives the relationship among services using the naming rules"
//! (§3.1). A [`ServiceName`] is a dotted path like `search.web.frontend`;
//! ancestry along the path encodes the organizational hierarchy, which the
//! simulator uses to wire default request relationships (a child service
//! talks to its parent and siblings unless told otherwise).

use serde::{Deserialize, Serialize};

/// A dotted hierarchical service name, e.g. `search.web.frontend`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServiceName(String);

impl ServiceName {
    /// Parses a name. Segments must be non-empty, lowercase alphanumeric
    /// (plus `-` and `_`), separated by single dots.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated rule.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s.is_empty() {
            return Err("service name must not be empty".into());
        }
        for seg in s.split('.') {
            if seg.is_empty() {
                return Err(format!("empty segment in service name '{s}'"));
            }
            if !seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
            {
                return Err(format!("invalid character in service name segment '{seg}'"));
            }
        }
        Ok(Self(s.to_string()))
    }

    /// The full dotted name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The path segments.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of segments (depth in the hierarchy).
    pub fn depth(&self) -> usize {
        self.0.split('.').count()
    }

    /// The parent name (`search.web` for `search.web.frontend`), or `None`
    /// at the root.
    pub fn parent(&self) -> Option<ServiceName> {
        self.0
            .rfind('.')
            .map(|i| ServiceName(self.0[..i].to_string()))
    }

    /// The final segment (`frontend` for `search.web.frontend`).
    pub fn leaf(&self) -> &str {
        self.0.rsplit('.').next().unwrap_or(&self.0)
    }

    /// Whether `self` is a strict ancestor of `other` in the hierarchy.
    pub fn is_ancestor_of(&self, other: &ServiceName) -> bool {
        other.0.len() > self.0.len()
            && other.0.starts_with(&self.0)
            && other.0.as_bytes()[self.0.len()] == b'.'
    }

    /// Whether the two names share the same top-level product segment.
    pub fn same_product(&self, other: &ServiceName) -> bool {
        self.segments().next() == other.segments().next()
    }
}

impl std::fmt::Display for ServiceName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for ServiceName {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_names() {
        for n in ["search", "search.web", "ads.anti-cheat.v2", "a_b.c-1"] {
            assert!(ServiceName::parse(n).is_ok(), "{n}");
        }
    }

    #[test]
    fn parse_rejects_invalid_names() {
        for n in ["", ".", "a..b", "A.b", "a b", "a.", ".a"] {
            assert!(ServiceName::parse(n).is_err(), "{n}");
        }
    }

    #[test]
    fn hierarchy_navigation() {
        let n = ServiceName::parse("search.web.frontend").unwrap();
        assert_eq!(n.depth(), 3);
        assert_eq!(n.leaf(), "frontend");
        assert_eq!(n.parent().unwrap().as_str(), "search.web");
        assert_eq!(n.parent().unwrap().parent().unwrap().as_str(), "search");
        assert_eq!(n.parent().unwrap().parent().unwrap().parent(), None);
    }

    #[test]
    fn ancestry() {
        let root = ServiceName::parse("search").unwrap();
        let mid = ServiceName::parse("search.web").unwrap();
        let leaf = ServiceName::parse("search.web.frontend").unwrap();
        let other = ServiceName::parse("search-engine.web").unwrap();
        assert!(root.is_ancestor_of(&mid));
        assert!(root.is_ancestor_of(&leaf));
        assert!(mid.is_ancestor_of(&leaf));
        assert!(!leaf.is_ancestor_of(&mid));
        assert!(!root.is_ancestor_of(&root.clone()));
        // Prefix without a dot boundary is not ancestry.
        assert!(!root.is_ancestor_of(&other));
    }

    #[test]
    fn same_product_compares_top_segment() {
        let a = ServiceName::parse("ads.click").unwrap();
        let b = ServiceName::parse("ads.render").unwrap();
        let c = ServiceName::parse("search.web").unwrap();
        assert!(a.same_product(&b));
        assert!(!a.same_product(&c));
    }
}
