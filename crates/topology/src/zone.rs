//! Zone striping over the server fleet.
//!
//! The studied company's fleet is sharded across failure domains, and the
//! simulator's fault planner already partitions replay agents by
//! `shard % zones` (`PartitionScope::Zone` in `funnel-sim`). The
//! diagnosis layer needs the same notion on the *topology* side so it can
//! rank where a regression concentrates; [`ZoneMap`] provides the matching
//! deterministic striping — `server_id % zones` — without storing any new
//! state on the topology itself.

use crate::impact::Entity;
use crate::model::{ServerId, Topology};

/// A deterministic server → zone assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    zones: u32,
}

impl ZoneMap {
    /// Modulo striping over `zones` zones (clamped to at least 1),
    /// mirroring the simulator's replay-shard striping.
    pub fn striped(zones: u32) -> Self {
        Self {
            zones: zones.max(1),
        }
    }

    /// The zone count.
    pub fn zones(&self) -> u32 {
        self.zones
    }

    /// The zone a server belongs to.
    pub fn of_server(&self, server: ServerId) -> u32 {
        server.0 % self.zones
    }

    /// The zone an impact-set entity belongs to: servers map directly,
    /// instances map through their host server, and services — which
    /// aggregate across every zone — have none.
    pub fn of_entity(&self, topology: &Topology, entity: Entity) -> Option<u32> {
        match entity {
            Entity::Server(s) => Some(self.of_server(s)),
            Entity::Instance(i) => topology
                .instance(i)
                .ok()
                .map(|inst| self.of_server(inst.server)),
            Entity::Service(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceId;
    use crate::naming::ServiceName;

    #[test]
    fn striping_matches_modulo_and_services_have_no_zone() {
        let mut t = Topology::new();
        let svc = t
            .add_service(ServiceName::parse("prod.x").unwrap())
            .unwrap();
        let s0 = t.add_server("h0");
        let s1 = t.add_server("h1");
        let i0 = t.add_instance(svc, s0).unwrap();
        let _i1 = t.add_instance(svc, s1).unwrap();

        let zm = ZoneMap::striped(4);
        assert_eq!(zm.zones(), 4);
        assert_eq!(zm.of_server(s0), s0.0 % 4);
        assert_eq!(zm.of_entity(&t, Entity::Server(s1)), Some(s1.0 % 4));
        assert_eq!(zm.of_entity(&t, Entity::Instance(i0)), Some(s0.0 % 4));
        assert_eq!(zm.of_entity(&t, Entity::Service(svc)), None);
        // Unknown instances resolve to no zone rather than faulting.
        assert_eq!(zm.of_entity(&t, Entity::Instance(InstanceId(99))), None);
    }

    #[test]
    fn zero_zone_request_clamps_to_one() {
        let zm = ZoneMap::striped(0);
        assert_eq!(zm.zones(), 1);
        assert_eq!(zm.of_server(ServerId(17)), 0);
    }
}
