//! Service topology, software-change logs, and impact-set identification for
//! FUNNEL (paper §2, §3.1).
//!
//! The studied company names services hierarchically and records every
//! software change (upgrades and configuration changes) in deployment logs.
//! From the change log plus the service relationship graph, FUNNEL derives
//! the *impact set* of each change:
//!
//! * **tservers / tinstances** — the servers and instances the change was
//!   deployed on (directly from the log),
//! * **the changed service** — the service those instances belong to,
//! * **affected services** — services transitively related to the changed
//!   service (they exchange requests/responses with it),
//! * **cservers / cinstances** — the same service's servers and instances
//!   *without* the change: the dark-launch control group.
//!
//! Instances of affected services are deliberately *not* in the impact set:
//! load balancing makes it unlikely that a single instance of an affected
//! service is individually impacted, so the affected service's aggregate
//! KPI suffices (§3.1).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod change;
pub mod impact;
pub mod model;
pub mod naming;
pub mod zone;

pub use change::{
    combine_consecutive, ChangeId, ChangeKind, ChangeLog, LaunchMode, SoftwareChange,
};
pub use impact::{identify_impact_set, Entity, ImpactSet};
pub use model::{InstanceId, ServerId, ServiceId, Topology, TopologyError};
pub use naming::ServiceName;
pub use zone::ZoneMap;
