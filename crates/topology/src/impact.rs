//! Impact-set identification (paper §3.1, Fig. 4).
//!
//! For a change deployed on instances `(A₁ … A_m)` of service A (related to
//! B and D, with B related to C):
//!
//! * impact set = tinstances `(A₁ … A_m)` + tservers + changed service A +
//!   affected services {B, C, D};
//! * control group = cinstances `(A_{m+1} … A_n)` + their cservers;
//! * instances of affected services are *excluded* — their aggregate
//!   service KPI represents them.

use crate::change::SoftwareChange;
use crate::model::{InstanceId, ServerId, ServiceId, Topology, TopologyError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Anything a KPI can be attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Entity {
    /// A physical server.
    Server(ServerId),
    /// A service process on a server.
    Instance(InstanceId),
    /// A whole service (aggregate of its instances).
    Service(ServiceId),
}

/// The impact set and control group of one software change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImpactSet {
    /// Instances the change was deployed on.
    pub tinstances: Vec<InstanceId>,
    /// Servers hosting the tinstances.
    pub tservers: Vec<ServerId>,
    /// The changed service.
    pub changed_service: ServiceId,
    /// Services transitively related to the changed service.
    pub affected_services: Vec<ServiceId>,
    /// Same-service instances without the change (empty for full launches).
    pub cinstances: Vec<InstanceId>,
    /// Servers hosting the cinstances.
    pub cservers: Vec<ServerId>,
}

impl ImpactSet {
    /// The monitored entities, in a stable order: tservers, tinstances, the
    /// changed service, then affected services. (Control entities are *not*
    /// monitored for changes; they only serve as the DiD control group.)
    pub fn monitored_entities(&self) -> Vec<Entity> {
        let mut v = Vec::with_capacity(
            self.tservers.len() + self.tinstances.len() + 1 + self.affected_services.len(),
        );
        v.extend(self.tservers.iter().map(|&s| Entity::Server(s)));
        v.extend(self.tinstances.iter().map(|&i| Entity::Instance(i)));
        v.push(Entity::Service(self.changed_service));
        v.extend(self.affected_services.iter().map(|&s| Entity::Service(s)));
        v
    }

    /// Whether a dark-launch control group exists.
    pub fn has_control_group(&self) -> bool {
        !self.cinstances.is_empty()
    }
}

/// Derives the impact set of `change` from the topology (§3.1).
///
/// # Errors
///
/// Propagates [`TopologyError`] when the change references unknown ids.
pub fn identify_impact_set(
    topology: &Topology,
    change: &SoftwareChange,
) -> Result<ImpactSet, TopologyError> {
    // tinstances come straight from the change log; validate and collect
    // their servers.
    let mut tservers = BTreeSet::new();
    for &i in &change.targets {
        let inst = topology.instance(i)?;
        tservers.insert(inst.server);
    }

    // cinstances: same service, not targeted.
    let targeted: BTreeSet<InstanceId> = change.targets.iter().copied().collect();
    let mut cinstances = Vec::new();
    let mut cservers = BTreeSet::new();
    for inst in topology.instances_of(change.service) {
        if !targeted.contains(&inst.id) {
            cinstances.push(inst.id);
            cservers.insert(inst.server);
        }
    }
    // A server hosting both a tinstance and a cinstance (multi-process) is
    // treated, not control.
    let cservers: Vec<ServerId> = cservers.difference(&tservers).copied().collect();

    Ok(ImpactSet {
        tinstances: change.targets.clone(),
        tservers: tservers.into_iter().collect(),
        changed_service: change.service,
        affected_services: topology.affected_services(change.service),
        cinstances,
        cservers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::{ChangeKind, LaunchMode};
    use crate::naming::ServiceName;

    fn fig4_topology() -> (Topology, ServiceId, Vec<InstanceId>) {
        // Fig. 4: service A with 6 instances on 6 servers; A—B, B—C, A—D.
        let mut t = Topology::new();
        let a = t
            .add_service(ServiceName::parse("prod.a").unwrap())
            .unwrap();
        let b = t
            .add_service(ServiceName::parse("prod.b").unwrap())
            .unwrap();
        let c = t
            .add_service(ServiceName::parse("prod.c").unwrap())
            .unwrap();
        let d = t
            .add_service(ServiceName::parse("prod.d").unwrap())
            .unwrap();
        t.relate(a, b).unwrap();
        t.relate(b, c).unwrap();
        t.relate(a, d).unwrap();
        let mut instances = Vec::new();
        for k in 0..6 {
            let srv = t.add_server(format!("a-host-{k}"));
            instances.push(t.add_instance(a, srv).unwrap());
        }
        // B/C/D each get one instance so they're real services.
        for (svc, name) in [(b, "b"), (c, "c"), (d, "d")] {
            let srv = t.add_server(format!("{name}-host"));
            t.add_instance(svc, srv).unwrap();
        }
        (t, a, instances)
    }

    fn change_on(a: ServiceId, targets: Vec<InstanceId>, launch: LaunchMode) -> SoftwareChange {
        SoftwareChange {
            id: crate::change::ChangeId(0),
            kind: ChangeKind::Upgrade,
            service: a,
            targets,
            minute: 500,
            launch,
            description: String::new(),
        }
    }

    #[test]
    fn dark_launch_splits_treated_and_control() {
        let (t, a, inst) = fig4_topology();
        let change = change_on(a, inst[..2].to_vec(), LaunchMode::Dark);
        let set = identify_impact_set(&t, &change).unwrap();
        assert_eq!(set.tinstances.len(), 2);
        assert_eq!(set.tservers.len(), 2);
        assert_eq!(set.cinstances.len(), 4);
        assert_eq!(set.cservers.len(), 4);
        assert!(set.has_control_group());
        assert_eq!(set.changed_service, a);
        // Affected services: B, C (via B), D.
        assert_eq!(set.affected_services.len(), 3);
    }

    #[test]
    fn full_launch_has_no_control() {
        let (t, a, inst) = fig4_topology();
        let change = change_on(a, inst.clone(), LaunchMode::Full);
        let set = identify_impact_set(&t, &change).unwrap();
        assert!(set.cinstances.is_empty());
        assert!(set.cservers.is_empty());
        assert!(!set.has_control_group());
    }

    #[test]
    fn monitored_entities_exclude_control_and_affected_instances() {
        let (t, a, inst) = fig4_topology();
        let change = change_on(a, inst[..2].to_vec(), LaunchMode::Dark);
        let set = identify_impact_set(&t, &change).unwrap();
        let entities = set.monitored_entities();
        // 2 tservers + 2 tinstances + changed + 3 affected = 8.
        assert_eq!(entities.len(), 8);
        // No cinstance appears.
        for &ci in &set.cinstances {
            assert!(!entities.contains(&Entity::Instance(ci)));
        }
        // No instance of an affected service appears (only the service).
        let service_entities: Vec<_> = entities
            .iter()
            .filter(|e| matches!(e, Entity::Service(_)))
            .collect();
        assert_eq!(service_entities.len(), 4);
    }

    #[test]
    fn shared_server_is_treated_not_control() {
        // Two instances of the same service on one server; change one of
        // them: the server must not appear in cservers.
        let mut t = Topology::new();
        let a = t.add_service(ServiceName::parse("x").unwrap()).unwrap();
        let srv = t.add_server("dual");
        let i1 = t.add_instance(a, srv).unwrap();
        let _i2 = t.add_instance(a, srv).unwrap();
        let change = change_on(a, vec![i1], LaunchMode::Dark);
        let set = identify_impact_set(&t, &change).unwrap();
        assert_eq!(set.tservers, vec![srv]);
        assert!(set.cservers.is_empty());
        assert_eq!(set.cinstances.len(), 1);
    }

    #[test]
    fn unknown_target_errors() {
        let (t, a, _) = fig4_topology();
        let change = change_on(a, vec![InstanceId(999)], LaunchMode::Dark);
        assert!(identify_impact_set(&t, &change).is_err());
    }
}
