//! Software changes and the change log (paper §2.1).
//!
//! FUNNEL studies two kinds of planned changes on servers: **software
//! upgrades** (new features, bug fixes, performance work — assessed as a
//! whole) and **configuration changes** (OS/infra config, service config,
//! deployment scale, data source). Both are "controllable by the operations
//! team via command line interfaces and observable in logs"; the change log
//! is the input from which impact sets are derived.

use crate::model::{InstanceId, ServiceId};
use funnel_timeseries::series::MinuteBin;
use serde::{Deserialize, Serialize};

/// Identifier of a software change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChangeId(pub u32);

/// The two studied change kinds (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangeKind {
    /// A software upgrade (possibly bundling several features/fixes;
    /// FUNNEL assesses the upgrade as a whole).
    Upgrade,
    /// A configuration change (OS/infrastructure, service config,
    /// deployment scale, or data source).
    ConfigChange,
}

/// How the change was rolled out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaunchMode {
    /// Dark launching: deployed to a strict subset of the service's
    /// instances first, leaving cinstances as a live control group.
    Dark,
    /// Full launching: deployed to every instance at once — no concurrent
    /// control group exists and FUNNEL falls back to historical seasonality
    /// exclusion (§3.2.5).
    Full,
}

/// One logged software change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareChange {
    /// Log id.
    pub id: ChangeId,
    /// Upgrade or configuration change.
    pub kind: ChangeKind,
    /// The changed service (every change targets exactly one service; the
    /// operations team does not deploy two changes to one service at the
    /// same time, §3.1).
    pub service: ServiceId,
    /// The instances the change was deployed on (the tinstances).
    pub targets: Vec<InstanceId>,
    /// Deployment minute.
    pub minute: MinuteBin,
    /// Dark or full launching.
    pub launch: LaunchMode,
    /// Free-text description for operator-facing reports.
    pub description: String,
}

/// Append-only change log with time- and service-scoped queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChangeLog {
    changes: Vec<SoftwareChange>,
}

impl ChangeLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a change, assigning its id.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        kind: ChangeKind,
        service: ServiceId,
        targets: Vec<InstanceId>,
        minute: MinuteBin,
        launch: LaunchMode,
        description: impl Into<String>,
    ) -> ChangeId {
        let id = ChangeId(self.changes.len() as u32);
        self.changes.push(SoftwareChange {
            id,
            kind,
            service,
            targets,
            minute,
            launch,
            description: description.into(),
        });
        id
    }

    /// Fetches a change by id.
    pub fn get(&self, id: ChangeId) -> Option<&SoftwareChange> {
        self.changes.get(id.0 as usize)
    }

    /// All changes, in log order.
    pub fn all(&self) -> &[SoftwareChange] {
        &self.changes
    }

    /// Changes deployed within `[from, to)`.
    pub fn in_window(&self, from: MinuteBin, to: MinuteBin) -> Vec<&SoftwareChange> {
        self.changes
            .iter()
            .filter(|c| c.minute >= from && c.minute < to)
            .collect()
    }

    /// Changes on a given service, in log order.
    pub fn for_service(&self, service: ServiceId) -> Vec<&SoftwareChange> {
        self.changes
            .iter()
            .filter(|c| c.service == service)
            .collect()
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Merges concurrent/consecutive changes on the same service into one
/// combined change — the "straw man approach" the paper names for the
/// multi-change interaction problem it leaves as future work (§2.1): "We do
/// not explicitly consider the interactions across multiple concurrent or
/// consecutive software changes on a same server, which can be considered
/// as one combined change."
///
/// Changes on one service whose deployment minutes are within
/// `merge_window_minutes` of the *previous* change in the group are folded
/// into a single synthetic change: the union of targets, the earliest
/// minute, `Dark` launch only if every member was dark, and a concatenated
/// description. Combined changes get fresh ids starting at `0` in the
/// returned vector (they are synthetic views, not log entries).
pub fn combine_consecutive(
    changes: &[SoftwareChange],
    merge_window_minutes: u64,
) -> Vec<SoftwareChange> {
    use std::collections::BTreeMap;
    let mut by_service: BTreeMap<ServiceId, Vec<&SoftwareChange>> = BTreeMap::new();
    for c in changes {
        by_service.entry(c.service).or_default().push(c);
    }

    /// A group under construction: the synthetic change plus the minute of
    /// its most recent member (chains extend from the latest member).
    struct Group {
        change: SoftwareChange,
        last_minute: MinuteBin,
    }

    let mut combined = Vec::new();
    for (_service, mut group) in by_service {
        group.sort_by_key(|c| c.minute);
        let mut current: Option<Group> = None;
        for c in group {
            match current.as_mut() {
                Some(g) if c.minute.saturating_sub(g.last_minute) <= merge_window_minutes => {
                    let acc = &mut g.change;
                    for &t in &c.targets {
                        if !acc.targets.contains(&t) {
                            acc.targets.push(t);
                        }
                    }
                    acc.targets.sort();
                    if c.launch == LaunchMode::Full {
                        acc.launch = LaunchMode::Full;
                    }
                    if c.kind != acc.kind {
                        acc.kind = ChangeKind::Upgrade; // mixed kinds read as an upgrade
                    }
                    acc.description.push_str(" + ");
                    acc.description.push_str(&c.description);
                    g.last_minute = c.minute;
                }
                _ => {
                    if let Some(done) = current.take() {
                        combined.push(done.change);
                    }
                    current = Some(Group {
                        change: c.clone(),
                        last_minute: c.minute,
                    });
                }
            }
        }
        if let Some(done) = current.take() {
            combined.push(done.change);
        }
    }
    // Synthetic ids, deterministic order (service, minute).
    combined.sort_by_key(|c| (c.service, c.minute));
    for (i, c) in combined.iter_mut().enumerate() {
        c.id = ChangeId(i as u32);
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut log = ChangeLog::new();
        let id0 = log.record(
            ChangeKind::Upgrade,
            ServiceId(1),
            vec![InstanceId(0), InstanceId(1)],
            100,
            LaunchMode::Dark,
            "roll out ranking v2",
        );
        let id1 = log.record(
            ChangeKind::ConfigChange,
            ServiceId(2),
            vec![InstanceId(5)],
            200,
            LaunchMode::Full,
            "raise thread pool",
        );
        assert_eq!(id0, ChangeId(0));
        assert_eq!(id1, ChangeId(1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(id1).unwrap().kind, ChangeKind::ConfigChange);
        assert_eq!(log.for_service(ServiceId(1)).len(), 1);
        assert_eq!(log.in_window(0, 150).len(), 1);
        assert_eq!(log.in_window(100, 201).len(), 2);
        assert!(log.get(ChangeId(9)).is_none());
    }

    #[test]
    fn empty_log() {
        let log = ChangeLog::new();
        assert!(log.is_empty());
        assert!(log.in_window(0, u64::MAX).is_empty());
    }

    fn change(
        id: u32,
        service: u32,
        targets: &[u32],
        minute: MinuteBin,
        launch: LaunchMode,
    ) -> SoftwareChange {
        SoftwareChange {
            id: ChangeId(id),
            kind: ChangeKind::Upgrade,
            service: ServiceId(service),
            targets: targets.iter().map(|&t| InstanceId(t)).collect(),
            minute,
            launch,
            description: format!("c{id}"),
        }
    }

    #[test]
    fn combine_merges_within_window() {
        let changes = vec![
            change(0, 1, &[0, 1], 100, LaunchMode::Dark),
            change(1, 1, &[2], 110, LaunchMode::Dark),
            change(2, 1, &[3], 300, LaunchMode::Dark), // too far: own group
        ];
        let combined = combine_consecutive(&changes, 30);
        assert_eq!(combined.len(), 2);
        assert_eq!(combined[0].targets.len(), 3);
        assert_eq!(combined[0].minute, 100);
        assert!(combined[0].description.contains("c0 + c1"));
        assert_eq!(combined[1].targets.len(), 1);
    }

    #[test]
    fn combine_chains_through_members() {
        // 100 → 125 → 150: each within 30 of the previous member, so one
        // group even though 150 − 100 > 30.
        let changes = vec![
            change(0, 1, &[0], 100, LaunchMode::Dark),
            change(1, 1, &[1], 125, LaunchMode::Dark),
            change(2, 1, &[2], 150, LaunchMode::Dark),
        ];
        let combined = combine_consecutive(&changes, 30);
        assert_eq!(combined.len(), 1);
        assert_eq!(combined[0].targets.len(), 3);
    }

    #[test]
    fn combine_keeps_services_separate() {
        let changes = vec![
            change(0, 1, &[0], 100, LaunchMode::Dark),
            change(1, 2, &[5], 100, LaunchMode::Dark),
        ];
        let combined = combine_consecutive(&changes, 60);
        assert_eq!(combined.len(), 2);
        assert_ne!(combined[0].service, combined[1].service);
    }

    #[test]
    fn combine_escalates_launch_mode() {
        let changes = vec![
            change(0, 1, &[0], 100, LaunchMode::Dark),
            change(1, 1, &[1], 105, LaunchMode::Full),
        ];
        let combined = combine_consecutive(&changes, 30);
        assert_eq!(combined.len(), 1);
        assert_eq!(combined[0].launch, LaunchMode::Full);
    }

    #[test]
    fn combine_dedups_shared_targets() {
        let changes = vec![
            change(0, 1, &[0, 1], 100, LaunchMode::Dark),
            change(1, 1, &[1, 2], 105, LaunchMode::Dark),
        ];
        let combined = combine_consecutive(&changes, 30);
        assert_eq!(combined[0].targets.len(), 3);
    }
}
