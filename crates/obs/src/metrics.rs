//! The metrics registry: counters, gauges, fixed log2-bucket histograms,
//! and merged span statistics.
//!
//! Everything here is keyed by `&'static str` names from [`crate::names`]
//! and stored in `BTreeMap`s, so any snapshot serializes with byte-stable
//! key ordering. Aggregation uses commutative, associative ops only (sums,
//! min/max, lowest-index-wins) — the order per-thread buffers merge in can
//! never change the aggregate.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `k` (1–64)
/// holds values in `[2^(k-1), 2^k)`. Fixed at compile time so two runs —
/// or two worker counts — can never disagree on bucket boundaries.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` while empty).
    pub min: u64,
    /// Largest sample (0 while empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `v`: 0 for 0, otherwise `⌊log2 v⌋ + 1`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram in (commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(bucket index, sample count)` pairs in
    /// ascending bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Mean sample value (0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile sample (nearest-rank over the
    /// log2 buckets, capped at the exact observed max; 0 while empty).
    /// Bucket resolution means the bound can overshoot the true quantile
    /// by up to 2×, but it is exact-in, exact-out deterministic — no
    /// sample retention, no interpolation.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = match bucket {
                    0 => 0,
                    64 => u64::MAX,
                    k => (1u64 << k) - 1,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// Merged timing statistics for one span path.
///
/// Per-thread span buffers fold into these with commutative ops only:
/// counts and durations sum, min/max take extrema, and `min_index` keeps
/// the lowest caller-supplied index — the same lowest-index-wins tie rule
/// the parallel engine uses for errors, so which thread flushed first is
/// unobservable in the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStat {
    /// Completed span count.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Shortest observed duration (`u64::MAX` while empty).
    pub min_ns: u64,
    /// Longest observed duration.
    pub max_ns: u64,
    /// Lowest index passed to [`crate::span!`] for this path (worker or
    /// work-unit index by convention; `u64::MAX` when never indexed).
    pub min_index: u64,
}

impl StageStat {
    /// The identity element for [`StageStat::merge`].
    pub fn empty() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            min_index: u64::MAX,
        }
    }

    /// Records one completed span.
    pub fn observe(&mut self, ns: u64, index: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.min_index = self.min_index.min(index);
    }

    /// Folds another stat in (commutative).
    pub fn merge(&mut self, other: &StageStat) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_index = self.min_index.min(other.min_index);
    }

    /// Mean duration in nanoseconds (0 while empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// The global registry behind [`crate::recorder`]: every map is a
/// `BTreeMap` so snapshots iterate in byte-stable name order.
#[derive(Debug, Default)]
pub struct Registry {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Log2-bucket histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Merged span timings by span path.
    pub spans: BTreeMap<&'static str, StageStat>,
    /// Window-bucketed metrics (the telemetry timeline).
    pub timeline: crate::timeline::TimelineData,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0u64, 1, 5, 5, 900] {
            a.record(v);
        }
        for v in [2u64, 1024, 7] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 8);
        assert_eq!(ab.min, 0);
        assert_eq!(ab.max, 1024);
        assert_eq!(ab.nonzero_buckets().len(), 6);
    }

    #[test]
    fn quantile_bound_brackets_the_sample() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_upper_bound(0.99), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        let p99 = h.quantile_upper_bound(0.99);
        assert!(
            (99..=127).contains(&p99),
            "p99 bound {p99} outside [99, 127]"
        );
        assert_eq!(h.quantile_upper_bound(1.0), 100);
        h.record(0);
        assert_eq!(h.quantile_upper_bound(0.001), 0);
    }

    #[test]
    fn stage_stat_merge_order_is_unobservable() {
        let mut x = StageStat::empty();
        x.observe(100, 3);
        x.observe(50, 9);
        let mut y = StageStat::empty();
        y.observe(10, 1);
        let mut xy = x;
        xy.merge(&y);
        let mut yx = y;
        yx.merge(&x);
        assert_eq!(xy, yx);
        assert_eq!(xy.count, 3);
        assert_eq!(xy.total_ns, 160);
        assert_eq!(xy.min_ns, 10);
        assert_eq!(xy.max_ns, 100);
        assert_eq!(xy.min_index, 1);
        assert!((xy.mean_ns() - 160.0 / 3.0).abs() < 1e-9);
    }
}
