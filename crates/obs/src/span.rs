//! Span guards and per-thread span buffers.
//!
//! A [`crate::span!`] call starts a timing span for a static path like
//! `"detect.sst"`; dropping the guard records the elapsed clock into the
//! calling thread's private buffer — no locks, no cross-thread traffic on
//! the hot path. Buffers merge into the global registry when a worker
//! flushes ([`crate::flush_thread`]) or exits (the thread-local destructor),
//! and the merge uses only the commutative ops of
//! [`StageStat::merge`](crate::metrics::StageStat::merge), so flush order —
//! i.e. thread scheduling — is unobservable in the aggregate.
//!
//! Each span additionally records into the telemetry timeline: at start it
//! captures the current window cursor
//! ([`crate::timeline::current_window`]) and the innermost span already
//! open on the same thread (its *parent*), and on drop lands a second
//! `StageStat` under `(path, parent, window)`. The parent stack is purely
//! thread-local and guards drop in LIFO scope order, so causality capture
//! costs one `Vec` push/pop and never synchronizes.

use crate::clock;
use crate::metrics::{Registry, StageStat};
use crate::timeline;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// The calling thread's span buffer. Dropping it (thread exit) flushes any
/// remaining spans into the global registry so scoped workers cannot lose
/// measurements even if they never flush explicitly.
#[derive(Default)]
struct LocalSpans {
    map: BTreeMap<&'static str, StageStat>,
    windowed: BTreeMap<(&'static str, &'static str, u64), StageStat>,
    /// Paths of spans currently open on this thread, innermost last.
    stack: Vec<&'static str>,
}

impl Drop for LocalSpans {
    fn drop(&mut self) {
        if !self.map.is_empty() || !self.windowed.is_empty() {
            crate::merge_spans(&self.map, &self.windowed);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalSpans> = RefCell::new(LocalSpans::default());
}

/// Merges and clears the calling thread's buffer into `registry`.
pub(crate) fn flush_thread_into(registry: &Mutex<Registry>) {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        if local.map.is_empty() && local.windowed.is_empty() {
            return;
        }
        let mut reg = registry.lock();
        for (path, stat) in &local.map {
            reg.spans
                .entry(path)
                .or_insert_with(StageStat::empty)
                .merge(stat);
        }
        reg.timeline.merge_spans(&local.windowed);
        local.map.clear();
        local.windowed.clear();
    });
}

/// Clears the calling thread's buffer without flushing (used by
/// [`crate::reset`]). Leaves the parent stack alone: any guards still
/// in-flight will pop their own entries on drop.
pub(crate) fn clear_thread() {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        local.map.clear();
        local.windowed.clear();
    });
}

/// An in-flight timing span; created by [`crate::span!`], recorded on drop.
/// Inert (no clock reads, no buffer writes) when recording was off at
/// creation time.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct SpanGuard {
    path: &'static str,
    parent: &'static str,
    window: u64,
    index: u64,
    start_ns: u64,
    active: bool,
}

impl SpanGuard {
    /// Starts a span (called by the [`crate::span!`] macro).
    pub fn start(path: &'static str, index: u64) -> Self {
        let active = crate::enabled();
        let (parent, window, start_ns) = if active {
            let parent = LOCAL.with(|local| {
                let mut local = local.borrow_mut();
                let parent = local.stack.last().copied().unwrap_or(timeline::ROOT);
                local.stack.push(path);
                parent
            });
            (parent, timeline::current_window(), clock::now_ns())
        } else {
            (timeline::ROOT, 0, 0)
        };
        Self {
            path,
            parent,
            window,
            index,
            start_ns,
            active,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let elapsed = clock::now_ns().saturating_sub(self.start_ns);
        LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            local.stack.pop();
            local
                .map
                .entry(self.path)
                .or_insert_with(StageStat::empty)
                .observe(elapsed, self.index);
            local
                .windowed
                .entry((self.path, self.parent, self.window))
                .or_insert_with(StageStat::empty)
                .observe(elapsed, self.index);
        });
    }
}

/// Starts a timing span for a static path, optionally tagged with an index
/// (worker or work-unit number; the merged stat keeps the lowest). Bind the
/// guard to a named local — `let _span = span!(...)` — so it spans the
/// enclosing scope.
///
/// ```
/// use funnel_obs::{names, span};
/// let _span = span!(names::SPAN_ASSESS_ITEM);
/// let _tagged = span!(names::SPAN_ASSESS_WORKER, 3);
/// ```
#[macro_export]
macro_rules! span {
    ($path:expr) => {
        $crate::span::SpanGuard::start($path, u64::MAX)
    };
    ($path:expr, $index:expr) => {
        $crate::span::SpanGuard::start($path, $index as u64)
    };
}

#[cfg(test)]
mod tests {
    use crate::clock::SimClock;
    use crate::timeline;

    #[test]
    fn nested_spans_record_hierarchically() {
        let _g = crate::test_guard();
        crate::reset();
        crate::enable();
        SimClock::install();
        timeline::set_window(42);
        {
            let _outer = span!(crate::names::SPAN_ASSESS_CHANGE);
            SimClock::advance_ns(10);
            {
                let _inner = span!(crate::names::SPAN_DETECT);
                SimClock::advance_ns(30);
            }
            SimClock::advance_ns(5);
        }
        let report = crate::snapshot();
        assert_eq!(report.spans[crate::names::SPAN_ASSESS_CHANGE].total_ns, 45);
        assert_eq!(report.spans[crate::names::SPAN_DETECT].total_ns, 30);

        let tl = crate::timeline_snapshot();
        let inner = tl.spans[&(
            crate::names::SPAN_DETECT,
            crate::names::SPAN_ASSESS_CHANGE,
            42,
        )];
        assert_eq!(inner.total_ns, 30);
        let outer = tl.spans[&(crate::names::SPAN_ASSESS_CHANGE, timeline::ROOT, 42)];
        assert_eq!(outer.total_ns, 45);
        let edges = tl.edges();
        assert_eq!(edges[&("assess.change>detect.sst".to_string(), 42)], 1);
        crate::reset();
        crate::disable();
        SimClock::uninstall();
    }
}
