//! The metric and span name registry.
//!
//! Every instrumentation site uses a constant from here — never an ad-hoc
//! string — so the full vocabulary of `obs_report.json` is enumerable at
//! compile time, greppable, and documented in one place (mirrored in
//! DESIGN.md §9). Naming convention: `<stage>.<what>` with the stage
//! prefixes `collector`, `detect`, `did`, `assess`, `supervisor`, `wal`,
//! `recover`, `reassess`, `stream`, `diag`, `timeline`, and `selfmon`.

// ------------------------------------------------------------- counters --

/// Wire frames the collector accepted into the store.
pub const FRAMES_INGESTED: &str = "collector.frames_ingested";
/// Frames that failed to decode (or carried an unknown agent) and were
/// quarantined.
pub const FRAMES_QUARANTINED: &str = "collector.frames_quarantined";
/// Frames dropped by per-agent duplicate suppression.
pub const FRAMES_DUP_SUPPRESSED: &str = "collector.frames_dup_suppressed";
/// Late frames routed to the backfill stage instead of live ingestion.
pub const FRAMES_BACKFILLED: &str = "collector.frames_backfilled";
/// Individual measurements written into historical bins by backfill.
pub const RECORDS_BACKFILLED: &str = "collector.records_backfilled";
/// Late measurements refused by backfill duplicate suppression.
pub const BACKFILL_REJECTED: &str = "collector.backfill_rejected";
/// Measurements carrying a NaN or ±Inf value, quarantined by the
/// plausibility gate before they could poison a window.
pub const RECORDS_NONFINITE: &str = "collector.records_nonfinite";
/// Measurements whose value fell implausibly far below the key's previous
/// measurement (a counter reset reported as a raw gauge), quarantined.
pub const RECORDS_COUNTER_RESET: &str = "collector.records_counter_reset";
/// Frames whose timestamps sit further ahead of the agent's watermark than
/// clock skew can explain, quarantined instead of ingested.
pub const FRAMES_CLOCK_SKEWED: &str = "collector.frames_clock_skewed";

/// Change points declared by the detector runner (before gap suppression).
pub const DETECT_CHANGE_POINTS: &str = "detect.change_points";
/// Change points suppressed for bordering a partition-length coverage gap.
pub const DETECT_GAP_SUPPRESSED: &str = "detect.gap_suppressed";

/// Control-group window fetches answered from a worker's `ControlCache`.
pub const CONTROL_CACHE_HITS: &str = "assess.control_cache_hits";
/// Control-group window fetches that had to build the window.
pub const CONTROL_CACHE_MISSES: &str = "assess.control_cache_misses";

/// Items assessed `Caused`.
pub const VERDICT_CAUSED: &str = "assess.verdict_caused";
/// Items assessed `NotCaused`.
pub const VERDICT_NOT_CAUSED: &str = "assess.verdict_not_caused";
/// Items assessed `Inconclusive` (either flavour).
pub const VERDICT_INCONCLUSIVE: &str = "assess.verdict_inconclusive";
/// Inconclusive items flagged repairable by backfill.
pub const VERDICT_AWAITING_BACKFILL: &str = "assess.verdict_awaiting_backfill";

/// Work-unit attempts the supervisor re-ran after a transient failure or a
/// caught panic (each retry follows one step of the seeded backoff
/// schedule).
pub const SUPERVISOR_RETRIES: &str = "supervisor.retries";
/// Work units quarantined after exhausting their retry budget: their
/// verdict is downgraded to `Inconclusive` instead of aborting the run.
pub const SUPERVISOR_QUARANTINED: &str = "supervisor.quarantined";
/// Work-unit attempts restarted after blowing their deadline budget.
pub const SUPERVISOR_RESTARTS: &str = "supervisor.restarts";

/// Items absorbed into the re-assessment queue.
pub const REASSESS_ABSORBED: &str = "reassess.absorbed";
/// Queued items whose window had healed when `reassess` ran.
pub const REASSESS_READY: &str = "reassess.ready";
/// Re-runs that produced a firm verdict and left the queue.
pub const REASSESS_UPGRADED: &str = "reassess.upgraded";

/// Ticks the streaming engine processed.
pub const STREAM_TICKS: &str = "stream.ticks";
/// Window scores folded by the dirty-set scheduler (one per key-minute).
pub const STREAM_SCORES: &str = "stream.scores";
/// Re-scores dropped by the deterministic shedding policy under overload.
pub const STREAM_SHED: &str = "stream.shed";
/// Work keys whose verdict was refused because their window data had gone
/// stale past the staleness watermark at assessment time.
pub const STREAM_STALE: &str = "stream.stale";
/// Change points declared by the streaming monitors.
pub const STREAM_DETECTIONS: &str = "stream.detections";
/// Item verdicts emitted on the streaming output channel.
pub const STREAM_VERDICTS: &str = "stream.verdicts";
/// Item verdicts dropped because the bounded output channel was full
/// (drop-not-block: slow consumers never stall ingest).
pub const STREAM_VERDICTS_DROPPED: &str = "stream.verdicts_dropped";
/// Late frames folded into a retained ring window via backfill.
pub const STREAM_LATE_BACKFILLED: &str = "stream.late_backfilled";
/// Late frames refused (bin already measured, or evicted past retention).
pub const STREAM_LATE_REJECTED: &str = "stream.late_rejected";

/// Diagnosis reports produced (one per diagnosed change).
pub const DIAG_REPORTS: &str = "diag.reports";
/// Items diagnosed (bias-checked and dossiered) across all reports.
pub const DIAG_ITEMS: &str = "diag.items";
/// Items whose bias check flagged a control-pool population mismatch.
pub const DIAG_POPULATION_MISMATCH: &str = "diag.population_mismatch";

/// Windowed data points written into the telemetry timeline (the
/// timeline's own cost meter — what `meta_sweep` prices).
pub const TIMELINE_RECORDS: &str = "timeline.records";

/// Timeline series the self-monitor ran the change detector over.
pub const SELFMON_SERIES: &str = "selfmon.series_checked";
/// Health alerts the self-monitor raised across all series.
pub const SELFMON_ALERTS: &str = "selfmon.alerts";

// --------------------------------------------------------------- gauges --

/// Work units enumerated for the most recent change assessment.
pub const WORK_UNITS_TOTAL: &str = "assess.work_units_total";
/// Worker threads used by the most recent change assessment.
pub const WORKERS: &str = "assess.workers";
/// Items left in the re-assessment queue after the last absorb/reassess.
pub const REASSESS_QUEUE_DEPTH: &str = "reassess.queue_depth";
/// KPI keys with live ring state in the streaming engine.
pub const STREAM_KEYS: &str = "stream.keys";
/// Total resident window memory across all rings, in accounted bytes.
pub const STREAM_WINDOW_BYTES: &str = "stream.window_bytes";
/// The timeline window cursor's most recent value (the data minute the
/// pipeline is currently attributing work to).
pub const TIMELINE_WINDOW: &str = "timeline.window";

// ----------------------------------------------------------- histograms --

/// Control-group pool size per DiD contrast (treated + control members).
pub const DID_CONTROL_POOL_SIZE: &str = "did.control_pool_size";
/// Work-unit queue depth at fan-out time, one sample per assessment.
pub const WORK_QUEUE_DEPTH: &str = "assess.work_queue_depth";
/// Size in bytes of each WAL segment at sealing time (or at recovery scan
/// for the unsealed tail segment).
pub const WAL_SEGMENT_BYTES: &str = "wal.segment_bytes";
/// Dirty-set depth at the top of each streaming tick (pre-shed).
pub const STREAM_DIRTY_DEPTH: &str = "stream.dirty_depth";
/// Scoring job-queue depth sampled as each tick fans out.
pub const STREAM_QUEUE_DEPTH: &str = "stream.queue_depth";
/// Minutes between the tick watermark and the oldest un-scored dirty
/// window at the top of each tick.
pub const STREAM_WATERMARK_LAG: &str = "stream.watermark_lag";
/// Per-retry backoff sleep lengths (milliseconds) scheduled by the
/// supervisor, one sample per retry.
pub const SUPERVISOR_BACKOFF_MS: &str = "supervisor.backoff_ms";

// ----------------------------------------------------------- span paths --

/// One whole-change assessment (enumerate → fan out → merge).
pub const SPAN_ASSESS_CHANGE: &str = "assess.change";
/// One impact-set item (detection + causality + verdict).
pub const SPAN_ASSESS_ITEM: &str = "assess.item";
/// One worker thread's lifetime inside the fan-out.
pub const SPAN_ASSESS_WORKER: &str = "assess.worker";
/// One detector run over an assessment window.
pub const SPAN_DETECT: &str = "detect.sst";
/// One DiD causality determination.
pub const SPAN_DID: &str = "did.assess";
/// One agent → collector replay.
pub const SPAN_COLLECT_REPLAY: &str = "collect.replay";
/// One re-assessment batch over healed windows.
pub const SPAN_REASSESS: &str = "reassess.run";
/// One crash-recovery replay: checkpoint restore + WAL-tail re-ingestion.
pub const SPAN_RECOVER_REPLAY: &str = "recover.replay";
/// One streaming tick (shed → score → due assessments).
pub const SPAN_STREAM_TICK: &str = "stream.tick";
/// One due-change final assessment inside a streaming tick.
pub const SPAN_STREAM_ASSESS: &str = "stream.assess";
/// One whole-change diagnosis pass (bias checks + ranking + dossiers).
pub const SPAN_DIAG_CHANGE: &str = "diag.change";
/// One self-monitoring pass (timeline series → detector → health report).
pub const SPAN_SELFMON: &str = "selfmon.run";

/// The core counters every instrumented pipeline run must populate — the
/// set the CI `obs-smoke` and `chaos-smoke` steps assert on. The
/// supervised engine seeds its three counters at zero on every run, so
/// they appear in the report even when no fault ever fires.
pub const CORE_COUNTERS: &[&str] = &[
    FRAMES_INGESTED,
    DETECT_CHANGE_POINTS,
    CONTROL_CACHE_HITS,
    CONTROL_CACHE_MISSES,
    VERDICT_CAUSED,
    VERDICT_NOT_CAUSED,
    SUPERVISOR_RETRIES,
    SUPERVISOR_QUARANTINED,
    SUPERVISOR_RESTARTS,
];

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_unique_and_well_formed() {
        let all = [
            super::FRAMES_INGESTED,
            super::FRAMES_QUARANTINED,
            super::FRAMES_DUP_SUPPRESSED,
            super::FRAMES_BACKFILLED,
            super::RECORDS_BACKFILLED,
            super::BACKFILL_REJECTED,
            super::RECORDS_NONFINITE,
            super::RECORDS_COUNTER_RESET,
            super::FRAMES_CLOCK_SKEWED,
            super::DETECT_CHANGE_POINTS,
            super::DETECT_GAP_SUPPRESSED,
            super::CONTROL_CACHE_HITS,
            super::CONTROL_CACHE_MISSES,
            super::VERDICT_CAUSED,
            super::VERDICT_NOT_CAUSED,
            super::VERDICT_INCONCLUSIVE,
            super::VERDICT_AWAITING_BACKFILL,
            super::SUPERVISOR_RETRIES,
            super::SUPERVISOR_QUARANTINED,
            super::SUPERVISOR_RESTARTS,
            super::REASSESS_ABSORBED,
            super::REASSESS_READY,
            super::REASSESS_UPGRADED,
            super::STREAM_TICKS,
            super::STREAM_SCORES,
            super::STREAM_SHED,
            super::STREAM_STALE,
            super::STREAM_DETECTIONS,
            super::STREAM_VERDICTS,
            super::STREAM_VERDICTS_DROPPED,
            super::STREAM_LATE_BACKFILLED,
            super::STREAM_LATE_REJECTED,
            super::DIAG_REPORTS,
            super::DIAG_ITEMS,
            super::DIAG_POPULATION_MISMATCH,
            super::TIMELINE_RECORDS,
            super::SELFMON_SERIES,
            super::SELFMON_ALERTS,
            super::WORK_UNITS_TOTAL,
            super::WORKERS,
            super::REASSESS_QUEUE_DEPTH,
            super::STREAM_KEYS,
            super::STREAM_WINDOW_BYTES,
            super::TIMELINE_WINDOW,
            super::DID_CONTROL_POOL_SIZE,
            super::WORK_QUEUE_DEPTH,
            super::WAL_SEGMENT_BYTES,
            super::STREAM_DIRTY_DEPTH,
            super::STREAM_QUEUE_DEPTH,
            super::STREAM_WATERMARK_LAG,
            super::SUPERVISOR_BACKOFF_MS,
            super::SPAN_ASSESS_CHANGE,
            super::SPAN_ASSESS_ITEM,
            super::SPAN_ASSESS_WORKER,
            super::SPAN_DETECT,
            super::SPAN_DID,
            super::SPAN_COLLECT_REPLAY,
            super::SPAN_REASSESS,
            super::SPAN_RECOVER_REPLAY,
            super::SPAN_STREAM_TICK,
            super::SPAN_STREAM_ASSESS,
            super::SPAN_DIAG_CHANGE,
            super::SPAN_SELFMON,
        ];
        let unique: std::collections::BTreeSet<&str> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "duplicate metric name");
        for name in all {
            assert!(
                name.contains('.')
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "malformed name {name:?}"
            );
        }
    }
}
