//! The observability report: a frozen snapshot serialized as sorted JSON
//! plus a human-readable stage summary.
//!
//! The JSON printer is hand-rolled over `BTreeMap` iteration, so two
//! snapshots with the same recorded data are byte-identical regardless of
//! thread count, flush order, or platform — the same key-ordering
//! discipline the operator reports follow. Timing *values* are only
//! deterministic under the [`SimClock`](crate::clock::SimClock); counters
//! and histograms of deterministic quantities are byte-stable outright.

use crate::metrics::{Histogram, Registry, StageStat};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// The default report path the examples, CLI, and sweep benches write to.
pub const DEFAULT_PATH: &str = "results/obs_report.json";

/// Schema version stamped into every report.
pub const SCHEMA_VERSION: u32 = 1;

/// A frozen copy of everything recorded: obtain via [`crate::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Merged span stats by span path.
    pub spans: BTreeMap<&'static str, StageStat>,
}

impl ObsReport {
    pub(crate) fn from_registry(reg: &Registry) -> Self {
        Self {
            counters: reg.counters.clone(),
            gauges: reg.gauges.clone(),
            histograms: reg.histograms.clone(),
            spans: reg.spans.clone(),
        }
    }

    /// Serializes the report as JSON with byte-stable key ordering: fixed
    /// top-level section order, names in `BTreeMap` (lexicographic) order,
    /// histogram buckets as ascending `[bucket, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema_version\": ");
        let _ = write!(out, "{SCHEMA_VERSION}");
        out.push_str(",\n  \"counters\": {");
        write_u64_map(&mut out, &self.counters);
        out.push_str(",\n  \"gauges\": {");
        write_u64_map(&mut out, &self.gauges);
        out.push_str(",\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"buckets\": [",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max
            );
            for (i, (bucket, count)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{bucket}, {count}]");
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        out.push_str(",\n  \"spans\": {");
        first = true;
        for (path, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{path}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"min_index\": ",
                s.count,
                s.total_ns,
                if s.count == 0 { 0 } else { s.min_ns },
                s.max_ns,
            );
            if s.min_index == u64::MAX {
                out.push_str("null}");
            } else {
                let _ = write!(out, "{}}}", s.min_index);
            }
        }
        out.push_str(if self.spans.is_empty() { "}" } else { "\n  }" });
        out.push_str("\n}\n");
        out
    }

    /// A human-readable stage-timing and counter summary (what the CI
    /// `obs-smoke` step prints into the log).
    pub fn human_summary(&self) -> String {
        let mut out = String::from("observability report\n");
        if !self.spans.is_empty() {
            out.push_str("  stage timings:\n");
            // Heaviest stages first; ties broken by path so the listing is
            // reproducible for deterministic (sim-clock) timings.
            let mut spans: Vec<_> = self.spans.iter().collect();
            spans.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
            for (path, s) in spans {
                let _ = writeln!(
                    out,
                    "    {path:<22} {:>9} calls  total {:>10.3} ms  mean {:>9.1} us",
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.mean_ns() / 1e3
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "    {name:<38} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("  gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "    {name:<38} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {name:<38} n={} mean={:.1} min={} max={}",
                    h.count,
                    h.mean(),
                    if h.count == 0 { 0 } else { h.min },
                    h.max
                );
            }
        }
        out
    }

    /// Writes the JSON form to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// Snapshots and writes [`DEFAULT_PATH`] if recording is enabled, returning
/// the report for printing. The one-call helper binaries use at exit.
///
/// # Errors
///
/// Propagates filesystem failures from the write.
pub fn write_default_if_enabled() -> std::io::Result<Option<ObsReport>> {
    if !crate::enabled() {
        return Ok(None);
    }
    let report = crate::snapshot();
    report.write_json(DEFAULT_PATH)?;
    Ok(Some(report))
}

fn write_u64_map(out: &mut String, map: &BTreeMap<&'static str, u64>) {
    let mut first = true;
    for (name, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{name}\": {v}");
    }
    out.push_str(if map.is_empty() { "}" } else { "\n  }" });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ObsReport {
        let mut counters = BTreeMap::new();
        counters.insert(crate::names::FRAMES_INGESTED, 42u64);
        counters.insert(crate::names::VERDICT_CAUSED, 3u64);
        let mut gauges = BTreeMap::new();
        gauges.insert(crate::names::WORK_UNITS_TOTAL, 115u64);
        let mut h = Histogram::new();
        h.record(4);
        h.record(4);
        h.record(0);
        let mut histograms = BTreeMap::new();
        histograms.insert(crate::names::DID_CONTROL_POOL_SIZE, h);
        let mut s = StageStat::empty();
        s.observe(1500, 0);
        s.observe(500, 2);
        let mut spans = BTreeMap::new();
        spans.insert(crate::names::SPAN_ASSESS_ITEM, s);
        ObsReport {
            counters,
            gauges,
            histograms,
            spans,
        }
    }

    #[test]
    fn json_is_byte_stable_and_parses() {
        let report = sample_report();
        let a = report.to_json();
        let b = report.clone().to_json();
        assert_eq!(a, b, "same data must serialize byte-identically");
        // The shim serde_json round-trips it, proving well-formedness.
        let value: serde::Value = serde_json::from_str(&a).expect("report JSON parses");
        let serde::Value::Object(top) = &value else {
            panic!("top level must be an object");
        };
        let keys: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema_version",
                "counters",
                "gauges",
                "histograms",
                "spans"
            ]
        );
    }

    #[test]
    fn counters_serialize_in_name_order() {
        let json = sample_report().to_json();
        let caused = json.find(crate::names::VERDICT_CAUSED).expect("caused");
        let frames = json.find(crate::names::FRAMES_INGESTED).expect("frames");
        assert!(
            caused < frames,
            "BTreeMap order: assess.* before collector.*"
        );
    }

    #[test]
    fn empty_report_serializes_cleanly() {
        let report = ObsReport {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: BTreeMap::new(),
        };
        let json = report.to_json();
        let _: serde::Value = serde_json::from_str(&json).expect("empty report parses");
        assert!(report.human_summary().starts_with("observability report"));
    }

    #[test]
    fn human_summary_lists_heaviest_stage_first() {
        let mut report = sample_report();
        let mut fast = StageStat::empty();
        fast.observe(10, u64::MAX);
        report.spans.insert(crate::names::SPAN_DETECT, fast);
        let summary = report.human_summary();
        let item = summary.find(crate::names::SPAN_ASSESS_ITEM).expect("item");
        let detect = summary.find(crate::names::SPAN_DETECT).expect("detect");
        assert!(item < detect, "heavier stage must print first");
    }
}
