//! Observability for the FUNNEL pipeline: spans, metrics, profiling hooks.
//!
//! The assessment pipeline is gated by `funnel-lint` to be bit-deterministic
//! — no wall clock, no hashed iteration, no panics on the ingestion-to-
//! verdict path. That makes it trustworthy and *opaque*: nothing says where
//! wall-clock goes between ingest, detection, DiD, and merge, how often the
//! control cache hits, or how many frames each fault path quarantines. This
//! crate is the write-only side channel that answers those questions without
//! compromising the determinism contract:
//!
//! * **Spans** — [`span!`] guards record hierarchical stage timings into
//!   per-thread buffers. Buffers merge into one global `BTreeMap` keyed by
//!   span path with commutative ops only (sums, min/max, lowest-index-wins
//!   on ties — the same discipline as `funnel_core::parallel::merge`), so
//!   the aggregate never depends on thread scheduling.
//! * **Metrics** — named counters, gauges, and fixed log2-bucket
//!   [`Histogram`]s in a [`names`] registry. Snapshots
//!   serialize with byte-stable key ordering.
//! * **Clock** — a [`Clock`](clock::Clock) trait with a deterministic
//!   [`SimClock`](clock::SimClock) for tests and a monotonic
//!   [`WallClock`](clock::WallClock) behind the workspace's single
//!   lint-suppressed `Instant::now` choke point.
//! * **Reports** — [`ObsReport`]: sorted JSON plus a
//!   human summary, opt-in via the `FUNNEL_OBS` env var
//!   ([`init_from_env`]).
//!
//! Instrumentation is **write-only and zero-cost when disabled**: every
//! entry point consults one relaxed atomic and the no-op arm of the
//! [`Recorder`] enum returns immediately. Nothing recorded here is ever read
//! back by the pipeline, so verdicts stay byte-identical with observability
//! on or off, at any worker count (proved by
//! `crates/core/tests/obs_determinism.rs`).

#![forbid(unsafe_code)]

pub mod clock;
pub mod metrics;
pub mod names;
pub mod report;
pub mod span;
pub mod timeline;
pub mod trace;

use metrics::{Histogram, Registry, StageStat};
use parking_lot::Mutex;
use report::ObsReport;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use timeline::TimelineReport;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Whether recording is currently on. One relaxed load — this is the whole
/// cost of every instrumentation site while observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on. Instrumentation sites start accumulating from here.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears everything recorded so far (including the calling thread's span
/// buffer, the timeline, and the window cursor). The enabled flag is left
/// as-is.
pub fn reset() {
    span::clear_thread();
    timeline::reset_window();
    *registry().lock() = Registry::default();
}

/// Enables recording iff the `FUNNEL_OBS` env var is set to a truthy value
/// (anything except empty or `"0"`). Returns whether recording is now on.
/// This is the opt-in used by the examples, the CLI, and the sweep benches.
pub fn init_from_env() -> bool {
    let on = matches!(std::env::var("FUNNEL_OBS"), Ok(v) if !v.is_empty() && v != "0");
    if on {
        enable();
    }
    on
}

/// The enum-dispatch recorder: the `Noop` arm is what instrumentation costs
/// when observability is off. Obtain one per call site via [`recorder`].
#[derive(Clone, Copy)]
pub enum Recorder {
    /// Recording off: every method returns immediately.
    Noop,
    /// Recording on: methods write into the global registry.
    Active(&'static Mutex<Registry>),
}

/// Returns the live recorder ([`Recorder::Active`]) when enabled, the no-op
/// otherwise.
#[inline]
pub fn recorder() -> Recorder {
    if enabled() {
        Recorder::Active(registry())
    } else {
        Recorder::Noop
    }
}

impl Recorder {
    /// Adds `n` to the counter `name`.
    #[inline]
    pub fn add(self, name: &'static str, n: u64) {
        if let Recorder::Active(reg) = self {
            *reg.lock().counters.entry(name).or_insert(0) += n;
        }
    }

    /// Sets the gauge `name` to `v` (last write wins).
    #[inline]
    pub fn gauge(self, name: &'static str, v: u64) {
        if let Recorder::Active(reg) = self {
            reg.lock().gauges.insert(name, v);
        }
    }

    /// Records `v` into the log2-bucket histogram `name`.
    #[inline]
    pub fn observe(self, name: &'static str, v: u64) {
        if let Recorder::Active(reg) = self {
            reg.lock()
                .histograms
                .entry(name)
                .or_insert_with(Histogram::new)
                .record(v);
        }
    }

    /// Adds `n` to the counter `name` in timeline window `window`, and to
    /// the plain (aggregate) counter — one lock for both.
    #[inline]
    pub fn add_windowed(self, name: &'static str, window: u64, n: u64) {
        if let Recorder::Active(reg) = self {
            let mut reg = reg.lock();
            *reg.counters.entry(name).or_insert(0) += n;
            *reg.timeline.counters.entry((name, window)).or_insert(0) += n;
            *reg.counters.entry(names::TIMELINE_RECORDS).or_insert(0) += 1;
        }
    }

    /// Sets the gauge `name` for window `window` (max-wins within the
    /// window — a last-write rule would leak thread scheduling into the
    /// bytes) and last-write-wins into the plain gauge.
    #[inline]
    pub fn gauge_windowed(self, name: &'static str, window: u64, v: u64) {
        if let Recorder::Active(reg) = self {
            let mut reg = reg.lock();
            reg.gauges.insert(name, v);
            let slot = reg.timeline.gauges.entry((name, window)).or_insert(0);
            *slot = (*slot).max(v);
            *reg.counters.entry(names::TIMELINE_RECORDS).or_insert(0) += 1;
        }
    }

    /// Records `v` into the histogram `name` for window `window` and into
    /// the plain histogram.
    #[inline]
    pub fn observe_windowed(self, name: &'static str, window: u64, v: u64) {
        if let Recorder::Active(reg) = self {
            let mut reg = reg.lock();
            reg.histograms
                .entry(name)
                .or_insert_with(Histogram::new)
                .record(v);
            reg.timeline
                .histograms
                .entry((name, window))
                .or_insert_with(Histogram::new)
                .record(v);
            *reg.counters.entry(names::TIMELINE_RECORDS).or_insert(0) += 1;
        }
    }
}

/// Adds `n` to the counter `name` (no-op while disabled).
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    recorder().add(name, n);
}

/// Sets the gauge `name` to `v` (no-op while disabled).
#[inline]
pub fn gauge_set(name: &'static str, v: u64) {
    recorder().gauge(name, v);
}

/// Records `v` into the histogram `name` (no-op while disabled).
#[inline]
pub fn histogram_record(name: &'static str, v: u64) {
    recorder().observe(name, v);
}

/// Adds `n` to the counter `name` both in aggregate and in timeline window
/// `window` (no-op while disabled). Pass the event's own data minute — the
/// decoded frame minute, the change minute, the tick minute — so
/// attribution is independent of thread interleaving.
#[inline]
pub fn timeline_counter_add(name: &'static str, window: u64, n: u64) {
    recorder().add_windowed(name, window, n);
}

/// Sets the gauge `name` for timeline window `window` (max-wins within the
/// window) and in aggregate (no-op while disabled).
#[inline]
pub fn timeline_gauge_set(name: &'static str, window: u64, v: u64) {
    recorder().gauge_windowed(name, window, v);
}

/// Records `v` into the histogram `name` both in aggregate and in timeline
/// window `window` (no-op while disabled).
#[inline]
pub fn timeline_histogram_record(name: &'static str, window: u64, v: u64) {
    recorder().observe_windowed(name, window, v);
}

/// Merges the calling thread's span buffer into the global registry. Worker
/// threads call this before exiting (the thread-local destructor is the
/// fallback); [`snapshot`] calls it for the current thread.
pub fn flush_thread() {
    span::flush_thread_into(registry());
}

pub(crate) fn merge_spans(
    spans: &std::collections::BTreeMap<&'static str, StageStat>,
    windowed: &std::collections::BTreeMap<(&'static str, &'static str, u64), StageStat>,
) {
    let mut reg = registry().lock();
    for (path, stat) in spans {
        reg.spans
            .entry(path)
            .or_insert_with(StageStat::empty)
            .merge(stat);
    }
    reg.timeline.merge_spans(windowed);
}

/// Freezes everything recorded so far into an [`ObsReport`] (flushing the
/// calling thread's span buffer first).
pub fn snapshot() -> ObsReport {
    flush_thread();
    ObsReport::from_registry(&registry().lock())
}

/// Freezes the telemetry timeline recorded so far into a
/// [`TimelineReport`] (flushing the calling thread's span buffer first).
pub fn timeline_snapshot() -> TimelineReport {
    flush_thread();
    TimelineReport::from_data(&registry().lock().timeline)
}

// The registry and clock mode are process-wide; tests that touch them
// serialize on this lock so `cargo test`'s parallel runner cannot
// interleave them.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_guard as global_guard;

    #[test]
    fn disabled_recorder_is_noop() {
        let _g = global_guard();
        disable();
        reset();
        counter_add(names::FRAMES_INGESTED, 5);
        histogram_record(names::DID_CONTROL_POOL_SIZE, 4);
        gauge_set(names::WORK_UNITS_TOTAL, 9);
        {
            let _span = span!(names::SPAN_ASSESS_ITEM);
        }
        let report = snapshot();
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.histograms.is_empty());
        assert!(report.spans.is_empty());
    }

    #[test]
    fn enabled_recorder_accumulates_and_resets() {
        let _g = global_guard();
        reset();
        enable();
        clock::SimClock::install();
        counter_add(names::FRAMES_INGESTED, 2);
        counter_add(names::FRAMES_INGESTED, 3);
        gauge_set(names::WORK_UNITS_TOTAL, 7);
        histogram_record(names::DID_CONTROL_POOL_SIZE, 3);
        {
            let _span = span!(names::SPAN_ASSESS_ITEM, 4);
            clock::SimClock::advance_ns(250);
        }
        {
            let _span = span!(names::SPAN_ASSESS_ITEM, 2);
            clock::SimClock::advance_ns(750);
        }
        let report = snapshot();
        assert_eq!(report.counters[names::FRAMES_INGESTED], 5);
        assert_eq!(report.gauges[names::WORK_UNITS_TOTAL], 7);
        assert_eq!(report.histograms[names::DID_CONTROL_POOL_SIZE].count, 1);
        let stat = &report.spans[names::SPAN_ASSESS_ITEM];
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_ns, 1000);
        assert_eq!(stat.min_ns, 250);
        assert_eq!(stat.max_ns, 750);
        assert_eq!(stat.min_index, 2, "lowest index wins on merge");
        reset();
        disable();
        clock::SimClock::uninstall();
        assert!(snapshot().counters.is_empty());
    }

    #[test]
    fn cross_thread_span_buffers_merge_deterministically() {
        let _g = global_guard();
        reset();
        enable();
        clock::SimClock::install();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                scope.spawn(move || {
                    for _ in 0..3 {
                        let _span = span!(names::SPAN_ASSESS_WORKER, worker);
                    }
                    flush_thread();
                });
            }
        });
        let report = snapshot();
        let stat = &report.spans[names::SPAN_ASSESS_WORKER];
        assert_eq!(stat.count, 12);
        assert_eq!(stat.min_index, 0, "merge keeps the lowest worker index");
        reset();
        disable();
        clock::SimClock::uninstall();
    }
}
