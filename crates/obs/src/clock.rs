//! The profiling clock: deterministic sim time for tests, monotonic wall
//! time for real profiling — behind the workspace's single lint-suppressed
//! clock choke point.
//!
//! `funnel-lint`'s `nondeterministic-time` rule denies `Instant::now()`
//! everywhere outside `crates/bench/` and `crates/eval/src/timing.rs`, so a
//! timing facility for the pipeline itself needs exactly one sanctioned
//! reading site. The private `wall_ns` is that site: every span measurement
//! funnels
//! through it, and swapping in the [`SimClock`] (a plain atomic counter the
//! test advances by hand) removes the wall clock from the picture entirely —
//! which is how the span-merge tests stay bit-deterministic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static SIM_MODE: AtomicBool = AtomicBool::new(false);
static SIM_NOW_NS: AtomicU64 = AtomicU64::new(0);

/// A monotonic nanosecond clock.
pub trait Clock {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock. All readings share one process-wide epoch so
/// they are comparable across threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        wall_ns()
    }
}

/// Deterministic test clock: a global counter advanced explicitly. While
/// [`SimClock::install`]ed, every span duration is a pure function of the
/// test's `advance_ns` calls — no wall-clock reads happen at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock;

impl SimClock {
    /// Switches the global clock to sim time, starting from 0.
    pub fn install() {
        SIM_NOW_NS.store(0, Ordering::Relaxed);
        SIM_MODE.store(true, Ordering::Relaxed);
    }

    /// Switches the global clock back to wall time.
    pub fn uninstall() {
        SIM_MODE.store(false, Ordering::Relaxed);
    }

    /// Moves sim time forward by `ns` nanoseconds.
    pub fn advance_ns(ns: u64) {
        SIM_NOW_NS.fetch_add(ns, Ordering::Relaxed);
    }

    /// Sets sim time to an absolute value.
    pub fn set_ns(ns: u64) {
        SIM_NOW_NS.store(ns, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now_ns(&self) -> u64 {
        SIM_NOW_NS.load(Ordering::Relaxed)
    }
}

/// The globally-selected clock: sim time when a [`SimClock`] is installed,
/// wall time otherwise. Span guards read this.
#[inline]
pub fn now_ns() -> u64 {
    if SIM_MODE.load(Ordering::Relaxed) {
        SIM_NOW_NS.load(Ordering::Relaxed)
    } else {
        wall_ns()
    }
}

/// Nanoseconds since the first reading — the workspace's only wall-clock
/// read outside the bench/eval timing exemptions. Keeping it to one line
/// keeps the `nondeterministic-time` suppression surface to one entry, and
/// nothing computed from it ever flows back into assessment verdicts (the
/// obs registry is write-only from the pipeline's point of view).
fn wall_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // funnel-lint: allow(nondeterministic-time): the documented Clock choke point — profiling only, never read by scoring
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let a = WallClock.now_ns();
        let b = WallClock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_is_deterministic() {
        let _g = crate::test_guard();
        SimClock::install();
        assert_eq!(now_ns(), 0);
        SimClock::advance_ns(40);
        SimClock::advance_ns(2);
        assert_eq!(now_ns(), 42);
        assert_eq!(SimClock.now_ns(), 42);
        SimClock::set_ns(7);
        assert_eq!(now_ns(), 7);
        SimClock::uninstall();
    }
}
