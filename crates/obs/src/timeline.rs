//! The telemetry timeline: every metric, bucketed into fixed one-minute
//! windows.
//!
//! The end-of-run [`ObsReport`](crate::report::ObsReport) answers *how
//! much* — total frames, total sheds, total span time. It cannot answer
//! *when*: when ingest degraded, when shedding kicked in, when a worker
//! stalled. The timeline is the when-axis: a second registry keyed by
//! `(name, window)` where a window is an absolute data minute (the frame's
//! minute for collector counters, the change minute for assessment
//! counters, the tick minute for streaming counters).
//!
//! Two attribution modes, chosen per call site:
//!
//! * **Explicit window** — [`crate::timeline_counter_add`] and friends take
//!   the window as an argument. Used wherever the instrumented event
//!   carries its own data minute (a decoded frame, a tick, a change).
//!   Because windowed merges are commutative sums / max-wins / histogram
//!   folds over `BTreeMap`s, attribution is byte-deterministic no matter
//!   how shard or worker threads interleave.
//! * **Window cursor** — [`set_window`] pins a process-wide current window
//!   (the change minute at batch fan-out, the tick minute in streaming);
//!   [`crate::span!`] guards capture it at start so span timings land in
//!   the window whose work they measure. The cursor is only written at
//!   single-threaded choke points (tick top, assessment entry), never from
//!   inside a fan-out, so every worker reads the same value.
//!
//! The serialized form ([`TimelineReport::to_json`]) follows the same
//! sorted-key, hand-rolled discipline as the obs report: same recorded
//! data ⇒ same bytes, at any worker count. Timing *values* are only
//! deterministic under the [`SimClock`](crate::clock::SimClock); counters
//! gauges, and histograms of deterministic quantities are byte-stable
//! outright (proved by `crates/core/tests/timeline_determinism.rs`).

use crate::metrics::{Histogram, StageStat};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema version stamped into every timeline report.
pub const SCHEMA_VERSION: u32 = 1;

/// Window width. Fixed at one minute — the paper's KPI bin size — so
/// timeline windows align 1:1 with `MinuteBin`s and selfmon can feed them
/// straight back into the detector.
pub const WINDOW_MINUTES: u64 = 1;

/// The default timeline path the examples and sweeps write to.
pub const DEFAULT_TIMELINE_PATH: &str = "results/obs_timeline.json";

/// Parent label for spans opened with no enclosing span on the thread.
pub const ROOT: &str = "";

static WINDOW: AtomicU64 = AtomicU64::new(0);

/// Pins the process-wide window cursor to `minute`. Call only from
/// single-threaded choke points (the top of a streaming tick, the entry of
/// a change assessment) so every worker inside the subsequent fan-out
/// attributes to the same window.
pub fn set_window(minute: u64) {
    WINDOW.store(minute, Ordering::Relaxed);
    crate::gauge_set(crate::names::TIMELINE_WINDOW, minute);
}

/// The current window cursor (0 until anyone calls [`set_window`]).
#[inline]
pub fn current_window() -> u64 {
    WINDOW.load(Ordering::Relaxed)
}

/// Returns the cursor to its boot value (used by [`crate::reset`]).
pub(crate) fn reset_window() {
    WINDOW.store(0, Ordering::Relaxed);
}

/// Window-keyed metric storage inside the global registry. All maps are
/// `BTreeMap`s over `(name, window)` (spans add the parent path), merged
/// with commutative ops only — sums for counters, max-wins for gauges,
/// histogram folds, [`StageStat::merge`] for spans — so thread
/// interleaving is unobservable in the aggregate.
#[derive(Debug, Default, Clone)]
pub struct TimelineData {
    /// Windowed monotonic counters.
    pub counters: BTreeMap<(&'static str, u64), u64>,
    /// Windowed gauges. Max-wins within a window (a last-write rule would
    /// leak worker scheduling into the bytes).
    pub gauges: BTreeMap<(&'static str, u64), u64>,
    /// Windowed log2-bucket histograms.
    pub histograms: BTreeMap<(&'static str, u64), Histogram>,
    /// Windowed span stats keyed `(path, parent, window)` — the parent is
    /// the span open on the same thread when this one started, [`ROOT`]
    /// when none was.
    pub spans: BTreeMap<(&'static str, &'static str, u64), StageStat>,
}

impl TimelineData {
    pub(crate) fn merge_spans(
        &mut self,
        other: &BTreeMap<(&'static str, &'static str, u64), StageStat>,
    ) {
        for (key, stat) in other {
            self.spans
                .entry(*key)
                .or_insert_with(StageStat::empty)
                .merge(stat);
        }
    }
}

/// A frozen timeline: obtain via [`crate::timeline_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// Window width in minutes (always [`WINDOW_MINUTES`] today).
    pub window_minutes: u64,
    /// Windowed counters.
    pub counters: BTreeMap<(&'static str, u64), u64>,
    /// Windowed max-wins gauges.
    pub gauges: BTreeMap<(&'static str, u64), u64>,
    /// Windowed histograms.
    pub histograms: BTreeMap<(&'static str, u64), Histogram>,
    /// Windowed span stats keyed `(path, parent, window)`.
    pub spans: BTreeMap<(&'static str, &'static str, u64), StageStat>,
}

impl TimelineReport {
    pub(crate) fn from_data(data: &TimelineData) -> Self {
        Self {
            window_minutes: WINDOW_MINUTES,
            counters: data.counters.clone(),
            gauges: data.gauges.clone(),
            histograms: data.histograms.clone(),
            spans: data.spans.clone(),
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Total windowed data points across all sections.
    pub fn records(&self) -> u64 {
        (self.counters.len() + self.gauges.len() + self.histograms.len() + self.spans.len()) as u64
    }

    /// Distinct windows carrying at least one data point.
    pub fn windows(&self) -> u64 {
        let mut seen = std::collections::BTreeSet::new();
        seen.extend(self.counters.keys().map(|(_, w)| *w));
        seen.extend(self.gauges.keys().map(|(_, w)| *w));
        seen.extend(self.histograms.keys().map(|(_, w)| *w));
        seen.extend(self.spans.keys().map(|(_, _, w)| *w));
        seen.len() as u64
    }

    /// The sub-timeline whose names start with any of `prefixes` (span
    /// entries filter on the span path). Used to compare the *shared*
    /// vocabulary across execution modes — e.g. `collector.*` is produced
    /// identically by the batch and streaming paths, while `stream.*`
    /// exists only in one of them.
    pub fn restrict_to(&self, prefixes: &[&str]) -> TimelineReport {
        let keep = |name: &str| prefixes.iter().any(|p| name.starts_with(p));
        TimelineReport {
            window_minutes: self.window_minutes,
            counters: self
                .counters
                .iter()
                .filter(|((n, _), _)| keep(n))
                .map(|(k, v)| (*k, *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|((n, _), _)| keep(n))
                .map(|(k, v)| (*k, *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|((n, _), _)| keep(n))
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            spans: self
                .spans
                .iter()
                .filter(|((p, _, _), _)| keep(p))
                .map(|(k, v)| (*k, *v))
                .collect(),
        }
    }

    /// One counter's `(window, value)` pairs in ascending window order.
    pub fn counter_series(&self, name: &str) -> Vec<(u64, u64)> {
        self.counters
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|((_, w), v)| (*w, *v))
            .collect()
    }

    /// Span stats per `(path, window)`, aggregated over parents — the view
    /// the `spans` JSON section and the trace exporter use.
    pub fn spans_by_window(&self) -> BTreeMap<(&'static str, u64), StageStat> {
        let mut out: BTreeMap<(&'static str, u64), StageStat> = BTreeMap::new();
        for ((path, _, window), stat) in &self.spans {
            out.entry((path, *window))
                .or_insert_with(StageStat::empty)
                .merge(stat);
        }
        out
    }

    /// Parent→child span activation counts per window, keyed
    /// `"parent>child"`. Root spans (no parent) are omitted.
    pub fn edges(&self) -> BTreeMap<(String, u64), u64> {
        let mut out: BTreeMap<(String, u64), u64> = BTreeMap::new();
        for ((path, parent, window), stat) in &self.spans {
            if parent.is_empty() {
                continue;
            }
            *out.entry((format!("{parent}>{path}"), *window))
                .or_insert(0) += stat.count;
        }
        out
    }

    /// Serializes the timeline as JSON with byte-stable ordering: fixed
    /// section order, names and windows in `BTreeMap` (lexicographic,
    /// ascending-window) order, every series as `[window, value]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema_version\": ");
        let _ = write!(out, "{SCHEMA_VERSION}");
        let _ = write!(out, ",\n  \"window_minutes\": {}", self.window_minutes);

        out.push_str(",\n  \"counters\": {");
        write_windowed_u64(&mut out, self.counters.iter().map(|(k, v)| (*k, *v)));
        out.push_str(",\n  \"gauges\": {");
        write_windowed_u64(&mut out, self.gauges.iter().map(|(k, v)| (*k, *v)));

        out.push_str(",\n  \"histograms\": {");
        let mut grouped = GroupWriter::new(&mut out);
        for ((name, window), h) in &self.histograms {
            grouped.entry(name, *window, |out| {
                let _ = write!(
                    out,
                    "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p99\": {}}}",
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max,
                    h.quantile_upper_bound(0.99),
                );
            });
        }
        grouped.finish();

        out.push_str(",\n  \"spans\": {");
        let spans = self.spans_by_window();
        let mut grouped = GroupWriter::new(&mut out);
        for ((path, window), s) in &spans {
            grouped.entry(path, *window, |out| {
                let _ = write!(
                    out,
                    "{{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                    s.count,
                    s.total_ns,
                    if s.count == 0 { 0 } else { s.min_ns },
                    s.max_ns,
                );
            });
        }
        grouped.finish();

        out.push_str(",\n  \"edges\": {");
        let edges = self.edges();
        let mut grouped = GroupWriter::new(&mut out);
        for ((edge, window), count) in &edges {
            grouped.entry(edge, *window, |out| {
                let _ = write!(out, "{count}");
            });
        }
        grouped.finish();

        out.push_str("\n}\n");
        out
    }

    /// Writes the JSON form to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// Streams `"name": [[w, v], ...]` groups from `(name, window)`-sorted
/// input without materializing intermediate maps.
struct GroupWriter<'a> {
    out: &'a mut String,
    current: Option<String>,
    any: bool,
}

impl<'a> GroupWriter<'a> {
    fn new(out: &'a mut String) -> Self {
        Self {
            out,
            current: None,
            any: false,
        }
    }

    fn entry(&mut self, name: &str, window: u64, write_value: impl FnOnce(&mut String)) {
        if self.current.as_deref() != Some(name) {
            if self.current.is_some() {
                self.out.push(']');
            }
            if self.any {
                self.out.push(',');
            }
            self.any = true;
            let _ = write!(self.out, "\n    \"{name}\": [");
            self.current = Some(name.to_string());
        } else {
            self.out.push_str(", ");
        }
        let _ = write!(self.out, "[{window}, ");
        write_value(self.out);
        self.out.push(']');
    }

    fn finish(self) {
        if self.current.is_some() {
            self.out.push(']');
        }
        self.out.push_str(if self.any { "\n  }" } else { "}" });
    }
}

fn write_windowed_u64(out: &mut String, entries: impl Iterator<Item = ((&'static str, u64), u64)>) {
    let mut grouped = GroupWriter::new(out);
    for ((name, window), v) in entries {
        grouped.entry(name, window, |out| {
            let _ = write!(out, "{v}");
        });
    }
    grouped.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimelineReport {
        let mut data = TimelineData::default();
        data.counters.insert((crate::names::FRAMES_INGESTED, 3), 6);
        data.counters.insert((crate::names::FRAMES_INGESTED, 1), 6);
        data.counters.insert((crate::names::STREAM_SHED, 2), 1);
        data.gauges.insert((crate::names::STREAM_KEYS, 2), 9);
        let mut h = Histogram::new();
        h.record(900);
        data.histograms
            .insert((crate::names::STREAM_DIRTY_DEPTH, 2), h);
        let mut s = StageStat::empty();
        s.observe(1000, 3);
        data.spans.insert(
            (
                crate::names::SPAN_ASSESS_ITEM,
                crate::names::SPAN_ASSESS_CHANGE,
                5,
            ),
            s,
        );
        data.spans
            .insert((crate::names::SPAN_ASSESS_CHANGE, ROOT, 5), s);
        TimelineReport::from_data(&data)
    }

    #[test]
    fn json_is_byte_stable_and_parses() {
        let report = sample();
        let json = report.to_json();
        assert_eq!(json, report.clone().to_json());
        let value: serde::Value = serde_json::from_str(&json).expect("timeline JSON parses");
        let top = value.as_object().expect("top level object");
        let keys: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema_version",
                "window_minutes",
                "counters",
                "gauges",
                "histograms",
                "spans",
                "edges"
            ]
        );
        assert_eq!(
            serde::find_field(top, "schema_version"),
            Some(&serde::Value::Num(serde::Number::U(1)))
        );
        assert_eq!(
            serde::find_field(top, "window_minutes"),
            Some(&serde::Value::Num(serde::Number::U(1)))
        );
    }

    #[test]
    fn counter_series_is_window_sorted() {
        let report = sample();
        assert_eq!(
            report.counter_series(crate::names::FRAMES_INGESTED),
            vec![(1, 6), (3, 6)]
        );
        assert_eq!(report.windows(), 4);
    }

    #[test]
    fn restrict_to_keeps_only_prefixed_names() {
        let report = sample();
        let collector_only = report.restrict_to(&["collector."]);
        assert_eq!(collector_only.counters.len(), 2);
        assert!(collector_only.gauges.is_empty());
        assert!(collector_only.spans.is_empty());
    }

    #[test]
    fn edges_skip_roots_and_count_activations() {
        let report = sample();
        let edges = report.edges();
        assert_eq!(edges.len(), 1);
        let ((edge, window), count) = edges.iter().next().expect("one edge");
        assert_eq!(edge, "assess.change>assess.item");
        assert_eq!((*window, *count), (5, 1));
    }

    #[test]
    fn empty_report_serializes_cleanly() {
        let report = TimelineReport::from_data(&TimelineData::default());
        assert!(report.is_empty());
        let _: serde::Value = serde_json::from_str(&report.to_json()).expect("empty parses");
    }
}
