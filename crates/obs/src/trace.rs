//! Chrome trace-event export for the telemetry timeline.
//!
//! Serializes a [`TimelineReport`] into the trace-event JSON format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly, so an operator can *see* the pipeline's shape over data time:
//! one named lane per span path, one complete ("X") event per populated
//! window carrying the merged duration and activation count for that
//! window, counter ("C") tracks for every windowed counter and gauge.
//!
//! Trace timestamps are **data minutes, not wall time**: window `w` maps
//! to `ts = w × 60·10⁶ µs`, and an X event's `dur` is the window's summed
//! span nanoseconds ÷ 1000. The picture reads as "during data-minute
//! 1700, the pipeline spent this much span time in `assess.item` under
//! `assess.change`" — causality comes from the recorded parent, shown in
//! each event's `args`.
//!
//! Everything is emitted from sorted `BTreeMap` iteration with integer
//! arithmetic only, so the bytes are identical across runs and worker
//! counts whenever the timeline itself is (the determinism test covers
//! the trace file too).

use crate::timeline::TimelineReport;
use std::fmt::Write as _;
use std::path::Path;

/// Schema version stamped into the trace envelope (alongside the standard
/// `traceEvents` key, which viewers require).
pub const SCHEMA_VERSION: u32 = 1;

/// The default trace path the examples and sweeps write to.
pub const DEFAULT_TRACE_PATH: &str = "results/trace.json";

/// Microseconds per one-minute timeline window.
const WINDOW_US: u64 = 60_000_000;

/// Renders `report` as Chrome trace-event JSON.
pub fn chrome_trace_json(report: &TimelineReport) -> String {
    let mut out = String::from("{\n\"schema_version\": ");
    let _ = write!(out, "{SCHEMA_VERSION}");
    out.push_str(",\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [");
    let mut first = true;
    let mut push = |out: &mut String, event: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(event);
    };

    push(
        &mut out,
        "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
         \"args\": {\"name\": \"funnel pipeline (data time)\"}}",
    );

    // One lane (tid) per distinct span path, in sorted-path order so lane
    // assignment is byte-stable.
    let spans = report.spans_by_window();
    let mut paths: Vec<&str> = spans.keys().map(|(p, _)| *p).collect();
    paths.dedup();
    for (idx, path) in paths.iter().enumerate() {
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{path}\"}}}}",
                idx + 1
            ),
        );
    }

    // Complete events: merged span time per (path, window), annotated with
    // the parent breakdown from the raw (path, parent, window) map.
    for ((path, window), stat) in &spans {
        let tid = 1 + paths.iter().position(|p| p == path).unwrap_or(0);
        let mut parents = String::new();
        for ((p, parent, w), s) in &report.spans {
            if p == path && w == window && !parent.is_empty() {
                if !parents.is_empty() {
                    parents.push_str(", ");
                }
                let _ = write!(parents, "\"{parent}\": {}", s.count);
            }
        }
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \"name\": \"{path}\", \
                 \"ts\": {}, \"dur\": {}, \
                 \"args\": {{\"count\": {}, \"total_ns\": {}, \"parents\": {{{parents}}}}}}}",
                window * WINDOW_US,
                (stat.total_ns / 1_000).max(1),
                stat.count,
                stat.total_ns,
            ),
        );
    }

    // Counter tracks: one C event per (name, window) for counters and
    // max-wins gauges alike.
    for ((name, window), v) in &report.counters {
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"C\", \"pid\": 1, \"name\": \"{name}\", \"ts\": {}, \
                 \"args\": {{\"value\": {v}}}}}",
                window * WINDOW_US,
            ),
        );
    }
    for ((name, window), v) in &report.gauges {
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"C\", \"pid\": 1, \"name\": \"{name}\", \"ts\": {}, \
                 \"args\": {{\"value\": {v}}}}}",
                window * WINDOW_US,
            ),
        );
    }

    out.push_str("\n]\n}\n");
    out
}

/// Writes the Chrome trace form of `report` to `path`, creating parent
/// directories.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_chrome_trace(report: &TimelineReport, path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace_json(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StageStat;
    use crate::timeline::{TimelineData, TimelineReport, ROOT};

    #[test]
    fn trace_parses_and_places_events_in_data_time() {
        let mut data = TimelineData::default();
        data.counters.insert((crate::names::FRAMES_INGESTED, 2), 5);
        let mut s = StageStat::empty();
        s.observe(2_000, u64::MAX);
        data.spans
            .insert((crate::names::SPAN_ASSESS_CHANGE, ROOT, 3), s);
        data.spans.insert(
            (
                crate::names::SPAN_ASSESS_ITEM,
                crate::names::SPAN_ASSESS_CHANGE,
                3,
            ),
            s,
        );
        let report = TimelineReport::from_data(&data);
        let json = chrome_trace_json(&report);
        assert_eq!(json, chrome_trace_json(&report), "trace bytes stable");

        let value: serde::Value = serde_json::from_str(&json).expect("trace parses");
        let top = value.as_object().expect("top level object");
        assert_eq!(
            serde::find_field(top, "schema_version"),
            Some(&serde::Value::Num(serde::Number::U(1)))
        );
        let events = serde::find_field(top, "traceEvents")
            .and_then(serde::Value::as_array)
            .expect("events array");
        let of_phase = |ph: &str| -> Vec<&[(String, serde::Value)]> {
            events
                .iter()
                .filter_map(|e| e.as_object())
                .filter(|o| serde::find_field(o, "ph").and_then(serde::Value::as_str) == Some(ph))
                .collect()
        };
        let u64_field = |o: &[(String, serde::Value)], key: &str| -> u64 {
            match serde::find_field(o, key) {
                Some(serde::Value::Num(serde::Number::U(u))) => *u,
                other => panic!("field {key} not a u64: {other:?}"),
            }
        };

        let x = of_phase("X");
        assert_eq!(x.len(), 2);
        assert!(x.iter().all(|o| u64_field(o, "ts") == 3 * 60_000_000));
        let item = x
            .iter()
            .find(|o| {
                serde::find_field(o, "name").and_then(serde::Value::as_str) == Some("assess.item")
            })
            .expect("item lane");
        let args = serde::find_field(item, "args")
            .and_then(serde::Value::as_object)
            .expect("args");
        let parents = serde::find_field(args, "parents")
            .and_then(serde::Value::as_object)
            .expect("parents");
        assert_eq!(u64_field(parents, "assess.change"), 1);

        let c = of_phase("C");
        assert_eq!(c.len(), 1);
        assert_eq!(u64_field(c[0], "ts"), 2 * 60_000_000);
        let args = serde::find_field(c[0], "args")
            .and_then(serde::Value::as_object)
            .expect("counter args");
        assert_eq!(u64_field(args, "value"), 5);
    }
}
