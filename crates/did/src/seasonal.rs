//! The historical-seasonal control group (paper §3.2.5).
//!
//! For affected services and full launches there are no cservers/cinstances,
//! so FUNNEL compares the KPI around the software change with the *same KPI
//! in the same period of day on historical days*: seasonality moves both the
//! current and the historical windows identically, so it cancels in the DiD,
//! while a genuine software-change impact only moves the current window.
//! Using 30 days of history both covers the day-of-week cycle and dilutes
//! baseline contamination from earlier incidents (§1, §3.2.5).

use crate::estimator::DidError;
use crate::groups::{DidAssessor, DidVerdict};
use crate::DidEstimate;
use funnel_timeseries::series::{MinuteBin, TimeSeries};
use funnel_timeseries::MINUTES_PER_DAY;

/// Builds DiD cells from one long KPI series by treating the same
/// minutes-of-day on previous days as the control group.
#[derive(Debug, Clone)]
pub struct SeasonalControl {
    /// Number of historical days used as control (the paper uses 30).
    pub history_days: u32,
}

impl Default for SeasonalControl {
    fn default() -> Self {
        Self { history_days: 30 }
    }
}

impl SeasonalControl {
    /// Creates a seasonal control over `history_days` previous days.
    pub fn new(history_days: u32) -> Self {
        Self {
            history_days: history_days.max(1),
        }
    }

    /// Number of historical days that actually fit inside `series` for a
    /// change at `change_minute` with period `w`.
    pub fn available_days(&self, series: &TimeSeries, change_minute: MinuteBin, w: u64) -> u32 {
        let mut days = 0;
        for d in 1..=self.history_days as u64 {
            let offset = d * MINUTES_PER_DAY as u64;
            if change_minute < offset + w {
                break;
            }
            let hist_change = change_minute - offset;
            if hist_change.saturating_sub(w) < series.start() {
                break;
            }
            days += 1;
        }
        days
    }

    /// Assesses the change at `change_minute` using `assessor`'s period
    /// length and thresholds. The treated cells come from
    /// `[change−ω, change)` / `[change, change+ω)` of `series`; the control
    /// cells pool the same clock windows on each available historical day.
    ///
    /// # Errors
    ///
    /// [`DidError::EmptyCell`] when no historical day fits in the series.
    pub fn assess(
        &self,
        assessor: &DidAssessor,
        series: &TimeSeries,
        change_minute: MinuteBin,
    ) -> Result<(DidVerdict, DidEstimate), DidError> {
        let w = assessor.config().period_minutes;
        let treated_pre = series
            .slice(change_minute.saturating_sub(w), change_minute)
            .to_vec();
        let treated_post = series.slice(change_minute, change_minute + w).to_vec();

        let mut control_pre = Vec::new();
        let mut control_post = Vec::new();
        for d in 1..=self.history_days as u64 {
            let offset = d * MINUTES_PER_DAY as u64;
            if change_minute < offset + w {
                break;
            }
            let hist = change_minute - offset;
            control_pre.extend_from_slice(series.slice(hist - w, hist));
            control_post.extend_from_slice(series.slice(hist, hist + w));
        }

        assessor.assess_samples(&treated_pre, &treated_post, &control_pre, &control_post)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::DidConfig;

    const DAY: u64 = MINUTES_PER_DAY as u64;

    fn lcg_noise(seed: u64, i: u64) -> f64 {
        let mut s = seed
            .wrapping_add(i)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s ^= s >> 31;
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }

    /// `days` days of strongly seasonal KPI, with an optional level shift at
    /// `onset`.
    fn seasonal_series(days: u64, onset: Option<MinuteBin>, shift: f64) -> TimeSeries {
        let len = days * DAY;
        let values = (0..len)
            .map(|m| {
                let phase = (m % DAY) as f64 / DAY as f64 * std::f64::consts::TAU;
                let mut v = 1000.0 + 400.0 * phase.sin() + 5.0 * lcg_noise(9, m);
                if let Some(o) = onset {
                    if m >= o {
                        v += shift;
                    }
                }
                v
            })
            .collect();
        TimeSeries::new(0, values)
    }

    fn assessor() -> DidAssessor {
        DidAssessor::new(DidConfig {
            period_minutes: 60,
            ..Default::default()
        })
    }

    #[test]
    fn seasonal_swing_alone_is_not_caused() {
        // The KPI swings ±400 daily; change deployed at a steep part of the
        // curve. A naive before/after comparison would scream; the seasonal
        // DiD must stay quiet.
        let s = seasonal_series(10, None, 0.0);
        let change = 9 * DAY + 6 * 60; // 06:00 on day 9: steep rise
        let ctl = SeasonalControl::new(7);
        let (v, est) = ctl.assess(&assessor(), &s, change).unwrap();
        assert!(!v.is_caused(), "alpha {} t {}", est.alpha, est.t_stat);
    }

    #[test]
    fn real_shift_on_seasonal_kpi_is_caused() {
        let change = 9 * DAY + 6 * 60;
        let s = seasonal_series(10, Some(change), -300.0);
        let ctl = SeasonalControl::new(7);
        let (v, est) = ctl.assess(&assessor(), &s, change).unwrap();
        assert!(v.is_caused(), "alpha {} t {}", est.alpha, est.t_stat);
        assert!(v.alpha() < 0.0);
    }

    #[test]
    fn no_history_errors() {
        let s = seasonal_series(1, None, 0.0);
        let ctl = SeasonalControl::new(30);
        let err = ctl.assess(&assessor(), &s, 12 * 60).unwrap_err();
        assert!(matches!(err, DidError::EmptyCell { .. }));
    }

    #[test]
    fn available_days_counts_fitting_history() {
        let s = seasonal_series(10, None, 0.0);
        let ctl = SeasonalControl::new(30);
        let days = ctl.available_days(&s, 9 * DAY + 6 * 60, 60);
        assert!((8..=9).contains(&days), "days {days}");
        assert_eq!(ctl.available_days(&s, 60, 60), 0);
    }

    #[test]
    fn contaminated_baseline_diluted_by_many_days() {
        // One historical day had an incident in the control window; 7 days
        // of history keep the estimate near zero.
        let change = 9 * DAY + 6 * 60;
        let mut s = seasonal_series(10, None, 0.0);
        // Contaminate day 5's control window (+800 for 2 hours).
        let contamination_start = change - 4 * DAY - 60;
        for m in contamination_start..contamination_start + 120 {
            let idx = (m - s.start()) as usize;
            s.values_mut()[idx] += 800.0;
        }
        let ctl = SeasonalControl::new(7);
        let (v, est) = ctl.assess(&assessor(), &s, change).unwrap();
        assert!(!v.is_caused(), "alpha {} t {}", est.alpha, est.t_stat);
    }
}
