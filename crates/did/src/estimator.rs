//! The 2×2 difference-in-differences estimator with panel-OLS inference.
//!
//! The design has four cells — {treated, control} × {pre, post} — and the
//! linear model of paper Eq. 15,
//!
//! ```text
//! Y(i,t) = θ(t) + α·D(i,t) + ξ(i) + υ(i,t),
//! ```
//!
//! whose OLS estimate of the interaction coefficient is exactly the
//! difference of differences of cell means (Eq. 16). The residual variance
//! of the saturated 2×2 regression gives the standard error
//! `SE(α̂) = σ̂·√(1/n₁₁ + 1/n₁₀ + 1/n₀₁ + 1/n₀₀)` and a t-statistic for the
//! significance of the software-change impact.

use funnel_timeseries::stats::stable_sum;

/// Result of a DiD fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DidEstimate {
    /// The impact estimator α of Eq. 16 (post-pre change of treated relative
    /// to control), in the units the samples were supplied in.
    pub alpha: f64,
    /// OLS standard error of α (0 when residual dof is 0).
    pub std_err: f64,
    /// `alpha / std_err`; ±∞ when `std_err == 0` and `alpha ≠ 0`.
    pub t_stat: f64,
    /// Total number of observations.
    pub n: usize,
    /// Cell means `[treated_pre, treated_post, control_pre, control_post]`.
    pub cell_means: [f64; 4],
}

impl DidEstimate {
    /// Whether the impact is significant: |α| materially larger than
    /// `alpha_threshold` *and* either |t| above a strict bar (3.5 — FUNNEL
    /// judges millions of KPI-hours per day, so per-test error rates must
    /// be tiny) or |α| so large (3× the threshold) that no plausible
    /// noise/autocorrelation structure explains it — the AR-corrected t can
    /// be over-deflated when strong within-period trends (seasonal cells)
    /// inflate the estimated autocorrelation, and a 10+-MAD relative shift
    /// is categorical regardless.
    pub fn is_significant(&self, alpha_threshold: f64) -> bool {
        self.alpha.abs() > alpha_threshold
            && (self.t_stat.abs() > 3.5 || self.alpha.abs() > 3.0 * alpha_threshold)
    }

    /// The 95% normal-approximation confidence interval on α,
    /// `α ± 1.96·SE(α̂)` — what the diagnosis layer's evidence dossier
    /// reports alongside the point estimate. Degenerate fits
    /// (`std_err == 0`) collapse to the point estimate.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_err;
        (self.alpha - half, self.alpha + half)
    }
}

/// Errors from [`did_estimate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DidError {
    /// One of the four cells has no observations.
    EmptyCell {
        /// Which cell: "treated_pre", "treated_post", "control_pre",
        /// "control_post".
        cell: &'static str,
    },
    /// A sample was NaN or infinite.
    NonFiniteSample,
    /// The telemetry behind one of the groups was mostly interpolation:
    /// fewer than the required fraction of its minutes carried real
    /// measurements, so the contrast would compare fills, not data.
    /// Percentages are rounded to whole points (keeps the error `Eq`).
    InsufficientCoverage {
        /// Which group fell short: "treated" or "control".
        group: &'static str,
        /// Required coverage, in whole percent.
        required_pct: u8,
        /// Observed coverage, in whole percent.
        got_pct: u8,
    },
}

impl std::fmt::Display for DidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DidError::EmptyCell { cell } => write!(f, "DiD cell '{cell}' has no observations"),
            DidError::NonFiniteSample => write!(f, "DiD received a non-finite sample"),
            DidError::InsufficientCoverage {
                group,
                required_pct,
                got_pct,
            } => write!(
                f,
                "DiD {group} group has {got_pct}% telemetry coverage (needs {required_pct}%)"
            ),
        }
    }
}

impl std::error::Error for DidError {}

/// Fits the 2×2 DiD design from raw per-cell samples.
///
/// # Errors
///
/// [`DidError::EmptyCell`] when any cell is empty,
/// [`DidError::NonFiniteSample`] when any sample is NaN/∞.
pub fn did_estimate(
    treated_pre: &[f64],
    treated_post: &[f64],
    control_pre: &[f64],
    control_post: &[f64],
) -> Result<DidEstimate, DidError> {
    let cells: [(&'static str, &[f64]); 4] = [
        ("treated_pre", treated_pre),
        ("treated_post", treated_post),
        ("control_pre", control_pre),
        ("control_post", control_post),
    ];
    for (name, xs) in &cells {
        if xs.is_empty() {
            return Err(DidError::EmptyCell { cell: name });
        }
        if xs.iter().any(|x| !x.is_finite()) {
            return Err(DidError::NonFiniteSample);
        }
    }

    // Compensated sums: cell sample order is a series-layout artifact, so
    // the estimate must not depend on it (see `stable_sum`).
    let m = |xs: &[f64]| stable_sum(xs.iter().copied()) / xs.len() as f64;
    let m_t0 = m(treated_pre);
    let m_t1 = m(treated_post);
    let m_c0 = m(control_pre);
    let m_c1 = m(control_post);

    // Eq. 16.
    let alpha = (m_t1 - m_c1) - (m_t0 - m_c0);

    // Residual sum of squares of the saturated regression (each cell fitted
    // by its own mean — equivalent to the Eq. 15 OLS fit for this design).
    let cell_rss = |xs: &[f64], m: f64| stable_sum(xs.iter().map(|x| (x - m) * (x - m)));
    let rss: f64 = cell_rss(treated_pre, m_t0)
        + cell_rss(treated_post, m_t1)
        + cell_rss(control_pre, m_c0)
        + cell_rss(control_post, m_c1);
    let n = treated_pre.len() + treated_post.len() + control_pre.len() + control_post.len();
    let dof = n.saturating_sub(4);

    let (std_err, t_stat) = if dof == 0 {
        (
            0.0,
            if alpha == 0.0 {
                0.0
            } else {
                f64::INFINITY.copysign(alpha)
            },
        )
    } else {
        let sigma2 = rss / dof as f64;
        // KPI noise is strongly autocorrelated minute to minute (AR-like),
        // so the i.i.d. OLS standard error is overconfident by the classic
        // factor √((1+ρ)/(1−ρ)). Estimate lag-1 autocorrelation from the
        // within-cell residuals (a cheap Newey–West-style correction) and
        // inflate the SE accordingly, clamped to [1, 5] for stability.
        let rho = pooled_lag1_autocorr(&[treated_pre, treated_post, control_pre, control_post]);
        let inflation = (((1.0 + rho) / (1.0 - rho)).max(1.0))
            .sqrt()
            .clamp(1.0, 5.0);
        let se = inflation
            * (sigma2
                * (1.0 / treated_pre.len() as f64
                    + 1.0 / treated_post.len() as f64
                    + 1.0 / control_pre.len() as f64
                    + 1.0 / control_post.len() as f64))
                .sqrt();
        let t = if se > 0.0 {
            alpha / se
        } else if alpha == 0.0 {
            0.0
        } else {
            f64::INFINITY.copysign(alpha)
        };
        (se, t)
    };

    Ok(DidEstimate {
        alpha,
        std_err,
        t_stat,
        n,
        cell_means: [m_t0, m_t1, m_c0, m_c1],
    })
}

/// Average lag-1 autocorrelation of the demeaned samples within each cell
/// (cells are time-ordered measurement sequences). Returns 0 for cells too
/// short to estimate; the result is clamped to `[0, 0.95]` — negative
/// autocorrelation would *shrink* the SE, which we conservatively ignore.
fn pooled_lag1_autocorr(cells: &[&[f64]]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for cell in cells {
        if cell.len() < 3 {
            continue;
        }
        let m = stable_sum(cell.iter().copied()) / cell.len() as f64;
        for w in cell.windows(2) {
            num += (w[0] - m) * (w[1] - m);
        }
        for x in cell.iter() {
            den += (x - m) * (x - m);
        }
    }
    if den <= 0.0 {
        0.0
    } else {
        (num / den).clamp(0.0, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_2x2() {
        // Treated moves 10 → 15, control 20 → 22 ⇒ α = 5 − 2 = 3.
        let e = did_estimate(&[10.0, 10.0], &[15.0, 15.0], &[20.0, 20.0], &[22.0, 22.0]).unwrap();
        assert!((e.alpha - 3.0).abs() < 1e-12);
        assert_eq!(e.n, 8);
        assert_eq!(e.cell_means, [10.0, 15.0, 20.0, 22.0]);
    }

    #[test]
    fn shared_shock_cancels() {
        // Both groups jump by 7 (a non-software factor): α = 0.
        let e = did_estimate(&[1.0, 1.2], &[8.0, 8.2], &[5.0, 5.2], &[12.0, 12.2]).unwrap();
        assert!(e.alpha.abs() < 1e-12);
    }

    #[test]
    fn significance_needs_both_magnitude_and_tstat() {
        // Large α, clean data ⇒ significant.
        let tp: Vec<f64> = (0..30).map(|i| 10.0 + 0.1 * (i % 3) as f64).collect();
        let tq: Vec<f64> = (0..30).map(|i| 15.0 + 0.1 * (i % 3) as f64).collect();
        let cp: Vec<f64> = (0..30).map(|i| 10.0 + 0.1 * (i % 3) as f64).collect();
        let cq: Vec<f64> = (0..30).map(|i| 10.0 + 0.1 * (i % 3) as f64).collect();
        let e = did_estimate(&tp, &tq, &cp, &cq).unwrap();
        assert!(e.is_significant(0.5));
        // Tiny α ⇒ not significant at the 0.5 threshold even if precise.
        let tq_small: Vec<f64> = tp.iter().map(|x| x + 0.2).collect();
        let e2 = did_estimate(&tp, &tq_small, &cp, &cq).unwrap();
        assert!(!e2.is_significant(0.5));
    }

    #[test]
    fn noisy_null_is_insignificant() {
        // Same noisy distribution in all cells: α near 0, |t| small.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut cell = |base: f64| -> Vec<f64> { (0..60).map(|_| base + next()).collect() };
        let e = did_estimate(&cell(10.0), &cell(10.0), &cell(10.0), &cell(10.0)).unwrap();
        assert!(!e.is_significant(0.5), "alpha {} t {}", e.alpha, e.t_stat);
    }

    #[test]
    fn empty_cell_rejected() {
        let err = did_estimate(&[], &[1.0], &[1.0], &[1.0]).unwrap_err();
        assert_eq!(
            err,
            DidError::EmptyCell {
                cell: "treated_pre"
            }
        );
    }

    #[test]
    fn non_finite_rejected() {
        let err = did_estimate(&[1.0], &[f64::NAN], &[1.0], &[1.0]).unwrap_err();
        assert_eq!(err, DidError::NonFiniteSample);
    }

    #[test]
    fn dof_zero_edge() {
        let e = did_estimate(&[1.0], &[5.0], &[2.0], &[2.0]).unwrap();
        assert_eq!(e.std_err, 0.0);
        assert!(e.t_stat.is_infinite() && e.t_stat > 0.0);
    }

    #[test]
    fn std_err_shrinks_with_samples() {
        let small =
            did_estimate(&[9.0, 11.0], &[14.0, 16.0], &[10.0, 12.0], &[10.0, 12.0]).unwrap();
        let tp: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 9.0 } else { 11.0 })
            .collect();
        let tq: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 14.0 } else { 16.0 })
            .collect();
        let cp: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 10.0 } else { 12.0 })
            .collect();
        let big = did_estimate(&tp, &tq, &cp, &cp.clone()).unwrap();
        assert!(big.std_err < small.std_err);
    }

    #[test]
    fn ci95_brackets_alpha_and_collapses_when_exact() {
        let e = did_estimate(&[9.0, 11.0], &[14.0, 16.0], &[10.0, 12.0], &[10.0, 12.0]).unwrap();
        let (lo, hi) = e.ci95();
        assert!(lo <= e.alpha && e.alpha <= hi);
        assert!((hi - lo - 2.0 * 1.96 * e.std_err).abs() < 1e-12);
        // A noiseless fit has zero SE: the interval is the point estimate.
        let exact =
            did_estimate(&[10.0, 10.0], &[15.0, 15.0], &[20.0, 20.0], &[22.0, 22.0]).unwrap();
        assert_eq!(exact.ci95(), (exact.alpha, exact.alpha));
    }
}
