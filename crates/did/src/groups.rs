//! Group assembly and verdicts for the dark-launch DiD mode (paper §3.2.4).
//!
//! In dark launching the treated group is the KPI on the changed
//! servers/instances and the control group is the same KPI on the peers of
//! the same service that have not received the change yet. [`DidAssessor`]
//! slices both groups into pre/post periods around the change minute,
//! robust-normalizes against the pooled pre-change cells (so the
//! operator-facing α threshold — the paper suggests "a small value"; we
//! default to 2.0 robust-MAD units —
//! is in noise units rather than raw KPI units), fits the estimator with
//! AR(1)-corrected standard errors, and renders a [`DidVerdict`].

use crate::estimator::{did_estimate, DidError, DidEstimate};
use funnel_timeseries::mask::CoverageMask;
use funnel_timeseries::series::{MinuteBin, TimeSeries};
use funnel_timeseries::stats::{mad, median};

/// Configuration for a DiD assessment.
#[derive(Debug, Clone, PartialEq)]
pub struct DidConfig {
    /// Length ω of each of the pre- and post-change periods, in minutes
    /// (§3.2.4 uses the SST ω; the evaluation (§4.1) uses 60).
    pub period_minutes: u64,
    /// Declaration threshold on |α| in normalized units.
    pub alpha_threshold: f64,
    /// Whether to normalize all samples by the control pre-period's robust
    /// scale (median/MAD). Disable only if samples are pre-normalized.
    pub normalize: bool,
    /// Largest allowed |pre-coverage − post-coverage| for one group member
    /// in [`DidAssessor::assess_masked`]. A partition that darkened a
    /// member for one side of the change only makes its contrast
    /// fills-vs-data rather than data-vs-data; such members are excluded.
    pub max_coverage_divergence: f64,
}

impl Default for DidConfig {
    fn default() -> Self {
        Self {
            period_minutes: 60,
            alpha_threshold: 2.0,
            normalize: true,
            max_coverage_divergence: 0.35,
        }
    }
}

/// The assessment outcome delivered to the operations team.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DidVerdict {
    /// The KPI change is attributed to the software change; `alpha`'s sign
    /// gives the direction of the relative movement.
    CausedBySoftwareChange {
        /// The fitted, normalized impact estimator.
        alpha: f64,
        /// Its t-statistic.
        t_stat: f64,
    },
    /// The relative performance between the groups did not move: whatever
    /// the detector saw was seasonality / an external factor.
    NotCaused {
        /// The fitted, normalized impact estimator (near zero).
        alpha: f64,
    },
}

impl DidVerdict {
    /// Whether the verdict attributes the change to the software change.
    pub fn is_caused(&self) -> bool {
        matches!(self, DidVerdict::CausedBySoftwareChange { .. })
    }

    /// The fitted α either way.
    pub fn alpha(&self) -> f64 {
        match *self {
            DidVerdict::CausedBySoftwareChange { alpha, .. } => alpha,
            DidVerdict::NotCaused { alpha } => alpha,
        }
    }
}

/// Dark-launch DiD assessor.
#[derive(Debug, Clone, Default)]
pub struct DidAssessor {
    config: DidConfig,
}

impl DidAssessor {
    /// Creates an assessor with the given configuration.
    pub fn new(config: DidConfig) -> Self {
        Self { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DidConfig {
        &self.config
    }

    /// Assesses whether the KPI behaviour around `change_minute` differs
    /// between `treated` and `control` series (all covering the assessment
    /// span). Pre period is `[change−ω, change)`, post is
    /// `[change, change+ω)`; samples are pooled across group members.
    ///
    /// # Errors
    ///
    /// Propagates [`DidError`] when a cell ends up empty (series don't
    /// cover the span, or a group is empty).
    pub fn assess(
        &self,
        treated: &[&TimeSeries],
        control: &[&TimeSeries],
        change_minute: MinuteBin,
    ) -> Result<(DidVerdict, DidEstimate), DidError> {
        let _span = funnel_obs::span!(funnel_obs::names::SPAN_DID);
        funnel_obs::histogram_record(
            funnel_obs::names::DID_CONTROL_POOL_SIZE,
            (treated.len() + control.len()) as u64,
        );
        let w = self.config.period_minutes;
        let pre_from = change_minute.saturating_sub(w);
        let mut cells = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for s in treated {
            cells[0].extend_from_slice(s.slice(pre_from, change_minute));
            cells[1].extend_from_slice(s.slice(change_minute, change_minute + w));
        }
        for s in control {
            cells[2].extend_from_slice(s.slice(pre_from, change_minute));
            cells[3].extend_from_slice(s.slice(change_minute, change_minute + w));
        }
        self.assess_samples(&cells[0], &cells[1], &cells[2], &cells[3])
    }

    /// [`DidAssessor::assess`] hardened against partition-skewed coverage:
    /// each group member carries its coverage mask (`None` = fully
    /// measured, e.g. batch-materialized history), and members whose
    /// pre-vs-post coverage over the assessment span diverges by more than
    /// [`DidConfig::max_coverage_divergence`] are excluded before pooling.
    ///
    /// The failure mode this prevents: a zone partition darkens some
    /// control instances for exactly the post-change period, so their
    /// post cells are forward-filled copies of pre-change values — the
    /// contrast then reads "control did not move" regardless of what the
    /// control actually did, and a coincident external shock gets
    /// attributed to the software change. Divergence, not absolute
    /// coverage, is the right test: a member missing 20 % of *both*
    /// periods still contributes an honest contrast.
    ///
    /// # Errors
    ///
    /// [`DidError::InsufficientCoverage`] when every member of a group is
    /// excluded (the percentages report coverage *balance*,
    /// `100 − divergence`, for the best surviving candidate), plus
    /// everything [`DidAssessor::assess`] can return.
    pub fn assess_masked(
        &self,
        treated: &[(&TimeSeries, Option<&CoverageMask>)],
        control: &[(&TimeSeries, Option<&CoverageMask>)],
        change_minute: MinuteBin,
    ) -> Result<(DidVerdict, DidEstimate), DidError> {
        let w = self.config.period_minutes;
        let pre_from = change_minute.saturating_sub(w);
        let divergence = |mask: Option<&CoverageMask>| -> f64 {
            match mask {
                None => 0.0,
                Some(m) => {
                    let pre = m.coverage(pre_from, change_minute);
                    let post = m.coverage(change_minute, change_minute + w);
                    (pre - post).abs()
                }
            }
        };
        fn filter<'a>(
            group: &[(&'a TimeSeries, Option<&CoverageMask>)],
            name: &'static str,
            max_div: f64,
            divergence: &impl Fn(Option<&CoverageMask>) -> f64,
        ) -> Result<Vec<&'a TimeSeries>, DidError> {
            let mut kept = Vec::with_capacity(group.len());
            let mut best_div = f64::INFINITY;
            for &(series, mask) in group {
                let d = divergence(mask);
                best_div = best_div.min(d);
                if d <= max_div {
                    kept.push(series);
                }
            }
            if kept.is_empty() && !group.is_empty() {
                return Err(DidError::InsufficientCoverage {
                    group: name,
                    required_pct: (100.0 * (1.0 - max_div)).round().clamp(0.0, 100.0) as u8,
                    got_pct: (100.0 * (1.0 - best_div)).round().clamp(0.0, 100.0) as u8,
                });
            }
            Ok(kept)
        }
        let max_div = self.config.max_coverage_divergence;
        let treated = filter(treated, "treated", max_div, &divergence)?;
        let control = filter(control, "control", max_div, &divergence)?;
        self.assess(&treated, &control, change_minute)
    }

    /// Sample-level entry point shared with the seasonal mode.
    ///
    /// # Errors
    ///
    /// Propagates [`DidError`] from the estimator.
    pub fn assess_samples(
        &self,
        treated_pre: &[f64],
        treated_post: &[f64],
        control_pre: &[f64],
        control_post: &[f64],
    ) -> Result<(DidVerdict, DidEstimate), DidError> {
        let est = if self.config.normalize {
            // Robust scale from the pooled pre-change cells: stable under a
            // handful of contaminated baseline samples.
            let mut baseline: Vec<f64> = control_pre
                .iter()
                .chain(treated_pre.iter())
                .copied()
                .collect();
            let center = median(&baseline);
            let scale = mad(&baseline).max(1e-9);
            baseline.clear();
            let norm =
                |xs: &[f64]| -> Vec<f64> { xs.iter().map(|x| (x - center) / scale).collect() };
            did_estimate(
                &norm(treated_pre),
                &norm(treated_post),
                &norm(control_pre),
                &norm(control_post),
            )?
        } else {
            did_estimate(treated_pre, treated_post, control_pre, control_post)?
        };

        let verdict = if est.is_significant(self.config.alpha_threshold) {
            DidVerdict::CausedBySoftwareChange {
                alpha: est.alpha,
                t_stat: est.t_stat,
            }
        } else {
            DidVerdict::NotCaused { alpha: est.alpha }
        };
        Ok((verdict, est))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(start: MinuteBin, f: impl Fn(u64) -> f64, len: u64) -> TimeSeries {
        TimeSeries::new(start, (0..len).map(|i| f(start + i)).collect())
    }

    fn lcg_noise(seed: u64, i: u64) -> f64 {
        let mut s = seed
            .wrapping_add(i)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s ^= s >> 31;
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }

    #[test]
    fn treated_only_shift_is_caused() {
        let change = 120;
        let treated: Vec<TimeSeries> = (0..3)
            .map(|k| {
                series(
                    0,
                    move |m| 100.0 + lcg_noise(k, m) + if m >= change { 10.0 } else { 0.0 },
                    240,
                )
            })
            .collect();
        let control: Vec<TimeSeries> = (10..14)
            .map(|k| series(0, move |m| 100.0 + lcg_noise(k, m), 240))
            .collect();
        let a = DidAssessor::new(DidConfig {
            period_minutes: 60,
            ..Default::default()
        });
        let tr: Vec<&TimeSeries> = treated.iter().collect();
        let cr: Vec<&TimeSeries> = control.iter().collect();
        let (v, est) = a.assess(&tr, &cr, change).unwrap();
        assert!(v.is_caused(), "alpha {} t {}", est.alpha, est.t_stat);
        assert!(v.alpha() > 0.5);
    }

    #[test]
    fn shared_seasonal_swing_is_not_caused() {
        // Both groups ride the same diurnal swing: α ≈ 0.
        let change = 120;
        let swing = |m: u64| 100.0 + 30.0 * ((m as f64 / 1440.0) * std::f64::consts::TAU).sin();
        let treated: Vec<TimeSeries> = (0..3)
            .map(|k| series(0, move |m| swing(m) + lcg_noise(k, m), 240))
            .collect();
        let control: Vec<TimeSeries> = (10..13)
            .map(|k| series(0, move |m| swing(m) + lcg_noise(k, m), 240))
            .collect();
        let a = DidAssessor::default();
        let tr: Vec<&TimeSeries> = treated.iter().collect();
        let cr: Vec<&TimeSeries> = control.iter().collect();
        let (v, _) = a.assess(&tr, &cr, change).unwrap();
        assert!(!v.is_caused(), "alpha {}", v.alpha());
    }

    #[test]
    fn negative_shift_detected_with_sign() {
        let change = 100;
        let treated = series(
            0,
            move |m| 50.0 + lcg_noise(1, m) + if m >= change { -8.0 } else { 0.0 },
            200,
        );
        let control = series(0, move |m| 50.0 + lcg_noise(2, m), 200);
        let a = DidAssessor::default();
        let (v, _) = a.assess(&[&treated], &[&control], change).unwrap();
        assert!(v.is_caused());
        assert!(v.alpha() < -0.5);
    }

    #[test]
    fn empty_control_errors() {
        let treated = series(0, |_| 1.0, 200);
        let a = DidAssessor::default();
        let err = a.assess(&[&treated], &[], 100).unwrap_err();
        assert!(matches!(err, DidError::EmptyCell { .. }));
    }

    #[test]
    fn normalization_makes_threshold_scale_free() {
        // Same relative effect at 1000× the magnitude: same verdict.
        let change = 100;
        let mk = |scale: f64, shift: f64| {
            let t = series(
                0,
                move |m| {
                    scale * (10.0 + 0.1 * lcg_noise(3, m)) + if m >= change { shift } else { 0.0 }
                },
                200,
            );
            let c = series(0, move |m| scale * (10.0 + 0.1 * lcg_noise(4, m)), 200);
            (t, c)
        };
        let a = DidAssessor::default();
        let (t1, c1) = mk(1.0, 2.0);
        let (t2, c2) = mk(1000.0, 2000.0);
        let (v1, _) = a.assess(&[&t1], &[&c1], change).unwrap();
        let (v2, _) = a.assess(&[&t2], &[&c2], change).unwrap();
        assert_eq!(v1.is_caused(), v2.is_caused());
        assert!(v1.is_caused());
    }

    #[test]
    fn masked_assess_excludes_partition_skewed_members() {
        // Control member 2 was dark for the whole post period: its "post"
        // cells are forward-fills of pre-change values. With an external
        // shock moving everything +8 post-change, an honest control shows
        // the shock moved controls too (α ≈ 0, NotCaused) — but the
        // fill-frozen member reads flat, dragging the pooled control
        // toward "did not move" and α toward significance. Exclusion must
        // restore the honest verdict.
        let change = 120u64;
        let shock = move |m: u64| if m >= change { 8.0 } else { 0.0 };
        let treated: Vec<TimeSeries> = (0..2)
            .map(|k| series(0, move |m| 100.0 + lcg_noise(k, m) + shock(m), 240))
            .collect();
        let honest = series(0, move |m| 100.0 + lcg_noise(10, m) + shock(m), 240);
        // Frozen member: value stuck at its minute-119 reading post-change.
        let frozen = series(0, move |m| 100.0 + lcg_noise(11, m.min(change - 1)), 240);
        let mut frozen_mask = CoverageMask::new(0);
        for minute in 0..240 {
            if minute < change {
                frozen_mask.mark(minute);
            }
        }
        let full = CoverageMask::all_present(0, 240);

        let a = DidAssessor::default();
        let tr: Vec<(&TimeSeries, Option<&CoverageMask>)> =
            treated.iter().map(|s| (s, Some(&full))).collect();
        let cr = vec![(&honest, Some(&full)), (&frozen, Some(&frozen_mask))];
        let (v, _) = a.assess_masked(&tr, &cr, change).unwrap();
        assert!(!v.is_caused(), "alpha {}", v.alpha());

        // Same data ignoring masks: the frozen member biases the pooled
        // control contrast (demonstrates the hazard exclusion removes).
        let cr_plain: Vec<&TimeSeries> = vec![&honest, &frozen];
        let tr_plain: Vec<&TimeSeries> = treated.iter().collect();
        let (_, est_biased) = a.assess(&tr_plain, &cr_plain, change).unwrap();
        let (_, est_clean) = a.assess(&tr_plain, &[&honest], change).unwrap();
        assert!(
            est_biased.alpha.abs() > est_clean.alpha.abs(),
            "biased {} clean {}",
            est_biased.alpha,
            est_clean.alpha
        );
    }

    #[test]
    fn masked_assess_errors_when_group_empties() {
        let change = 120u64;
        let t = series(0, move |m| 100.0 + lcg_noise(1, m), 240);
        let c = series(0, move |m| 100.0 + lcg_noise(2, m), 240);
        // Control's only member measured pre, dark post.
        let mut skewed = CoverageMask::new(0);
        for minute in 0..change {
            skewed.mark(minute);
        }
        let a = DidAssessor::default();
        let err = a
            .assess_masked(&[(&t, None)], &[(&c, Some(&skewed))], change)
            .unwrap_err();
        assert!(
            matches!(
                err,
                DidError::InsufficientCoverage {
                    group: "control",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn masked_assess_with_full_masks_matches_plain() {
        let change = 120u64;
        let t = series(
            0,
            move |m| 100.0 + lcg_noise(5, m) + if m >= change { 10.0 } else { 0.0 },
            240,
        );
        let c = series(0, move |m| 100.0 + lcg_noise(6, m), 240);
        let full = CoverageMask::all_present(0, 240);
        let a = DidAssessor::default();
        let (vm, em) = a
            .assess_masked(&[(&t, Some(&full))], &[(&c, None)], change)
            .unwrap();
        let (vp, ep) = a.assess(&[&t], &[&c], change).unwrap();
        assert_eq!(vm, vp);
        assert_eq!(em.alpha.to_bits(), ep.alpha.to_bits());
        assert!(vm.is_caused());
    }

    #[test]
    fn balanced_partial_coverage_is_kept() {
        // A member missing 20 % of BOTH periods has zero divergence: kept.
        let change = 120u64;
        let t = series(0, move |m| 100.0 + lcg_noise(8, m), 240);
        let c = series(0, move |m| 100.0 + lcg_noise(9, m), 240);
        let mut balanced = CoverageMask::new(0);
        for minute in 0..240 {
            if minute % 5 != 0 {
                balanced.mark(minute);
            }
        }
        let a = DidAssessor::default();
        assert!(a
            .assess_masked(&[(&t, Some(&balanced))], &[(&c, Some(&balanced))], change)
            .is_ok());
    }

    #[test]
    fn hotspot_in_control_is_diluted() {
        // One hotspot control server spikes post-change; the averaged large
        // control group still yields α ≈ 0 for an unchanged treated group
        // (§3.2.4 observation 4).
        let change = 100;
        let treated = series(0, move |m| 50.0 + lcg_noise(7, m), 200);
        let mut controls: Vec<TimeSeries> = (20..39)
            .map(|k| series(0, move |m| 50.0 + lcg_noise(k, m), 200))
            .collect();
        controls.push(series(
            0,
            move |m| 50.0 + lcg_noise(39, m) + if m >= change { 3.0 } else { 0.0 },
            200,
        ));
        let a = DidAssessor::default();
        let cr: Vec<&TimeSeries> = controls.iter().collect();
        let (v, _) = a.assess(&[&treated], &cr, change).unwrap();
        // The hotspot pulls α slightly negative but dilution keeps it small.
        assert!(!v.is_caused(), "alpha {}", v.alpha());
    }
}
