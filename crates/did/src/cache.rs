//! Per-worker memoization of control-group window fetches.
//!
//! Every impact-set item at the same entity level shares one control group:
//! all tserver items of a KPI kind contrast against the *same* cserver
//! series, all tinstance items against the same cinstances (§3.2.4). A naive
//! fan-out therefore re-fetches (and re-clones) the control series once per
//! treated item — for a 100-server impact set that is 100× redundant work on
//! the hot path.
//!
//! [`ControlCache`] removes that redundancy without introducing cross-worker
//! contention: each assessment worker owns one cache (`&mut` access, no
//! locks), keyed by whatever the caller derives from the item — the pipeline
//! uses `(entity level, KPI kind)` — and stores the fetched window data
//! behind an [`Arc`] so repeated lookups hand out cheap shared references.
//!
//! Determinism: the cache only ever stores values computed from the
//! assessment's read-only snapshot of the metric store, so a hit returns
//! byte-identical data to a recomputation. Worker-local caches mean the hit
//! pattern varies with scheduling, but the *values* never do — which is why
//! the merged report stays bit-identical for any worker count.

use std::collections::BTreeMap;
use std::sync::Arc;

/// Hit/miss counters for one cache (monotonic over its lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the value.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A worker-local memo table for control-group window data.
///
/// `K` is the caller's cache key (the assessment pipeline uses
/// `(entity level, KPI kind)`); `V` is the fetched window payload. A
/// `BTreeMap` keeps iteration — should a caller ever expose cache contents —
/// deterministic, per the workspace-wide ordering invariant.
///
/// # Example
///
/// ```
/// use funnel_did::cache::ControlCache;
///
/// let mut cache: ControlCache<u32, Vec<f64>> = ControlCache::new();
/// let a = cache.get_or_insert_with(7, || vec![1.0, 2.0]);
/// let b = cache.get_or_insert_with(7, || unreachable!("cached"));
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ControlCache<K, V> {
    entries: BTreeMap<K, Arc<V>>,
    hits: u64,
    misses: u64,
}

impl<K: Ord, V> Default for ControlCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> ControlCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached value for `key`, building and storing it with
    /// `build` on first use. The value is shared (`Arc`), never cloned.
    pub fn get_or_insert_with(&mut self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        match self.entries.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.hits += 1;
                Arc::clone(e.get())
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.misses += 1;
                Arc::clone(e.insert(Arc::new(build())))
            }
        }
    }

    /// Number of distinct keys held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_and_shares() {
        let mut cache: ControlCache<(u8, u8), Vec<f64>> = ControlCache::new();
        let mut builds = 0;
        for _ in 0..5 {
            let v = cache.get_or_insert_with((1, 2), || {
                builds += 1;
                vec![3.0; 4]
            });
            assert_eq!(v.len(), 4);
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let mut cache: ControlCache<u32, u32> = ControlCache::new();
        assert_eq!(*cache.get_or_insert_with(1, || 10), 10);
        assert_eq!(*cache.get_or_insert_with(2, || 20), 20);
        assert_eq!(*cache.get_or_insert_with(1, || 99), 10);
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache: ControlCache<u32, u32> = ControlCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn never_evicts_and_len_tracks_distinct_keys() {
        // The cache is eviction-free by design: the key space is tiny
        // (entity level × KPI kind), so every insert stays resident and a
        // later lookup always returns the *same* allocation.
        let mut cache: ControlCache<u32, u32> = ControlCache::new();
        let first: Vec<_> = (0..100)
            .map(|k| cache.get_or_insert_with(k, || k * 2))
            .collect();
        assert_eq!(cache.len(), 100);
        for (k, original) in first.iter().enumerate() {
            let again = cache.get_or_insert_with(k as u32, || unreachable!("cached"));
            assert!(Arc::ptr_eq(original, &again), "key {k} was evicted");
        }
        assert_eq!(cache.len(), 100, "re-lookups must not grow the cache");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (100, 100));
    }

    #[test]
    fn stats_accumulate_monotonically() {
        let mut cache: ControlCache<u8, u8> = ControlCache::new();
        for i in 0..10u8 {
            cache.get_or_insert_with(i % 3, || i);
            let s = cache.stats();
            assert_eq!(
                s.hits + s.misses,
                u64::from(i) + 1,
                "every lookup is counted once"
            );
        }
        let s = cache.stats();
        assert_eq!(s.misses, 3, "one miss per distinct key");
        assert_eq!(s.hits, 7);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }
}
