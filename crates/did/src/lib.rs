//! Difference-in-differences (DiD) causality determination for FUNNEL
//! (paper §3.2.4–§3.2.5).
//!
//! Detecting that a KPI *changed* is not enough: seasonality, hardware
//! breakdowns, attacks, and hotspots also move KPIs. FUNNEL attributes a
//! change to the software change only if the *relative* performance of the
//! treated group (KPIs of tservers/tinstances) moved against a control
//! group that shares every other influence:
//!
//! * **Dark launching** (§3.2.4) — control = cservers/cinstances of the same
//!   service, which load balancing keeps statistically exchangeable with
//!   the treated servers.
//! * **Full launching / affected services** (§3.2.5) — no concurrent
//!   control exists, so the control group is the *same* KPI in the same
//!   minutes-of-day over the previous 30 days, cancelling time-of-day and
//!   day-of-week effects and diluting baseline contamination.
//!
//! Both reduce to the same 2×2 estimator (Eq. 16):
//!
//! ```text
//! α = (E[Y|treated,post] − E[Y|control,post])
//!   − (E[Y|treated,pre]  − E[Y|control,pre])
//! ```
//!
//! with the linear panel model of Eq. 15 supplying standard errors and
//! t-statistics. `α ≈ 0` ⇒ the change was *not* caused by the software
//! change; `|α| ≫ 0` ⇒ it was, with the sign giving the direction.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod estimator;
pub mod groups;
pub mod seasonal;

pub use cache::{CacheStats, ControlCache};
pub use estimator::{did_estimate, DidError, DidEstimate};
pub use groups::{DidAssessor, DidConfig, DidVerdict};
pub use seasonal::SeasonalControl;
