//! Property-based tests for the DiD estimator: the algebraic identities a
//! difference-in-differences design must satisfy.

use funnel_did::estimator::did_estimate;
use proptest::prelude::*;

fn cell() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// α equals the difference of cell-mean differences, exactly.
    #[test]
    fn alpha_is_difference_of_differences(
        tp in cell(), tq in cell(), cp in cell(), cq in cell(),
    ) {
        let m = |xs: &Vec<f64>| xs.iter().sum::<f64>() / xs.len() as f64;
        let est = did_estimate(&tp, &tq, &cp, &cq).unwrap();
        let expect = (m(&tq) - m(&cq)) - (m(&tp) - m(&cp));
        prop_assert!((est.alpha - expect).abs() < 1e-9 * (1.0 + expect.abs()));
    }

    /// Adding the same time shock to both groups' post period leaves α
    /// unchanged (the parallel-trends cancellation).
    #[test]
    fn common_shock_cancels(
        tp in cell(), tq in cell(), cp in cell(), cq in cell(),
        shock in -1e3..1e3f64,
    ) {
        let base = did_estimate(&tp, &tq, &cp, &cq).unwrap();
        let tq2: Vec<f64> = tq.iter().map(|x| x + shock).collect();
        let cq2: Vec<f64> = cq.iter().map(|x| x + shock).collect();
        let shocked = did_estimate(&tp, &tq2, &cp, &cq2).unwrap();
        prop_assert!((base.alpha - shocked.alpha).abs() < 1e-8 * (1.0 + base.alpha.abs()));
    }

    /// A pure treatment effect τ added to treated-post moves α by exactly τ.
    #[test]
    fn treatment_effect_recovered(
        tp in cell(), tq in cell(), cp in cell(), cq in cell(),
        tau in -1e3..1e3f64,
    ) {
        let base = did_estimate(&tp, &tq, &cp, &cq).unwrap();
        let treated: Vec<f64> = tq.iter().map(|x| x + tau).collect();
        let est = did_estimate(&tp, &treated, &cp, &cq).unwrap();
        prop_assert!((est.alpha - base.alpha - tau).abs() < 1e-8 * (1.0 + tau.abs()));
    }

    /// Group-specific *fixed* differences (ξ(i) in Eq. 15) do not bias α:
    /// shifting the whole treated group (pre and post) changes nothing.
    #[test]
    fn group_fixed_effects_cancel(
        tp in cell(), tq in cell(), cp in cell(), cq in cell(),
        xi in -1e3..1e3f64,
    ) {
        let base = did_estimate(&tp, &tq, &cp, &cq).unwrap();
        let tp2: Vec<f64> = tp.iter().map(|x| x + xi).collect();
        let tq2: Vec<f64> = tq.iter().map(|x| x + xi).collect();
        let est = did_estimate(&tp2, &tq2, &cp, &cq).unwrap();
        prop_assert!((base.alpha - est.alpha).abs() < 1e-8 * (1.0 + base.alpha.abs()));
    }

    /// The standard error is non-negative and the t-stat has α's sign.
    #[test]
    fn inference_sane(tp in cell(), tq in cell(), cp in cell(), cq in cell()) {
        let est = did_estimate(&tp, &tq, &cp, &cq).unwrap();
        prop_assert!(est.std_err >= 0.0);
        if est.std_err > 0.0 && est.alpha != 0.0 {
            prop_assert_eq!(est.t_stat.signum(), est.alpha.signum());
        }
    }

    /// Swapping the roles of treated and control negates α.
    #[test]
    fn antisymmetry(tp in cell(), tq in cell(), cp in cell(), cq in cell()) {
        let a = did_estimate(&tp, &tq, &cp, &cq).unwrap();
        let b = did_estimate(&cp, &cq, &tp, &tq).unwrap();
        prop_assert!((a.alpha + b.alpha).abs() < 1e-8 * (1.0 + a.alpha.abs()));
    }
}
