//! The population-bias check (Lumos's bias stage, adapted to FUNNEL's
//! control pools).
//!
//! DiD's counterfactual is only as good as the exchangeability of the
//! treated entity and its control pool *before* the change: a pool whose
//! pre-window distribution (or measured fraction) already diverges from
//! the treated entity's produces a contrast whose "parallel trends"
//! assumption is broken, and the α estimate inherits that bias even when
//! the arithmetic is flawless. The check is purely diagnostic — it
//! annotates the verdict, it never changes it.

use crate::config::DiagConfig;
use crate::input::ItemInput;
use funnel_timeseries::stats::{mad, median, stable_sum};

/// Outcome of the population-bias check for one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiasFlag {
    /// Pre-window distributions and coverage agree within thresholds: the
    /// control pool looks exchangeable with the treated entity.
    Clean,
    /// The control pool's pre-window population diverges from the treated
    /// entity's beyond threshold — treat the α estimate with suspicion and
    /// drill into the member list before acting on the verdict.
    PopulationMismatch,
    /// No control members were available to check against (the item's
    /// counterfactual came from an empty pool and fell through to other
    /// evidence).
    NoControl,
}

impl BiasFlag {
    /// The stable label serialized into the report.
    pub fn label(self) -> &'static str {
        match self {
            BiasFlag::Clean => "clean",
            BiasFlag::PopulationMismatch => "population_mismatch",
            BiasFlag::NoControl => "no_control",
        }
    }
}

/// The bias check's full arithmetic, kept alongside the flag so operators
/// can see *how far* from the threshold an item sat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasCheck {
    /// The verdict of the check.
    pub flag: BiasFlag,
    /// Control members pooled.
    pub members: usize,
    /// Median of the treated entity's pre-window samples.
    pub treated_median: f64,
    /// Median of the pooled control pre-window samples.
    pub control_median: f64,
    /// MAD of the pooled control pre-window samples (robust scale unit).
    pub control_mad: f64,
    /// `|treated_median − control_median| / max(control_mad, ε)`.
    pub median_divergence: f64,
    /// Treated pre-window measured fraction.
    pub treated_coverage: f64,
    /// Mean control-member pre-window measured fraction.
    pub control_coverage: f64,
    /// `|treated_coverage − control_coverage|`.
    pub coverage_divergence: f64,
}

/// MAD floor keeping the divergence finite on constant pools, matching the
/// robust-z floor in `funnel-timeseries`.
const MAD_FLOOR: f64 = 1e-9;

/// Runs the population-bias check for one item.
///
/// The treated entity's pre-window samples are compared against the pooled
/// pre-window samples of every control member (pooling matches what the
/// DiD estimator's control-pre cell sees). Divergence is measured in the
/// pool's own MAD units so the threshold is scale-free across KPI kinds.
pub fn bias_check(config: &DiagConfig, item: &ItemInput) -> BiasCheck {
    let members = item.control_members.len();
    if members == 0 || item.treated_pre.is_empty() {
        return BiasCheck {
            flag: BiasFlag::NoControl,
            members,
            treated_median: median(&item.treated_pre),
            control_median: 0.0,
            control_mad: 0.0,
            median_divergence: 0.0,
            treated_coverage: item.treated_pre_coverage,
            control_coverage: 0.0,
            coverage_divergence: 0.0,
        };
    }

    let pooled: Vec<f64> = item
        .control_members
        .iter()
        .flat_map(|m| m.pre.iter().copied())
        .collect();
    let treated_median = median(&item.treated_pre);
    let control_median = median(&pooled);
    let control_mad = mad(&pooled);
    let median_divergence = (treated_median - control_median).abs() / control_mad.max(MAD_FLOOR);

    let control_coverage =
        stable_sum(item.control_members.iter().map(|m| m.coverage)) / members as f64;
    let coverage_divergence = (item.treated_pre_coverage - control_coverage).abs();

    let mismatch = median_divergence > config.max_median_divergence
        || coverage_divergence > config.max_coverage_divergence;
    BiasCheck {
        flag: if mismatch {
            BiasFlag::PopulationMismatch
        } else {
            BiasFlag::Clean
        },
        members,
        treated_median,
        control_median,
        control_mad,
        median_divergence,
        treated_coverage: item.treated_pre_coverage,
        control_coverage,
        coverage_divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{ControlMember, ItemVerdict};

    fn item(treated_pre: Vec<f64>, members: Vec<ControlMember>) -> ItemInput {
        ItemInput {
            label: "instance t#0 / page_view_response_delay".into(),
            entity_class: "instance",
            zone: Some(0),
            kind: "page_view_response_delay".into(),
            verdict: ItemVerdict::Caused,
            mode: "dark_launch_control",
            alpha: Some(60.0),
            std_err: Some(1.0),
            t_stat: Some(60.0),
            ci95: Some((58.0, 62.0)),
            cell_means: None,
            detection: None,
            coverage: 1.0,
            gaps: Vec::new(),
            quality: Vec::new(),
            window: (0, 120),
            sst_trace: Vec::new(),
            treated_pre,
            treated_pre_coverage: 1.0,
            control_members: members,
        }
    }

    fn noisy(base: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| base + (i % 7) as f64 * 0.5).collect()
    }

    #[test]
    fn honest_pool_is_clean() {
        let members = (0..4)
            .map(|i| ControlMember {
                label: format!("instance c#{i}"),
                pre: noisy(180.0, 60),
                coverage: 1.0,
            })
            .collect();
        let check = bias_check(&DiagConfig::default(), &item(noisy(180.0, 60), members));
        assert_eq!(check.flag, BiasFlag::Clean);
        assert!(check.median_divergence < 1.0, "{check:?}");
    }

    #[test]
    fn shifted_pool_flags_population_mismatch() {
        // The pool sits +40 above the treated entity in BOTH DiD periods:
        // the difference-in-differences cancels it, so the verdict stays
        // Caused — exactly the bias the check exists to surface.
        let members = (0..4)
            .map(|i| ControlMember {
                label: format!("instance c#{i}"),
                pre: noisy(220.0, 60),
                coverage: 1.0,
            })
            .collect();
        let check = bias_check(&DiagConfig::default(), &item(noisy(180.0, 60), members));
        assert_eq!(check.flag, BiasFlag::PopulationMismatch);
        assert!(check.median_divergence > 3.0, "{check:?}");
    }

    #[test]
    fn coverage_skew_alone_flags_mismatch() {
        let members = (0..4)
            .map(|i| ControlMember {
                label: format!("instance c#{i}"),
                pre: noisy(180.0, 60),
                coverage: 0.5,
            })
            .collect();
        let check = bias_check(&DiagConfig::default(), &item(noisy(180.0, 60), members));
        assert_eq!(check.flag, BiasFlag::PopulationMismatch);
        assert!(check.coverage_divergence > 0.35, "{check:?}");
    }

    #[test]
    fn empty_pool_reports_no_control() {
        let check = bias_check(&DiagConfig::default(), &item(noisy(180.0, 60), Vec::new()));
        assert_eq!(check.flag, BiasFlag::NoControl);
        assert_eq!(check.members, 0);
    }

    #[test]
    fn constant_pool_stays_finite() {
        let members = vec![ControlMember {
            label: "instance c#0".into(),
            pre: vec![100.0; 30],
            coverage: 1.0,
        }];
        let check = bias_check(&DiagConfig::default(), &item(vec![100.0; 30], members));
        assert!(check.median_divergence.is_finite());
        assert_eq!(check.flag, BiasFlag::Clean);
    }
}
