//! The diagnosis artifact: byte-stable JSON plus a human rendering.
//!
//! The JSON printer follows the workspace's `ObsReport::to_json`
//! discipline: hand-rolled, fixed field order, collections already in
//! deterministic order by construction, floats printed with Rust's
//! shortest-roundtrip `{}` formatting. Non-finite floats (a t-statistic is
//! ±∞ when the residual variance is zero) serialize as `null` — JSON has
//! no Infinity literal, and a parser-breaking artifact would be worse than
//! a lossy one.

use crate::bias::BiasCheck;
use crate::ranking::ContributionRow;
use std::fmt::Write as _;
use std::path::Path;

/// The default report path the examples and CI smoke write to.
pub const DEFAULT_PATH: &str = "results/diag_report.json";

/// Schema version stamped into every diagnosis report.
pub const SCHEMA_VERSION: u32 = 1;

/// The evidence dossier for one diagnosed item: everything the operator
/// needs to weigh the verdict without re-running the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// DiD effect estimate α (normalized units), when determination ran.
    pub alpha: Option<f64>,
    /// OLS standard error of α.
    pub std_err: Option<f64>,
    /// t-statistic of α.
    pub t_stat: Option<f64>,
    /// 95% confidence interval on α.
    pub ci95: Option<(f64, f64)>,
    /// DiD cell means `[treated_pre, treated_post, control_pre,
    /// control_post]`.
    pub cell_means: Option<[f64; 4]>,
    /// Minute the persistence rule declared the change.
    pub declared_at: Option<u64>,
    /// Minute the score first exceeded the threshold.
    pub first_exceeded_at: Option<u64>,
    /// Peak filtered SST score in the persistent run.
    pub peak_score: Option<f64>,
    /// Minutes from deployment to declaration.
    pub detection_latency: Option<u64>,
    /// Fraction of the assessment window backed by real measurements.
    pub coverage: f64,
    /// The `[from, to)` assessment window.
    pub window: (u64, u64),
    /// Unmeasured spans `[from, to)` inside the window.
    pub gaps: Vec<(u64, u64)>,
    /// Data-quality screening labels.
    pub quality: Vec<String>,
    /// SST score trace around the change point (`[minute, score]` pairs).
    pub sst_trace: Vec<(u64, f64)>,
    /// Control-pool membership: `(label, pre-window coverage)` per member.
    pub control_members: Vec<(String, f64)>,
}

/// One diagnosed item: verdict context, bias check, evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemDiagnosis {
    /// Operator-facing item identity.
    pub label: String,
    /// Verdict label ("caused", "inconclusive",
    /// "inconclusive_awaiting_backfill").
    pub verdict: String,
    /// Control-group mode label.
    pub mode: String,
    /// The entity's zone under the configured striping, when it has one.
    pub zone: Option<u32>,
    /// The population-bias check.
    pub bias: BiasCheck,
    /// The evidence dossier.
    pub evidence: Evidence,
}

/// The full diagnosis of one change.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagReport {
    /// The diagnosed change's id.
    pub change_id: u32,
    /// The deployment minute.
    pub change_minute: u64,
    /// The changed service's name.
    pub service: String,
    /// The change-log description.
    pub description: String,
    /// Contribution ranking, largest share first.
    pub ranking: Vec<ContributionRow>,
    /// Per-item diagnoses, in report (key) order.
    pub items: Vec<ItemDiagnosis>,
}

impl DiagReport {
    /// Items whose bias check flagged a population mismatch.
    pub fn mismatch_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| i.bias.flag == crate::bias::BiasFlag::PopulationMismatch)
            .count()
    }

    /// Serializes the report as byte-stable JSON (fixed field order,
    /// shortest-roundtrip floats, `null` for non-finite values).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema_version\": ");
        let _ = write!(out, "{SCHEMA_VERSION}");
        let _ = write!(
            out,
            ",\n  \"change\": {{\"id\": {}, \"minute\": {}, \"service\": ",
            self.change_id, self.change_minute
        );
        push_str_json(&mut out, &self.service);
        out.push_str(", \"description\": ");
        push_str_json(&mut out, &self.description);
        out.push_str("},\n  \"ranking\": [");
        for (i, row) in self.ranking.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            out.push_str("{\"entity_class\": ");
            push_str_json(&mut out, &row.entity_class);
            out.push_str(", \"zone\": ");
            push_str_json(&mut out, &row.zone);
            out.push_str(", \"kind\": ");
            push_str_json(&mut out, &row.kind);
            let _ = write!(out, ", \"items\": {}, \"weight\": ", row.items);
            push_f64(&mut out, row.weight);
            out.push_str(", \"share\": ");
            push_f64(&mut out, row.share);
            out.push('}');
        }
        out.push_str(if self.ranking.is_empty() {
            "],\n  \"items\": ["
        } else {
            "\n  ],\n  \"items\": ["
        });
        for (i, item) in self.items.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_item(&mut out, item);
        }
        out.push_str(if self.items.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }

    /// Writes [`DiagReport::to_json`] to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Renders the report as a plain-text operator summary — the "why and
    /// where" companion to the assessment report's "what".
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diagnosis for change #{} ({}, {:?}) deployed @ minute {}",
            self.change_id, self.service, self.description, self.change_minute
        );
        if self.ranking.is_empty() {
            out.push_str("  no attributed effect to rank\n");
        } else {
            out.push_str("  contribution ranking (share of |α| mass):\n");
            for (i, row) in self.ranking.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    {}. {:>5.1}%  {} / {} / {}  ({} item(s), |α| {:.2})",
                    i + 1,
                    row.share * 100.0,
                    row.entity_class,
                    row.zone,
                    row.kind,
                    row.items,
                    row.weight
                );
            }
        }
        for item in &self.items {
            let _ = writeln!(out, "  {} [{}]", item.label, item.verdict);
            let b = &item.bias;
            let _ = writeln!(
                out,
                "    bias: {} (median divergence {:.2} MAD, coverage Δ {:.2}, {} control member(s), {})",
                b.flag.label(),
                b.median_divergence,
                b.coverage_divergence,
                b.members,
                item.mode
            );
            let e = &item.evidence;
            if let (Some(alpha), Some((lo, hi))) = (e.alpha, e.ci95) {
                let t = e
                    .t_stat
                    .map(|t| format!("{t:.1}"))
                    .unwrap_or_else(|| "n/a".into());
                let _ = writeln!(
                    out,
                    "    effect: α={alpha:+.2} (95% CI [{lo:+.2}, {hi:+.2}], t={t})"
                );
            }
            match (e.declared_at, e.detection_latency) {
                (Some(at), Some(latency)) => {
                    let peak = e.peak_score.unwrap_or(0.0);
                    let _ = writeln!(
                        out,
                        "    detected @{at} ({latency} min after deploy, peak score {peak:.2}), coverage {:.0}%",
                        e.coverage * 100.0
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "    no detection declared, coverage {:.0}%",
                        e.coverage * 100.0
                    );
                }
            }
            if !e.quality.is_empty() {
                let _ = writeln!(out, "    quality flags: {}", e.quality.join(", "));
            }
            if !e.gaps.is_empty() {
                let spans: Vec<String> =
                    e.gaps.iter().map(|(a, b)| format!("[{a}, {b})")).collect();
                let _ = writeln!(out, "    unmeasured spans: {}", spans.join(" "));
            }
        }
        out
    }
}

fn push_item(out: &mut String, item: &ItemDiagnosis) {
    out.push_str("{\"label\": ");
    push_str_json(out, &item.label);
    out.push_str(", \"verdict\": ");
    push_str_json(out, &item.verdict);
    out.push_str(", \"mode\": ");
    push_str_json(out, &item.mode);
    out.push_str(", \"zone\": ");
    match item.zone {
        Some(z) => {
            let _ = write!(out, "{z}");
        }
        None => out.push_str("null"),
    }
    let b = &item.bias;
    out.push_str(", \"bias\": {\"flag\": ");
    push_str_json(out, b.flag.label());
    let _ = write!(out, ", \"members\": {}, \"treated_median\": ", b.members);
    push_f64(out, b.treated_median);
    out.push_str(", \"control_median\": ");
    push_f64(out, b.control_median);
    out.push_str(", \"control_mad\": ");
    push_f64(out, b.control_mad);
    out.push_str(", \"median_divergence\": ");
    push_f64(out, b.median_divergence);
    out.push_str(", \"treated_coverage\": ");
    push_f64(out, b.treated_coverage);
    out.push_str(", \"control_coverage\": ");
    push_f64(out, b.control_coverage);
    out.push_str(", \"coverage_divergence\": ");
    push_f64(out, b.coverage_divergence);
    out.push_str("}, \"evidence\": {\"alpha\": ");
    let e = &item.evidence;
    push_opt_f64(out, e.alpha);
    out.push_str(", \"std_err\": ");
    push_opt_f64(out, e.std_err);
    out.push_str(", \"t_stat\": ");
    push_opt_f64(out, e.t_stat);
    out.push_str(", \"ci95\": ");
    match e.ci95 {
        Some((lo, hi)) => {
            out.push('[');
            push_f64(out, lo);
            out.push_str(", ");
            push_f64(out, hi);
            out.push(']');
        }
        None => out.push_str("null"),
    }
    out.push_str(", \"cell_means\": ");
    match e.cell_means {
        Some(cells) => {
            out.push('[');
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_f64(out, *c);
            }
            out.push(']');
        }
        None => out.push_str("null"),
    }
    out.push_str(", \"declared_at\": ");
    push_opt_u64(out, e.declared_at);
    out.push_str(", \"first_exceeded_at\": ");
    push_opt_u64(out, e.first_exceeded_at);
    out.push_str(", \"peak_score\": ");
    push_opt_f64(out, e.peak_score);
    out.push_str(", \"detection_latency\": ");
    push_opt_u64(out, e.detection_latency);
    out.push_str(", \"coverage\": ");
    push_f64(out, e.coverage);
    let _ = write!(out, ", \"window\": [{}, {}]", e.window.0, e.window.1);
    out.push_str(", \"gaps\": [");
    for (i, (a, b)) in e.gaps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{a}, {b}]");
    }
    out.push_str("], \"quality\": [");
    for (i, q) in e.quality.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_str_json(out, q);
    }
    out.push_str("], \"sst_trace\": [");
    for (i, (minute, score)) in e.sst_trace.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{minute}, ");
        push_f64(out, *score);
        out.push(']');
    }
    out.push_str("], \"control_members\": [");
    for (i, (label, coverage)) in e.control_members.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('[');
        push_str_json(out, label);
        out.push_str(", ");
        push_f64(out, *coverage);
        out.push(']');
    }
    out.push_str("]}}");
}

/// Writes a finite float with shortest-roundtrip formatting, `null`
/// otherwise (JSON cannot represent NaN/±∞).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Minimal JSON string escaping: quotes, backslashes, and control bytes
/// (labels are ASCII identifiers in practice, but the writer must never
/// emit malformed JSON on any input).
fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::{BiasCheck, BiasFlag};

    fn sample_report() -> DiagReport {
        DiagReport {
            change_id: 7,
            change_minute: 10620,
            service: "prod.search".into(),
            description: "search ranker v4".into(),
            ranking: vec![ContributionRow {
                entity_class: "instance".into(),
                zone: "zone1".into(),
                kind: "page_view_response_delay".into(),
                items: 1,
                weight: 31.5,
                share: 1.0,
            }],
            items: vec![ItemDiagnosis {
                label: "instance prod.search#1 / page_view_response_delay".into(),
                verdict: "caused".into(),
                mode: "dark_launch_control".into(),
                zone: Some(1),
                bias: BiasCheck {
                    flag: BiasFlag::Clean,
                    members: 6,
                    treated_median: 180.25,
                    control_median: 180.5,
                    control_mad: 1.5,
                    median_divergence: 0.1666,
                    treated_coverage: 0.95,
                    control_coverage: 0.94,
                    coverage_divergence: 0.01,
                },
                evidence: Evidence {
                    alpha: Some(31.5),
                    std_err: Some(0.0),
                    t_stat: Some(f64::INFINITY),
                    ci95: Some((31.5, 31.5)),
                    cell_means: Some([180.0, 240.0, 181.0, 181.5]),
                    declared_at: Some(10627),
                    first_exceeded_at: Some(10621),
                    peak_score: Some(0.93),
                    detection_latency: Some(7),
                    coverage: 0.95,
                    window: (10518, 10681),
                    gaps: vec![(10530, 10532)],
                    quality: vec!["MostlyZero".into()],
                    sst_trace: vec![(10620, 0.1), (10621, 0.9)],
                    control_members: vec![("instance prod.search#5".into(), 0.94)],
                },
            }],
        }
    }

    #[test]
    fn json_is_stable_and_handles_non_finite() {
        let r = sample_report();
        let a = r.to_json();
        let b = r.clone().to_json();
        assert_eq!(a, b);
        // ±∞ t-stat must serialize as null, never as a bare Infinity.
        assert!(a.contains("\"t_stat\": null"), "{a}");
        assert!(!a.contains("inf"), "{a}");
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\"sst_trace\": [[10620, 0.1], [10621, 0.9]]"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = DiagReport {
            change_id: 0,
            change_minute: 0,
            service: "s".into(),
            description: String::new(),
            ranking: Vec::new(),
            items: Vec::new(),
        };
        let json = r.to_json();
        assert!(json.contains("\"ranking\": []"));
        assert!(json.contains("\"items\": []"));
        assert_eq!(r.mismatch_count(), 0);
    }

    #[test]
    fn string_escaping_covers_quotes_and_controls() {
        let mut out = String::new();
        push_str_json(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn render_mentions_ranking_bias_and_effect() {
        let text = sample_report().render();
        assert!(text.contains("contribution ranking"));
        assert!(text.contains("bias: clean"));
        assert!(text.contains("α=+31.50"));
        assert!(text.contains("detected @10627"));
    }
}
