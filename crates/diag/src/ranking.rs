//! Contribution ranking: where does the regression concentrate?
//!
//! Lumos-style hierarchical drill-down, flattened to one deterministic
//! table: every `Caused` item with an effect estimate is bucketed by
//! `(entity class, zone, KPI kind)` and each bucket's share of the total
//! |α| mass is reported. Operators read the top rows as "the regression
//! lives in *these* instances / *this* zone / *this* KPI" and drill into
//! the per-item dossiers from there.

use crate::input::{ItemInput, ItemVerdict};
use funnel_timeseries::stats::stable_sum;
use std::collections::BTreeMap;

/// One row of the contribution ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct ContributionRow {
    /// Entity class: "server", "instance", or "service".
    pub entity_class: String,
    /// Zone label ("zone0", …; "-" for entities without a zone).
    pub zone: String,
    /// KPI kind name.
    pub kind: String,
    /// Caused items in this bucket.
    pub items: usize,
    /// Summed |α| over the bucket's items (normalized units).
    pub weight: f64,
    /// `weight / Σ weight` across all buckets (0 when nothing was caused).
    pub share: f64,
}

/// Ranks `(entity class, zone, kind)` buckets by their share of the total
/// effect mass.
///
/// Determinism: items arrive in report (key) order; buckets accumulate in
/// a `BTreeMap` keyed by the label triple and each bucket's weight is a
/// Neumaier sum over that fixed order, so the table is byte-identical for
/// any upstream worker count. Rows sort by share descending (total order
/// on f64), ties broken by the label triple ascending.
pub fn rank_contributions(items: &[ItemInput]) -> Vec<ContributionRow> {
    let mut buckets: BTreeMap<(String, String, String), (usize, Vec<f64>)> = BTreeMap::new();
    for item in items {
        if item.verdict != ItemVerdict::Caused {
            continue;
        }
        let Some(alpha) = item.alpha else {
            continue;
        };
        let zone = match item.zone {
            Some(z) => format!("zone{z}"),
            None => "-".to_string(),
        };
        let key = (item.entity_class.to_string(), zone, item.kind.clone());
        let bucket = buckets.entry(key).or_insert((0, Vec::new()));
        bucket.0 += 1;
        bucket.1.push(alpha.abs());
    }

    let mut rows: Vec<ContributionRow> = buckets
        .into_iter()
        .map(
            |((entity_class, zone, kind), (items, alphas))| ContributionRow {
                entity_class,
                zone,
                kind,
                items,
                weight: stable_sum(alphas),
                share: 0.0,
            },
        )
        .collect();
    let total = stable_sum(rows.iter().map(|r| r.weight));
    if total > 0.0 {
        for row in &mut rows {
            row.share = row.weight / total;
        }
    }
    rows.sort_by(|a, b| {
        b.share.total_cmp(&a.share).then_with(|| {
            (&a.entity_class, &a.zone, &a.kind).cmp(&(&b.entity_class, &b.zone, &b.kind))
        })
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caused(entity_class: &'static str, zone: Option<u32>, kind: &str, alpha: f64) -> ItemInput {
        ItemInput {
            label: format!("{entity_class} x / {kind}"),
            entity_class,
            zone,
            kind: kind.into(),
            verdict: ItemVerdict::Caused,
            mode: "dark_launch_control",
            alpha: Some(alpha),
            std_err: None,
            t_stat: None,
            ci95: None,
            cell_means: None,
            detection: None,
            coverage: 1.0,
            gaps: Vec::new(),
            quality: Vec::new(),
            window: (0, 1),
            sst_trace: Vec::new(),
            treated_pre: Vec::new(),
            treated_pre_coverage: 1.0,
            control_members: Vec::new(),
        }
    }

    #[test]
    fn shares_sum_to_one_and_sort_descending() {
        let items = vec![
            caused("instance", Some(1), "page_view_response_delay", 30.0),
            caused("instance", Some(3), "page_view_response_delay", 10.0),
            caused("service", None, "page_view_response_delay", 20.0),
        ];
        let rows = rank_contributions(&items);
        assert_eq!(rows.len(), 3);
        let total: f64 = stable_sum(rows.iter().map(|r| r.share));
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].zone, "zone1");
        assert_eq!(rows[1].entity_class, "service");
        assert_eq!(rows[2].zone, "zone3");
        assert!(rows[0].share >= rows[1].share && rows[1].share >= rows[2].share);
    }

    #[test]
    fn same_bucket_accumulates() {
        let items = vec![
            caused("instance", Some(0), "k", 5.0),
            caused("instance", Some(0), "k", 7.0),
        ];
        let rows = rank_contributions(&items);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].items, 2);
        assert_eq!(rows[0].weight, 12.0);
        assert_eq!(rows[0].share, 1.0);
    }

    #[test]
    fn non_caused_and_estimate_free_items_are_ignored() {
        let mut inconclusive = caused("instance", Some(0), "k", 5.0);
        inconclusive.verdict = ItemVerdict::Inconclusive {
            awaiting_backfill: false,
        };
        let mut no_alpha = caused("instance", Some(1), "k", 5.0);
        no_alpha.alpha = None;
        assert!(rank_contributions(&[inconclusive, no_alpha]).is_empty());
    }
}
