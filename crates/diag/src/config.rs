//! Diagnosis knobs.

/// Configuration of the diagnosis pass.
///
/// Diagnosis is strictly opt-in (`enabled` defaults to `false`): the
/// assessment pipeline's verdicts are computed first and never consulted,
/// mutated, or re-ordered by this layer, so enabling it cannot perturb a
/// report — the `diag_determinism` suite byte-compares assessments with the
/// pass on and off to keep that invariant honest.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagConfig {
    /// Whether the diagnosis pass runs at all.
    pub enabled: bool,
    /// Also diagnose `Inconclusive` items (their evidence dossier explains
    /// *why* no verdict exists: coverage, gaps, shed history). `Caused`
    /// items are always diagnosed.
    pub include_inconclusive: bool,
    /// Population-bias threshold on the median divergence between the
    /// treated entity's pre-window samples and the pooled control-pool
    /// pre-window samples, in units of the pool's MAD. Above it the item
    /// is flagged [`crate::bias::BiasFlag::PopulationMismatch`]: the
    /// control pool was not exchangeable with the treated entity *before*
    /// the change, so the DiD counterfactual rests on a shifted population
    /// (Lumos's bias stage).
    pub max_median_divergence: f64,
    /// Population-bias threshold on |treated coverage − control coverage|
    /// over the pre window. Mirrors the DiD engine's
    /// `max_coverage_divergence` member-exclusion rule: a pool measured
    /// much more (or less) completely than the treated entity is
    /// contrasting fills against data.
    pub max_coverage_divergence: f64,
    /// Half-width, in minutes, of the SST score trace captured around the
    /// detection point for the evidence dossier. The trace re-scores only
    /// `2·trace_radius + 1` windows, which is what keeps the whole pass
    /// cheap relative to assessment (the `diag_sweep` bench gates it).
    pub trace_radius: u64,
    /// Zone count for the contribution ranking's shard/zone dimension
    /// (servers are striped `server_id % zones`, matching the simulator's
    /// replay-shard striping).
    pub zones: u32,
}

impl DiagConfig {
    /// The default thresholds with the pass switched on.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

impl Default for DiagConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            include_inconclusive: false,
            max_median_divergence: 3.0,
            max_coverage_divergence: 0.35,
            trace_radius: 15,
            zones: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_with_did_matched_coverage_bar() {
        let c = DiagConfig::default();
        assert!(!c.enabled);
        assert!(!c.include_inconclusive);
        assert_eq!(c.max_median_divergence, 3.0);
        // Mirrors DidConfig::default().max_coverage_divergence.
        assert_eq!(c.max_coverage_divergence, 0.35);
        assert_eq!(c.trace_radius, 15);
        assert_eq!(c.zones, 4);
        assert!(DiagConfig::on().enabled);
    }
}
