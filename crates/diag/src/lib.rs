//! Impact diagnosis and explanation for FUNNEL verdicts.
//!
//! The assessment pipeline (paper Fig. 3) stops at a verdict: "this KPI
//! was changed by this software change". Operators deciding whether to
//! roll back need *why* and *where* — is the counterfactual trustworthy,
//! which part of the fleet carries the regression, and what evidence backs
//! the number. This crate is that layer, run strictly *after* (and
//! read-only over) assessment:
//!
//! 1. **Population-bias check** ([`bias`]) — Lumos-style exchangeability
//!    test of the treated entity against its control pool over the
//!    pre-change window; a pool that was already shifted before the
//!    deployment flags [`BiasFlag::PopulationMismatch`].
//! 2. **Contribution ranking** ([`ranking`]) — which
//!    `(entity class, zone, KPI kind)` buckets carry the effect mass,
//!    largest share first.
//! 3. **Evidence dossier** ([`report::Evidence`]) — effect size with CI,
//!    detection latency, the SST score trace around the change point,
//!    coverage/gap/quality provenance, and the control-pool membership.
//!
//! Everything is a pure function of [`ChangeInput`] (pre-digested by the
//! caller — `funnel-core`'s `diagnose` module does the conversion), and
//! the emitted [`DiagReport`] serializes to byte-stable JSON: same input,
//! same bytes, at any worker count, on any platform.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bias;
pub mod config;
pub mod input;
pub mod ranking;
pub mod report;

pub use bias::{bias_check, BiasCheck, BiasFlag};
pub use config::DiagConfig;
pub use input::{ChangeInput, ControlMember, DetectionInput, ItemInput, ItemVerdict};
pub use ranking::{rank_contributions, ContributionRow};
pub use report::{DiagReport, Evidence, ItemDiagnosis, DEFAULT_PATH, SCHEMA_VERSION};

/// Diagnoses one pre-digested change assessment: bias-checks every item,
/// ranks contributions, and assembles the evidence dossiers into a
/// [`DiagReport`].
///
/// Deterministic and panic-free: items are processed in their (report)
/// order, all aggregation goes through ordered containers and Neumaier
/// sums, and no input — empty pools, constant series, non-finite
/// statistics — can fault the pass (it is a `funnel-lint` L7 entry point).
pub fn diagnose_change(config: &DiagConfig, input: &ChangeInput) -> DiagReport {
    let items = input
        .items
        .iter()
        .map(|item| report::ItemDiagnosis {
            label: item.label.clone(),
            verdict: item.verdict.label().to_string(),
            mode: item.mode.to_string(),
            zone: item.zone,
            bias: bias_check(config, item),
            evidence: report::Evidence {
                alpha: item.alpha,
                std_err: item.std_err,
                t_stat: item.t_stat,
                ci95: item.ci95,
                cell_means: item.cell_means,
                declared_at: item.detection.map(|d| d.declared_at),
                first_exceeded_at: item.detection.map(|d| d.first_exceeded_at),
                peak_score: item.detection.map(|d| d.peak_score),
                detection_latency: item
                    .detection
                    .map(|d| d.declared_at.saturating_sub(input.change_minute)),
                coverage: item.coverage,
                window: item.window,
                gaps: item.gaps.clone(),
                quality: item.quality.clone(),
                sst_trace: item.sst_trace.clone(),
                control_members: item
                    .control_members
                    .iter()
                    .map(|m| (m.label.clone(), m.coverage))
                    .collect(),
            },
        })
        .collect();
    DiagReport {
        change_id: input.change_id,
        change_minute: input.change_minute,
        service: input.service.clone(),
        description: input.description.clone(),
        ranking: rank_contributions(&input.items),
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnose_empty_change_is_total() {
        let input = ChangeInput {
            change_id: 3,
            change_minute: 100,
            service: "svc".into(),
            description: "noop".into(),
            items: Vec::new(),
        };
        let report = diagnose_change(&DiagConfig::on(), &input);
        assert_eq!(report.change_id, 3);
        assert!(report.items.is_empty());
        assert!(report.ranking.is_empty());
        assert!(report.to_json().contains("\"items\": []"));
    }

    #[test]
    fn detection_latency_is_declared_minus_change() {
        let input = ChangeInput {
            change_id: 0,
            change_minute: 1000,
            service: "svc".into(),
            description: String::new(),
            items: vec![ItemInput {
                label: "instance svc#0 / k".into(),
                entity_class: "instance",
                zone: Some(0),
                kind: "k".into(),
                verdict: ItemVerdict::Caused,
                mode: "dark_launch_control",
                alpha: Some(10.0),
                std_err: Some(1.0),
                t_stat: Some(10.0),
                ci95: Some((8.0, 12.0)),
                cell_means: None,
                detection: Some(DetectionInput {
                    declared_at: 1007,
                    first_exceeded_at: 1001,
                    peak_score: 0.8,
                }),
                coverage: 1.0,
                gaps: Vec::new(),
                quality: Vec::new(),
                window: (900, 1061),
                sst_trace: Vec::new(),
                treated_pre: vec![1.0, 2.0, 3.0, 4.0],
                treated_pre_coverage: 1.0,
                control_members: vec![ControlMember {
                    label: "instance svc#1".into(),
                    pre: vec![1.0, 2.0, 3.0, 4.0],
                    coverage: 1.0,
                }],
            }],
        };
        let report = diagnose_change(&DiagConfig::on(), &input);
        assert_eq!(report.items.len(), 1);
        assert_eq!(report.items[0].evidence.detection_latency, Some(7));
        assert_eq!(report.items[0].bias.flag, BiasFlag::Clean);
        assert_eq!(report.ranking.len(), 1);
    }
}
