//! The diagnosis layer's input: a pre-digested view of one change
//! assessment.
//!
//! `funnel-diag` deliberately depends on nothing but `funnel-timeseries`:
//! the assessment pipeline (or any other caller) converts its own types
//! into these plain structs, so the diagnosis math stays a pure, separately
//! testable function of data — no topology lookups, no store reads, no
//! verdict re-derivation.

use funnel_timeseries::series::MinuteBin;

/// The verdict class of one diagnosed item, as decided by the assessment
/// pipeline. Diagnosis never re-derives or overrides it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemVerdict {
    /// The KPI change was attributed to the software change.
    Caused,
    /// The telemetry was too degraded to decide either way.
    Inconclusive {
        /// Whether a healed partition span could still upgrade the item.
        awaiting_backfill: bool,
    },
}

impl ItemVerdict {
    /// The stable label serialized into the report.
    pub fn label(self) -> &'static str {
        match self {
            ItemVerdict::Caused => "caused",
            ItemVerdict::Inconclusive {
                awaiting_backfill: true,
            } => "inconclusive_awaiting_backfill",
            ItemVerdict::Inconclusive {
                awaiting_backfill: false,
            } => "inconclusive",
        }
    }
}

/// One member of the control pool the item's counterfactual was built
/// from, with its pre-window samples for the bias check.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlMember {
    /// Human-readable member identity ("instance prod.search#5" for a
    /// dark-launch member, "history:-3d" for a seasonal window).
    pub label: String,
    /// The member's samples over the pre-change DiD period.
    pub pre: Vec<f64>,
    /// Fraction of the pre window the member really measured.
    pub coverage: f64,
}

/// The detection evidence attached to an item, when the SST declared one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionInput {
    /// Minute the persistence rule declared the change.
    pub declared_at: MinuteBin,
    /// Minute the score first exceeded the threshold.
    pub first_exceeded_at: MinuteBin,
    /// Peak filtered score in the persistent run.
    pub peak_score: f64,
}

/// Everything the diagnosis pass needs to know about one assessed item.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemInput {
    /// Operator-facing item identity ("instance prod.search#1 /
    /// page_view_response_delay").
    pub label: String,
    /// Entity class for the contribution ranking: "server", "instance",
    /// or "service".
    pub entity_class: &'static str,
    /// The entity's zone under the configured striping, when it maps to
    /// one (services aggregate across zones and carry `None`).
    pub zone: Option<u32>,
    /// KPI kind name (snake_case).
    pub kind: String,
    /// The pipeline's verdict for the item.
    pub verdict: ItemVerdict,
    /// Which control group decided causality: "dark_launch_control" or
    /// "seasonal_history".
    pub mode: &'static str,
    /// DiD effect estimate α, when causality determination ran.
    pub alpha: Option<f64>,
    /// OLS standard error of α.
    pub std_err: Option<f64>,
    /// `alpha / std_err` (±∞ when the residual variance is zero).
    pub t_stat: Option<f64>,
    /// 95% confidence interval on α.
    pub ci95: Option<(f64, f64)>,
    /// DiD cell means `[treated_pre, treated_post, control_pre,
    /// control_post]`.
    pub cell_means: Option<[f64; 4]>,
    /// The SST detection, when one was declared.
    pub detection: Option<DetectionInput>,
    /// Fraction of the assessment window backed by real measurements.
    pub coverage: f64,
    /// Unmeasured spans `[from, to)` inside the assessment window.
    pub gaps: Vec<(MinuteBin, MinuteBin)>,
    /// Data-quality screening labels ("Constant", "LoadShed", …).
    pub quality: Vec<String>,
    /// The `[from, to)` assessment window the verdict rests on.
    pub window: (MinuteBin, MinuteBin),
    /// SST score trace around the change point: `(decision_minute, score)`
    /// pairs in ascending minute order.
    pub sst_trace: Vec<(MinuteBin, f64)>,
    /// The treated entity's samples over the pre-change DiD period (pooled
    /// across treated instances for service-level items).
    pub treated_pre: Vec<f64>,
    /// Fraction of the pre window the treated entity really measured.
    pub treated_pre_coverage: f64,
    /// The control pool the counterfactual was built from.
    pub control_members: Vec<ControlMember>,
}

/// One change assessment, pre-digested for diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeInput {
    /// The change's id.
    pub change_id: u32,
    /// The deployment minute.
    pub change_minute: MinuteBin,
    /// The changed service's name.
    pub service: String,
    /// The change-log description.
    pub description: String,
    /// The items selected for diagnosis, in report (key) order.
    pub items: Vec<ItemInput>,
}
