//! Criterion benchmarks for end-to-end pipeline stages: impact-set
//! identification, a full change assessment, and DiD estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use funnel_core::pipeline::Funnel;
use funnel_did::did_estimate;
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::kpi::KpiKind;
use funnel_sim::world::{SimConfig, WorldBuilder};
use funnel_topology::change::ChangeKind;
use funnel_topology::impact::identify_impact_set;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut b = WorldBuilder::new(SimConfig::days(99, 8));
    let svc = b.add_service("bench.svc", 8).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        80.0,
    );
    let change = b
        .deploy_change(ChangeKind::Upgrade, svc, 3, 7 * 1440 + 200, effect, "bench")
        .unwrap();
    let world = b.build();
    let record = world.change_log().get(change).unwrap().clone();
    let funnel = Funnel::paper_default();

    c.bench_function("impact_set_identification", |bch| {
        bch.iter(|| black_box(identify_impact_set(world.topology(), black_box(&record))))
    });

    let mut g = c.benchmark_group("assessment");
    g.sample_size(10);
    g.bench_function("assess_change_full", |bch| {
        bch.iter(|| black_box(funnel.assess_change(&world, change).unwrap()))
    });
    g.finish();

    let tp: Vec<f64> = (0..60).map(|i| 10.0 + (i % 7) as f64 * 0.1).collect();
    let tq: Vec<f64> = tp.iter().map(|x| x + 5.0).collect();
    c.bench_function("did_estimate_240_samples", |bch| {
        bch.iter(|| {
            black_box(did_estimate(
                black_box(&tp),
                black_box(&tq),
                black_box(&tp),
                black_box(&tp),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_pipeline
}
criterion_main!(benches);
