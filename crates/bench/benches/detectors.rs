//! Criterion benchmarks for the per-window detector costs (Table 2's
//! measurement, statistically rigorous).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funnel_detect::cusum::CusumDetector;
use funnel_detect::mrls::MrlsDetector;
use funnel_detect::sst_adapter::SstDetector;
use funnel_detect::WindowScorer;
use funnel_sst::{ClassicSst, FastSst, RobustSst, SstConfig};
use funnel_timeseries::generate::{KpiClass, KpiGenerator};
use std::hint::black_box;

fn window_for(len: usize) -> Vec<f64> {
    KpiGenerator::for_class(KpiClass::Variable, 500.0)
        .generate(0, len, 0xBEEF)
        .values()
        .to_vec()
}

fn bench_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("per_window");

    let fast = SstDetector::fast(FastSst::new(SstConfig::paper_default()));
    let w = window_for(fast.window_len());
    g.bench_function("funnel_fast_sst_w34", |b| {
        b.iter(|| black_box(fast.score(black_box(&w))))
    });

    let robust = SstDetector::robust(RobustSst::new(SstConfig::paper_default()));
    g.bench_function("exact_robust_sst_w34", |b| {
        b.iter(|| black_box(robust.score(black_box(&w))))
    });

    let classic = SstDetector::classic(ClassicSst::new(SstConfig::paper_default()));
    g.bench_function("classic_sst_w34", |b| {
        b.iter(|| black_box(classic.score(black_box(&w))))
    });

    let cusum = CusumDetector::paper_default();
    let wc = window_for(cusum.window_len());
    g.bench_function("cusum_bootstrap_w60", |b| {
        b.iter(|| black_box(cusum.score(black_box(&wc))))
    });

    let cusum_raw = CusumDetector::with_params(60, 30, 0.5, None);
    g.bench_function("cusum_raw_w60", |b| {
        b.iter(|| black_box(cusum_raw.score(black_box(&wc))))
    });

    let mrls = MrlsDetector::paper_default();
    let wm = window_for(mrls.window_len());
    g.bench_function("mrls_w32", |b| {
        b.iter(|| black_box(mrls.score(black_box(&wm))))
    });

    g.finish();
}

fn bench_omega_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fast_sst_omega");
    for omega in [5, 9, 15, 25] {
        let config = SstConfig::with_omega(omega);
        let scorer = SstDetector::fast(FastSst::new(config.clone()));
        let w = window_for(config.window_len());
        g.bench_with_input(BenchmarkId::from_parameter(omega), &omega, |b, _| {
            b.iter(|| black_box(scorer.score(black_box(&w))))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_detectors, bench_omega_scaling
}
criterion_main!(benches);
