//! Criterion benchmarks for the linear-algebra substrate: the IKA claim is
//! that implicit Lanczos + tridiagonal QL beats a dense SVD per window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funnel_linalg::{lanczos, svd, sym_eig, tridiag_eig, HankelMatrix};
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (0.37 * i as f64).sin() + 0.11 * i as f64)
        .collect()
}

fn bench_svd_vs_ika(c: &mut Criterion) {
    let mut g = c.benchmark_group("svd_vs_ika");
    for omega in [9usize, 15, 25, 50] {
        let sig = signal(2 * omega - 1);
        let h = HankelMatrix::new(&sig, omega, omega);
        let dense = h.to_dense();

        g.bench_with_input(BenchmarkId::new("jacobi_svd", omega), &omega, |b, _| {
            b.iter(|| black_box(svd(black_box(&dense))))
        });
        g.bench_with_input(
            BenchmarkId::new("jacobi_symeig_gram", omega),
            &omega,
            |b, _| {
                let gram = dense.gram();
                b.iter(|| black_box(sym_eig(black_box(&gram))))
            },
        );
        g.bench_with_input(BenchmarkId::new("lanczos_k5_ql", omega), &omega, |b, _| {
            let gram_op = h.gram_operator();
            let start: Vec<f64> = (0..omega).map(|i| 1.0 + i as f64 / omega as f64).collect();
            b.iter(|| {
                let lz = lanczos(black_box(&gram_op), black_box(&start), 5);
                black_box(tridiag_eig(&lz.alpha, &lz.beta))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_svd_vs_ika
}
criterion_main!(benches);
