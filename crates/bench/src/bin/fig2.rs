//! Fig. 2 — examples of a level shift and a ramp-up in a normalized KPI.
//!
//! Regenerates the paper's illustrative series: a KPI that first ramps up
//! over time and later takes a sudden level shift, plotted normalized to
//! [0, 1] with the change onsets/ends labelled.

use funnel_timeseries::generate::{KpiClass, KpiGenerator};
use funnel_timeseries::inject::InjectedChange;

/// Render a `[0,1]`-normalized series as a rows-of-dots terminal plot.
fn ascii_plot(values: &[f64], height: usize, marks: &[(usize, &str)]) {
    let cols = values.len();
    for row in (0..height).rev() {
        let lo = row as f64 / height as f64;
        let line: String = values
            .iter()
            .map(|&v| if v >= lo { '█' } else { ' ' })
            .collect();
        println!("{:>4.2} |{line}|", lo);
    }
    let mut label_row = vec![' '; cols];
    for &(pos, _) in marks {
        if pos < cols {
            label_row[pos] = '^';
        }
    }
    println!("     |{}|", label_row.iter().collect::<String>());
    for &(pos, text) in marks {
        println!("      ^ at sample {pos}: {text}");
    }
}

fn main() {
    let gen = KpiGenerator::for_class(KpiClass::Stationary, 100.0);
    let mut series = gen.generate(0, 1200, funnel_bench::seed());

    // Fig. 2's two change archetypes.
    let ramp_onset = 300u64;
    let ramp = InjectedChange::ramp(ramp_onset, 25.0, 120);
    let shift_onset = 800u64;
    let shift = InjectedChange::level_shift(shift_onset, -35.0);
    ramp.apply(&mut series, true);
    shift.apply(&mut series, true);

    let normalized = series.normalized();
    println!("Fig. 2: level shift and ramp up/down in a normalized KPI\n");

    // Downsample to an 80-column terminal plot.
    let stride = normalized.len() / 80;
    let sampled: Vec<f64> = normalized
        .values()
        .chunks(stride)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    ascii_plot(
        &sampled,
        12,
        &[
            (ramp_onset as usize / stride, "start of ramp up"),
            ((ramp_onset as usize + 120) / stride, "end of ramp up"),
            (shift_onset as usize / stride, "start of level shift"),
        ],
    );

    // Machine-readable series for external plotting.
    let csv: Vec<String> = normalized
        .values()
        .iter()
        .step_by(10)
        .map(|v| format!("{v:.4}"))
        .collect();
    println!("\nCSV (every 10th sample): {}", csv.join(","));
}
