//! `funnel-cli` — assess software changes in a scenario file.
//!
//! ```text
//! funnel_cli demo                       # built-in quickstart scenario
//! funnel_cli assess <scenario.json>     # assess every change in a spec
//! funnel_cli assess <scenario.json> --change 0
//! funnel_cli spec-template              # print a starter scenario JSON
//! ```
//!
//! Scenario files are [`funnel_sim::spec::WorldSpec`] JSON; see
//! `spec-template` for the schema by example.

use funnel_core::pipeline::Funnel;
use funnel_core::report;
use funnel_core::FunnelConfig;
use funnel_sim::spec::{ChangeKindSpec, ChangeSpec, EffectSpec, ScopeSpec, ServiceSpec, WorldSpec};

fn main() {
    funnel_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("demo") => demo(),
        Some("assess") => assess(&args[1..]),
        Some("spec-template") => {
            println!(
                "{}",
                serde_json::to_string_pretty(&template_spec()).expect("spec serializes")
            );
            0
        }
        _ => {
            eprintln!(
                "usage: funnel_cli <demo | assess <scenario.json> [--change N] \
                 [--history-days D] | spec-template>"
            );
            2
        }
    };
    // FUNNEL_OBS=1 turns any CLI run into a profiled one.
    if let Ok(Some(obs)) = funnel_obs::report::write_default_if_enabled() {
        eprintln!("wrote {}", funnel_obs::report::DEFAULT_PATH);
        eprint!("{}", obs.human_summary());
    }
    std::process::exit(code);
}

fn template_spec() -> WorldSpec {
    WorldSpec {
        seed: 42,
        days: 8,
        services: vec![ServiceSpec {
            name: "shop.web".into(),
            instances: 6,
            extra_kinds: vec![],
        }],
        relations: vec![],
        changes: vec![ChangeSpec {
            service: "shop.web".into(),
            kind: ChangeKindSpec::Upgrade,
            targets: 2,
            day: 7,
            minute_of_day: 540,
            description: "shop.web v2.3.1".into(),
            effects: vec![EffectSpec {
                kpi: "page_view_response_delay".into(),
                scope: ScopeSpec::TreatedInstances,
                delta: 80.0,
                ramp_minutes: 0,
                delay_minutes: 0,
            }],
        }],
        shocks: vec![],
    }
}

fn demo() -> i32 {
    let spec = template_spec();
    run_spec(&spec, None, 7)
}

fn assess(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("assess: missing scenario path");
        return 2;
    };
    let mut change: Option<usize> = None;
    let mut history_days = 7u32;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--change" => {
                i += 1;
                change = args.get(i).and_then(|s| s.parse().ok());
                if change.is_none() {
                    eprintln!("assess: --change needs an index");
                    return 2;
                }
            }
            "--history-days" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(d) => history_days = d,
                    None => {
                        eprintln!("assess: --history-days needs a number");
                        return 2;
                    }
                }
            }
            other => {
                eprintln!("assess: unknown flag '{other}'");
                return 2;
            }
        }
        i += 1;
    }

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("assess: cannot read {path}: {e}");
            return 1;
        }
    };
    let spec: WorldSpec = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("assess: invalid scenario JSON: {e}");
            return 1;
        }
    };
    run_spec(&spec, change, history_days)
}

fn run_spec(spec: &WorldSpec, only_change: Option<usize>, history_days: u32) -> i32 {
    let built = match spec.build() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("scenario error: {e}");
            return 1;
        }
    };
    let mut config = FunnelConfig::paper_default();
    config.history_days = history_days;
    let funnel = Funnel::new(config);

    let indices: Vec<usize> = match only_change {
        Some(i) if i < built.changes.len() => vec![i],
        Some(i) => {
            eprintln!("no change #{i}; the scenario has {}", built.changes.len());
            return 1;
        }
        None => (0..built.changes.len()).collect(),
    };

    let mut any_impact = false;
    for i in indices {
        let id = built.changes[i];
        let record = built
            .world
            .change_log()
            .get(id)
            .expect("spec change exists");
        println!(
            "--- change #{i}: \"{}\" on service #{} at minute {} ({:?}) ---",
            record.description, record.service.0, record.minute, record.launch
        );
        match funnel.assess_change(&built.world, id) {
            Ok(a) => {
                any_impact |= a.has_impact();
                print!("{}", report::render(built.world.topology(), &a));
            }
            Err(e) => {
                eprintln!("assessment failed: {e}");
                return 1;
            }
        }
        println!();
    }
    // Exit code mirrors the roll-back decision: 0 = clean, 3 = impact found.
    if any_impact {
        3
    } else {
        0
    }
}
