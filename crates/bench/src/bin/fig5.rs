//! Fig. 5 — CCDFs of detection delay for FUNNEL, CUSUM and MRLS.
//!
//! Runs the evaluation cohort, collects the detection delay of every true
//! positive per method, and prints the complementary CDFs plus medians.
//! Paper medians: FUNNEL 13.2 min, MRLS 21.3 min, CUSUM 37.7 min, with
//! FUNNEL's distribution the most concentrated (and MRLS occasionally
//! beating FUNNEL's 7-minute persistence floor at the cost of false
//! positives).
//!
//! Env knobs: FUNNEL_SEED (default 2015), FUNNEL_CHANGES (default 144).

use funnel_bench::{change_budget, seed};
use funnel_eval::ccdf::{ccdf_points, median_delay};
use funnel_eval::cohort::{evaluate_cohort, CohortOptions};
use funnel_eval::methods::Method;
use funnel_sim::scenario::evaluation_world;

fn main() {
    let (world, mut meta) = evaluation_world(seed());
    meta.changes.truncate(change_budget());
    eprintln!(
        "evaluating {} changes for delay CCDFs ...",
        meta.changes.len()
    );
    let opts = CohortOptions {
        methods: vec![Method::Funnel, Method::Cusum, Method::Mrls],
        ..CohortOptions::default()
    };
    let res = evaluate_cohort(&world, &meta, &opts);

    println!("Fig. 5: CCDF of detection delay (minutes)\n");
    println!(
        "{:<8} {:>8} {:>8} {:>8}",
        "minute", "FUNNEL", "CUSUM", "MRLS"
    );
    let per: Vec<(Method, Vec<(u64, f64)>)> = opts
        .methods
        .iter()
        .map(|&m| {
            let delays = &res.method(m).expect("evaluated").delays;
            (m, ccdf_points(delays, 60))
        })
        .collect();
    for minute in (0..=60).step_by(5) {
        print!("{minute:<8}");
        for (_, points) in &per {
            let v = points
                .iter()
                .find(|(mm, _)| *mm == minute)
                .map(|(_, f)| f * 100.0)
                .unwrap_or(0.0);
            print!(" {v:>7.1}%");
        }
        println!();
    }

    println!("\nmedians:");
    for &m in &opts.methods {
        let delays = &res.method(m).expect("evaluated").delays;
        let median = median_delay(delays).unwrap_or(f64::NAN);
        println!(
            "  {:<8} median={median:.1} min over {} true positives",
            m.name(),
            delays.len()
        );
    }
    println!("\npaper medians: FUNNEL 13.2, MRLS 21.3, CUSUM 37.7 minutes");

    let json: Vec<String> = opts
        .methods
        .iter()
        .map(|&m| {
            let delays = &res.method(m).expect("evaluated").delays;
            format!(
                "{{\"method\":\"{}\",\"median\":{},\"n\":{}}}",
                m.name(),
                median_delay(delays).unwrap_or(f64::NAN),
                delays.len()
            )
        })
        .collect();
    println!("JSON: [{}]", json.join(","));
}
