//! Recovery sweep — crash anywhere, recover everywhere, same report.
//!
//! Replays an 8-day world over a lossy, duplicating transport while the
//! collector journals every accepted frame to the WAL and checkpoints the
//! store on a cadence, then kills the run at seeded points:
//!
//! - **mid-frame** — the process dies partway through a WAL append,
//!   leaving a torn record on the newest segment (early and late in the
//!   stream);
//! - **mid-checkpoint** — the process dies partway through writing a
//!   checkpoint file, leaving a torn snapshot next to a valid older one;
//! - **mid-work-unit** — the supervised assessment engine is killed
//!   partway through its work queue and the aborted run withholds its
//!   report;
//! - **poisoned-unit** — one work unit panics on every attempt and the
//!   supervisor quarantines it instead of taking the run down.
//!
//! Every ingest-kill cell recovers from the durable state (newest valid
//! checkpoint + WAL tail), resumes live ingestion, and re-assesses at
//! worker counts {1, 3, 8}; the final report (Debug form + rendered
//! operator report) must be **byte-identical** to the uninterrupted
//! golden run in every cell. The supervisor cells assert the abort/retry/
//! quarantine contracts from DESIGN.md §10.
//!
//! Writes `results/recovery_sweep.csv` and `results/BENCH_recovery.json`
//! and prints the same table.
//!
//! Env knobs: FUNNEL_SEED (world seed, default 2015); FUNNEL_SMOKE set to
//! a non-empty value other than 0 for the CI-sized subset (one ingest
//! kill, workers {1, 3}, same assertions); FUNNEL_OBS=1 to write
//! `results/obs_report.json` covering the sweep's own recovery spans and
//! supervisor counters.

use funnel_core::config::FunnelConfig;
use funnel_core::pipeline::{Funnel, Verdict};
use funnel_core::report::render;
use funnel_core::supervise::{
    supervise_change, FaultProbe, InjectedFault, NoFaults, SupervisorConfig,
};
use funnel_resilience::recover::{recover, DurableHooks, DurableOptions, Kill};
use funnel_sim::agent::{replay_durable, replay_with_faults};
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::faults::FaultPlan;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_sim::MetricStore;
use funnel_topology::change::{ChangeId, ChangeKind};
use std::path::PathBuf;
use std::time::Instant;

/// Agent shards for every replay.
const SHARDS: usize = 3;
/// Simulated days; the change lands on day 7.
const DAYS: usize = 8;
/// Checkpoint cadence in accepted frames.
const CADENCE: u64 = 2048;

/// One service, six instances, one genuinely harmful upgrade, delivered
/// over a transport that drops 5% of frames and duplicates 8%.
fn build_world(seed: u64) -> (World, ChangeId, FaultPlan) {
    let mut b = WorldBuilder::new(SimConfig::days(seed, DAYS));
    let svc = b.add_service("prod.crash", 6).expect("fresh");
    let change = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            2,
            7 * 1440 + 200,
            ChangeEffect::none().with_level_shift(
                KpiKind::PageViewResponseDelay,
                EffectScope::TreatedInstances,
                85.0,
            ),
            "crash-sweep upgrade",
        )
        .expect("valid");
    let plan = FaultPlan {
        drop_frame_prob: 0.05,
        duplicate_prob: 0.08,
        seed: seed ^ 0xc0ffee,
        ..FaultPlan::none()
    };
    (b.build(), change, plan)
}

fn tmp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "funnel-recovery-sweep-{tag}-{}",
        std::process::id()
    ))
}

/// The byte-comparable artifact: full Debug form plus the operator report.
fn assess(world: &World, store: &MetricStore, change: ChangeId, workers: usize) -> String {
    let mut config = FunnelConfig::paper_default();
    config.assess.workers = workers;
    let record = world.change_log().get(change).expect("logged");
    let kinds = |svc| world.kinds_of_service(svc).to_vec();
    let assessment = Funnel::new(config)
        .assess_change_with(store, world.topology(), record, &kinds)
        .expect("assessment");
    format!("{assessment:?}\n{}", render(world.topology(), &assessment))
}

/// One sweep cell.
struct SweepRow {
    kill: &'static str,
    workers: usize,
    frames_in_wal: u64,
    frames_replayed: u64,
    checkpoint_frames: u64,
    used_checkpoint: bool,
    report_match: bool,
    retries: u64,
    quarantined: usize,
}

impl SweepRow {
    fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{}",
            self.kill,
            self.workers,
            self.frames_in_wal,
            self.frames_replayed,
            self.checkpoint_frames,
            self.used_checkpoint,
            self.report_match,
            self.retries,
            self.quarantined
        )
    }

    fn json(&self) -> String {
        format!(
            "{{\"kill\": \"{}\", \"workers\": {}, \"frames_in_wal\": {}, \
             \"frames_replayed\": {}, \"checkpoint_frames\": {}, \"used_checkpoint\": {}, \
             \"report_match\": {}, \"retries\": {}, \"quarantined\": {}}}",
            self.kill,
            self.workers,
            self.frames_in_wal,
            self.frames_replayed,
            self.checkpoint_frames,
            self.used_checkpoint,
            self.report_match,
            self.retries,
            self.quarantined
        )
    }
}

/// Crashes the durable run at `kill`, recovers, resumes, and assesses at
/// each worker count, comparing against the golden report byte-for-byte.
fn run_ingest_kill(
    world: &World,
    change: ChangeId,
    plan: &FaultPlan,
    golden: &str,
    tag: &'static str,
    kill: Kill,
    workers: &[usize],
) -> Vec<SweepRow> {
    let base = tmp_base(tag);
    let _ = std::fs::remove_dir_all(&base);
    let mut options = DurableOptions::at(&base);
    options.cadence = CADENCE;
    options.kill = kill;
    let duration = DAYS * 1440;

    let start = Instant::now();
    let crashed_store = MetricStore::new();
    let mut hooks = DurableHooks::create(&options).expect("wal dir");
    let outcome = replay_durable(
        world,
        &crashed_store,
        SHARDS,
        plan.clone(),
        duration,
        None,
        &mut hooks,
    )
    .expect("durable replay");
    assert!(outcome.aborted, "{tag}: kill point never fired");
    drop(crashed_store); // the crash loses all in-memory state

    options.kill = Kill::None;
    let recovered = recover(world, SHARDS, 0, &options).expect("recovery");
    let mut hooks = DurableHooks::resume(&options, recovered.frames_in_wal).expect("resume");
    let resumed = replay_durable(
        world,
        &recovered.store,
        SHARDS,
        plan.clone(),
        duration,
        Some(recovered.state),
        &mut hooks,
    )
    .expect("resumed replay");
    assert!(!resumed.aborted, "{tag}: resume aborted");
    eprintln!(
        "{tag}: crashed at frame {}, checkpoint covered {}, replayed {} from WAL, \
         recovered + resumed in {:.1}s",
        recovered.frames_in_wal,
        recovered.checkpoint_frames,
        recovered.frames_replayed,
        start.elapsed().as_secs_f64()
    );

    let rows = workers
        .iter()
        .map(|&w| {
            let report = assess(world, &recovered.store, change, w);
            let report_match = report == golden;
            assert!(report_match, "{tag}: report diverged at {w} workers");
            SweepRow {
                kill: tag,
                workers: w,
                frames_in_wal: recovered.frames_in_wal,
                frames_replayed: recovered.frames_replayed,
                checkpoint_frames: recovered.checkpoint_frames,
                used_checkpoint: recovered.used_checkpoint,
                report_match,
                retries: 0,
                quarantined: 0,
            }
        })
        .collect();
    let _ = std::fs::remove_dir_all(&base);
    rows
}

/// Injects one transient fault on the poisoned key's first attempt.
struct TransientOnce(KpiKey);

impl FaultProbe for TransientOnce {
    fn fault(&self, key: &KpiKey, attempt: u32) -> Option<InjectedFault> {
        (*key == self.0 && attempt == 0).then_some(InjectedFault::Transient)
    }
}

/// Panics on the poisoned key, every attempt — the poisoned-input model.
struct PanicOn(KpiKey);

impl FaultProbe for PanicOn {
    fn fault(&self, key: &KpiKey, _attempt: u32) -> Option<InjectedFault> {
        assert!(*key != self.0, "poisoned work unit");
        None
    }
}

/// Mid-work-unit kill, transient retry, and poisoned-unit quarantine cells
/// for one worker count.
fn run_supervisor_cells(
    world: &World,
    store: &MetricStore,
    change: ChangeId,
    golden: &str,
    workers: usize,
) -> Vec<SweepRow> {
    let funnel = Funnel::paper_default();
    let record = world.change_log().get(change).expect("logged");
    let kinds = |svc| world.kinds_of_service(svc).to_vec();
    let config = SupervisorConfig {
        workers,
        ..SupervisorConfig::default()
    };
    let mut rows = Vec::new();

    // Mid-work-unit: the kill switch aborts partway through the queue; the
    // aborted run withholds its report, and the recovered run (same
    // durable store, fresh assessment) matches the golden bytes.
    let crashed = supervise_change(
        &funnel,
        store,
        world.topology(),
        record,
        &kinds,
        &SupervisorConfig {
            abort_after_units: Some(4),
            ..config.clone()
        },
        &NoFaults,
    )
    .expect("aborted run");
    assert!(crashed.report.aborted, "work-unit kill never fired");
    assert!(crashed.assessment.is_none(), "aborted run leaked a report");
    let recovered = supervise_change(
        &funnel,
        store,
        world.topology(),
        record,
        &kinds,
        &config,
        &NoFaults,
    )
    .expect("recovered run");
    let assessment = recovered.assessment.expect("recovered run aborted");
    let report = format!("{assessment:?}\n{}", render(world.topology(), &assessment));
    assert_eq!(
        report, golden,
        "work-unit recovery diverged at {workers} workers"
    );
    rows.push(SweepRow {
        kill: "work-unit",
        workers,
        frames_in_wal: 0,
        frames_replayed: 0,
        checkpoint_frames: 0,
        used_checkpoint: false,
        report_match: true,
        retries: recovered.report.retries,
        quarantined: recovered.report.quarantined.len(),
    });

    // Pick the key the clean run attributed, so retry and quarantine act
    // on a verdict that matters.
    let target = assessment
        .caused_items()
        .next()
        .expect("no caused item")
        .key;

    // Transient fault: one retry, then the clean verdict — bytes included.
    let flaky = supervise_change(
        &funnel,
        store,
        world.topology(),
        record,
        &kinds,
        &config,
        &TransientOnce(target),
    )
    .expect("flaky run");
    let flaky_assessment = flaky.assessment.expect("flaky run aborted");
    let flaky_report = format!(
        "{flaky_assessment:?}\n{}",
        render(world.topology(), &flaky_assessment)
    );
    assert_eq!(
        flaky_report, golden,
        "retried unit diverged at {workers} workers"
    );
    assert_eq!(flaky.report.retries, 1, "expected exactly one retry");
    rows.push(SweepRow {
        kill: "transient",
        workers,
        frames_in_wal: 0,
        frames_replayed: 0,
        checkpoint_frames: 0,
        used_checkpoint: false,
        report_match: true,
        retries: flaky.report.retries,
        quarantined: 0,
    });

    // Poisoned unit: quarantined to Inconclusive, everything else matches
    // the clean run bit for bit. The panic is the injected fault — silence
    // the hook so the sweep's output stays readable.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let poisoned = supervise_change(
        &funnel,
        store,
        world.topology(),
        record,
        &kinds,
        &config,
        &PanicOn(target),
    );
    std::panic::set_hook(hook);
    let poisoned = poisoned.expect("poisoned run");
    assert_eq!(poisoned.report.quarantined, vec![target]);
    let poisoned_assessment = poisoned.assessment.expect("poisoned run withheld");
    assert_eq!(poisoned_assessment.items.len(), assessment.items.len());
    for (got, want) in poisoned_assessment.items.iter().zip(&assessment.items) {
        if got.key == target {
            assert_eq!(
                got.verdict,
                Verdict::Inconclusive {
                    awaiting_backfill: false
                },
                "quarantined unit must be inconclusive"
            );
        } else {
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "non-poisoned item diverged at {workers} workers"
            );
        }
    }
    rows.push(SweepRow {
        kill: "poison",
        workers,
        frames_in_wal: 0,
        frames_replayed: 0,
        checkpoint_frames: 0,
        used_checkpoint: false,
        report_match: true,
        retries: poisoned.report.retries,
        quarantined: poisoned.report.quarantined.len(),
    });
    rows
}

fn main() {
    funnel_obs::init_from_env();
    let smoke = funnel_bench::smoke();
    let seed = funnel_bench::seed();
    let workers: &[usize] = if smoke { &[1, 3] } else { &[1, 3, 8] };

    let (world, change, plan) = build_world(seed);

    // Golden, uninterrupted run: plain replay (no hooks), plain engine.
    let start = Instant::now();
    let golden_store = MetricStore::new();
    replay_with_faults(&world, &golden_store, SHARDS, plan.clone()).expect("golden replay");
    let golden = assess(&world, &golden_store, change, 1);
    eprintln!(
        "golden: replayed + assessed in {:.1}s ({} report bytes)",
        start.elapsed().as_secs_f64(),
        golden.len()
    );

    let ingest_kills: &[(&'static str, Kill)] = if smoke {
        &[("frame-early", Kill::Frame { index: 40, keep: 7 })]
    } else {
        &[
            ("frame-early", Kill::Frame { index: 40, keep: 7 }),
            (
                "frame-late",
                Kill::Frame {
                    index: 9000,
                    keep: 0,
                },
            ),
            (
                "checkpoint",
                Kill::Checkpoint {
                    index: 1,
                    keep: 120,
                },
            ),
        ]
    };

    let mut rows = Vec::new();
    for &(tag, kill) in ingest_kills {
        rows.extend(run_ingest_kill(
            &world, change, &plan, &golden, tag, kill, workers,
        ));
    }
    for &w in workers {
        rows.extend(run_supervisor_cells(
            &world,
            &golden_store,
            change,
            &golden,
            w,
        ));
    }

    println!("Recovery sweep: kill anywhere, recover everywhere, same report\n");
    println!(
        "{:>12} {:>7} {:>10} {:>9} {:>11} {:>10} {:>6} {:>8} {:>11}",
        "kill",
        "workers",
        "wal_frames",
        "replayed",
        "ckpt_frames",
        "used_ckpt",
        "match",
        "retries",
        "quarantined"
    );
    for row in &rows {
        println!(
            "{:>12} {:>7} {:>10} {:>9} {:>11} {:>10} {:>6} {:>8} {:>11}",
            row.kill,
            row.workers,
            row.frames_in_wal,
            row.frames_replayed,
            row.checkpoint_frames,
            row.used_checkpoint,
            row.report_match,
            row.retries,
            row.quarantined
        );
    }

    let header = "kill,workers,frames_in_wal,frames_replayed,checkpoint_frames,used_checkpoint,\
                  report_match,retries,quarantined";
    funnel_bench::report::write_csv("recovery_sweep", header, rows.iter().map(SweepRow::csv))
        .expect("write csv");
    let mut report = funnel_bench::report::BenchReport::new("recovery", seed, smoke)
        .field("shards", SHARDS.to_string())
        .field("checkpoint_cadence_frames", CADENCE.to_string())
        .field("golden_report_bytes", golden.len().to_string())
        .field("byte_identical_reports", "true");
    for row in &rows {
        report.push_row(row.json());
    }
    report.write().expect("write json");
    println!(
        "\nwrote results/recovery_sweep.csv and results/BENCH_recovery.json; \
         every recovered report matched the golden run byte-for-byte."
    );

    if let Ok(Some(obs)) = funnel_obs::report::write_default_if_enabled() {
        println!("\nwrote {}", funnel_obs::report::DEFAULT_PATH);
        print!("{}", obs.human_summary());
    }
}
