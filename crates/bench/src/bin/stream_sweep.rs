//! Stream sweep — the streaming engine under an overload grid.
//!
//! Builds shifted worlds of increasing fleet size, flattens each into a
//! [`LiveFeed`], and drives the feed tick-by-tick through a
//! [`StreamEngine`] across a grid of ingest-rate multipliers (how many
//! minutes of frames land between consecutive ticks) and tick budgets
//! (key-minute folds the scheduler may spend per tick; 0 = unbounded).
//! Reported per cell: sustained fold rate (KPI-minute updates scored per
//! wall second), p50/p99 tick latency, detection latency of the injected
//! change, the shed fraction, and the resident window memory against its
//! configured bound.
//!
//! Four contracts are asserted, smoke or full:
//!
//! * **Byte identity** — at 1× ingest with no budget, the streamed items
//!   are byte-identical to the batch pipeline run on a store replayed
//!   from the same feed, at 1, 3, and 8 workers. Under a budget, every
//!   non-shed, non-stale item still matches its batch counterpart.
//! * **Bounded memory** — at 10× overload the resident window bytes equal
//!   the configured rings × capacity bound; nothing grows with backlog.
//! * **Deterministic shedding** — re-running an overloaded cell with the
//!   same seed sheds the identical (minute, key) log.
//! * **No stall under faults** — a feed replayed through the lossy
//!   fault-injection transport (drops, corruption, delays, duplicates)
//!   still completes its assessment at 10× overload, twice, identically.
//!
//! Writes `results/stream_sweep.csv` and `results/BENCH_stream.json` and
//! prints the same table.
//!
//! Env knobs: FUNNEL_SEED (world seed, default 2015); FUNNEL_SMOKE set to
//! a non-empty value other than 0 for the CI-sized subset (smallest
//! fleet, 1× and 10× only — same four contracts); FUNNEL_OBS=1 to write
//! `results/obs_report.json` for the sweep's own pipeline activity.

use funnel_bench::report::BenchReport;
use funnel_core::stream::StreamAssessment;
use funnel_core::{FunnelConfig, StreamConfig, StreamEngine};
use funnel_sim::agent::replay_with_faults;
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::faults::FaultPlan;
use funnel_sim::kpi::KpiKind;
use funnel_sim::live::LiveFeed;
use funnel_sim::store::MetricStore;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_sst::SstConfig;
use funnel_topology::change::{ChangeId, ChangeKind};
use funnel_topology::model::ServiceId;
use std::collections::BTreeMap;
use std::time::Instant;

/// Two simulated days: a day of history before the change, an hour of
/// assessment, and slack for the backfill/staleness paths.
const DURATION: u64 = 2880;

/// Deployment minute — leaves the full warmup + history inside the feed.
const T0: u64 = 1700;

/// Quick-SST pipeline config: the sweep replays every minute of the feed
/// through the scheduler several times per cell, and byte-identity is
/// asserted against a batch run of the *same* config, so the shorter
/// window changes nothing about what is being compared.
fn pipeline_config(workers: usize) -> FunnelConfig {
    let mut c = FunnelConfig::paper_default();
    c.sst = SstConfig::quick();
    c.assess.workers = workers;
    c
}

fn stream_config(funnel: &FunnelConfig, budget: u64, workers: usize) -> StreamConfig {
    let mut s = StreamConfig::paired_with(funnel);
    s.ring_capacity = StreamConfig::capacity_for(funnel, DURATION);
    s.tick_budget = budget;
    s.workers = workers;
    s
}

/// A world with `instances` instances (half treated, at least one) and a
/// real treated-side delay shift, so detection and DiD do full work.
fn build_world(seed: u64, instances: usize) -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig {
        seed,
        start: 0,
        duration: DURATION as usize,
    });
    let svc = b.add_service("prod.stream", instances).expect("fresh");
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        9.0,
    );
    let id = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            (instances / 2).max(1),
            T0,
            effect,
            "stream sweep upgrade",
        )
        .expect("valid");
    (b.build(), id)
}

fn service_kinds(world: &World) -> BTreeMap<ServiceId, Vec<KpiKind>> {
    world
        .topology()
        .services()
        .map(|(id, _)| (id, world.kinds_of_service(id).to_vec()))
        .collect()
}

/// Replays `feed` into a fresh store — the batch pipeline's input, built
/// from the exact measurement sequence the engine saw.
fn replay_feed(feed: &LiveFeed) -> MetricStore {
    let store = MetricStore::new();
    for (_, batch) in feed.arrivals() {
        for m in batch {
            store.append(m.key, m.minute, m.value);
        }
    }
    store
}

/// Batch items for the change as `(debug key, debug item)` pairs in the
/// batch pipeline's own item order, at `workers` workers.
fn batch_items(
    world: &World,
    change: ChangeId,
    feed: &LiveFeed,
    workers: usize,
) -> Vec<(String, String)> {
    let record = world.change_log().get(change).expect("logged").clone();
    let kinds = service_kinds(world);
    let snapshot = replay_feed(feed).snapshot();
    funnel_core::Funnel::new(pipeline_config(workers))
        .assess_change_with(&snapshot, world.topology(), &record, &|svc| {
            kinds.get(&svc).cloned().unwrap_or_default()
        })
        .expect("batch assessment")
        .items
        .into_iter()
        .map(|i| (format!("{:?}", i.key), format!("{i:?}")))
        .collect()
}

/// The outcome of one engine run over `feed`.
struct CellRun {
    engine: StreamEngine,
    completed: Vec<StreamAssessment>,
    tick_ms: Vec<f64>,
    scored_key_ticks: u64,
    wall_s: f64,
}

/// Drives `feed` through a fresh engine, delivering `rate` minutes of
/// frames between consecutive ticks (1 = real time, 10 = 10× overload).
fn run_cell(
    world: &World,
    change: ChangeId,
    feed: &LiveFeed,
    funnel_cfg: FunnelConfig,
    stream_cfg: StreamConfig,
    rate: u64,
) -> CellRun {
    let record = world.change_log().get(change).expect("logged").clone();
    let mut engine = StreamEngine::new(funnel_cfg, stream_cfg, service_kinds(world));
    engine
        .track_change(world.topology(), record)
        .expect("tracked");
    let mut completed = Vec::new();
    let mut tick_ms = Vec::new();
    let mut scored_key_ticks = 0u64;
    let mut pending = 0u64;
    let mut last = 0;
    let started = Instant::now();
    for (minute, batch) in feed.arrivals() {
        for &m in batch {
            engine.offer(m);
        }
        pending += 1;
        last = minute;
        if pending >= rate {
            let t = Instant::now();
            let report = engine.tick(minute);
            tick_ms.push(t.elapsed().as_secs_f64() * 1e3);
            scored_key_ticks += report.scored_keys as u64;
            completed.extend(report.completed);
            pending = 0;
        }
    }
    if pending > 0 {
        let t = Instant::now();
        let report = engine.tick(last);
        tick_ms.push(t.elapsed().as_secs_f64() * 1e3);
        scored_key_ticks += report.scored_keys as u64;
        completed.extend(report.completed);
    }
    let wall_s = started.elapsed().as_secs_f64();
    CellRun {
        engine,
        completed,
        tick_ms,
        scored_key_ticks,
        wall_s,
    }
}

/// `p`-th percentile (0–100) of `samples`, nearest-rank on sorted data.
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One sweep cell, reported.
#[derive(Debug, Clone)]
struct SweepRow {
    instances: usize,
    keys: usize,
    rate: u64,
    budget: u64,
    ticks: u64,
    folds: u64,
    folds_per_sec: f64,
    p50_tick_ms: f64,
    p99_tick_ms: f64,
    shed_frac: f64,
    detection_latency_min: i64,
    window_bytes: usize,
    window_bound: usize,
}

impl SweepRow {
    fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.1},{:.3},{:.3},{:.4},{},{},{}",
            self.instances,
            self.keys,
            self.rate,
            self.budget,
            self.ticks,
            self.folds,
            self.folds_per_sec,
            self.p50_tick_ms,
            self.p99_tick_ms,
            self.shed_frac,
            self.detection_latency_min,
            self.window_bytes,
            self.window_bound
        )
    }

    fn json(&self) -> String {
        format!(
            "{{\"instances\": {}, \"keys\": {}, \"ingest_rate\": {}, \
             \"tick_budget\": {}, \"ticks\": {}, \"folds\": {}, \
             \"folds_per_sec\": {:.1}, \"p50_tick_ms\": {:.3}, \
             \"p99_tick_ms\": {:.3}, \"shed_frac\": {:.4}, \
             \"detection_latency_min\": {}, \"window_bytes\": {}, \
             \"window_bound_bytes\": {}}}",
            self.instances,
            self.keys,
            self.rate,
            self.budget,
            self.ticks,
            self.folds,
            self.folds_per_sec,
            self.p50_tick_ms,
            self.p99_tick_ms,
            self.shed_frac,
            self.detection_latency_min,
            self.window_bytes,
            self.window_bound
        )
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    funnel_obs::init_from_env();
    let smoke = funnel_bench::smoke();
    let seed = std::env::var("FUNNEL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2015);
    let fleet_sizes: &[usize] = if smoke { &[3] } else { &[3, 6] };
    let rates: &[u64] = if smoke { &[1, 10] } else { &[1, 4, 10] };

    let mut rows: Vec<SweepRow> = Vec::new();
    let mut survivor_checks = 0usize;
    for &instances in fleet_sizes {
        let (world, change) = build_world(seed, instances);
        let feed = LiveFeed::from_store(&world.materialize().expect("materialize"));
        let keys = replay_feed(&feed).keys().len();
        let pairs = batch_items(&world, change, &feed, 1);
        let reference: String = pairs.iter().map(|(_, item)| item.clone()).collect();
        let batch: BTreeMap<String, String> = pairs.into_iter().collect();

        // Budgets: unbounded, and sized for 1× ingest (so 10× must shed).
        for &rate in rates {
            for &budget in &[0u64, keys as u64] {
                let funnel_cfg = pipeline_config(1);
                let stream_cfg = stream_config(&funnel_cfg, budget, 1);
                let run = run_cell(&world, change, &feed, funnel_cfg, stream_cfg.clone(), rate);
                let stats = run.engine.stats();
                assert_eq!(
                    run.completed.len(),
                    1,
                    "{instances}x{rate}x{budget}: the change never completed"
                );
                let got = run.completed.first().expect("one assessment");

                // Bounded memory, overload or not: resident window bytes
                // never exceed rings × capacity; at full rings they equal it.
                let bound = keys * stream_cfg.ring_capacity * 9;
                assert!(
                    run.engine.window_bytes() <= bound,
                    "{instances}x{rate}x{budget}: window memory above bound"
                );
                assert_eq!(stats.peak_window_bytes, run.engine.window_bytes());

                if budget == 0 {
                    // Unbudgeted cells shed nothing and must be
                    // byte-identical to batch regardless of ingest rate.
                    assert_eq!(stats.shed, 0, "{instances}x{rate}: unbudgeted cell shed");
                    let streamed: String = got.items.iter().map(|i| format!("{i:?}")).collect();
                    assert_eq!(
                        streamed, reference,
                        "{instances}x{rate}: streaming != batch"
                    );
                } else {
                    // Budgeted cells may shed; every survivor still
                    // matches its batch counterpart byte-for-byte.
                    for item in &got.items {
                        if got.shed.contains(&item.key) || got.stale.contains(&item.key) {
                            continue;
                        }
                        assert_eq!(
                            batch.get(&format!("{:?}", item.key)),
                            Some(&format!("{item:?}")),
                            "{instances}x{rate}x{budget}: survivor diverged from batch"
                        );
                        survivor_checks += 1;
                    }
                    if rate >= 10 {
                        assert!(
                            stats.shed > 0,
                            "{instances}x{rate}x{budget}: 10x overload never shed"
                        );
                        // Deterministic shedding: the same seed sheds the
                        // same (minute, key) log on a fresh engine.
                        let again = run_cell(
                            &world,
                            change,
                            &feed,
                            pipeline_config(1),
                            stream_cfg.clone(),
                            rate,
                        );
                        assert_eq!(
                            run.engine.shed_log(),
                            again.engine.shed_log(),
                            "{instances}x{rate}x{budget}: shed log not deterministic"
                        );
                    }
                }

                let shed_frac = if stats.shed == 0 {
                    0.0
                } else {
                    stats.shed as f64 / (stats.shed as f64 + run.scored_key_ticks as f64)
                };
                let row = SweepRow {
                    instances,
                    keys,
                    rate,
                    budget,
                    ticks: stats.ticks,
                    folds: stats.folds,
                    folds_per_sec: stats.folds as f64 / run.wall_s,
                    p50_tick_ms: percentile(&run.tick_ms, 50.0),
                    p99_tick_ms: percentile(&run.tick_ms, 99.0),
                    shed_frac,
                    detection_latency_min: got
                        .detection_latency
                        .map_or(-1, |l| i64::try_from(l).unwrap_or(i64::MAX)),
                    window_bytes: run.engine.window_bytes(),
                    window_bound: bound,
                };
                eprintln!(
                    "{} instances x {}x ingest, budget {}: {:.0} folds/s, \
                     p99 tick {:.2}ms, shed {:.1}%, detect {}min",
                    row.instances,
                    row.rate,
                    row.budget,
                    row.folds_per_sec,
                    row.p99_tick_ms,
                    100.0 * row.shed_frac,
                    row.detection_latency_min
                );
                rows.push(row);
            }
        }

        // Worker-count identity on this fleet's unbudgeted 1× cell: the
        // streamed items are one byte string at 1, 3, and 8 workers.
        let serials: Vec<String> = [1usize, 3, 8]
            .iter()
            .map(|&w| {
                let funnel_cfg = pipeline_config(w);
                let stream_cfg = stream_config(&funnel_cfg, 0, w);
                let run = run_cell(&world, change, &feed, funnel_cfg, stream_cfg, 1);
                run.completed
                    .first()
                    .expect("one assessment")
                    .items
                    .iter()
                    .map(|i| format!("{i:?}"))
                    .collect()
            })
            .collect();
        assert!(
            serials.windows(2).all(|w| w[0] == w[1]),
            "{instances}: streaming diverged across worker counts"
        );
        assert_eq!(
            serials[0], reference,
            "{instances}: worker-identity run diverged from batch"
        );
    }
    assert!(
        survivor_checks > 0,
        "no budgeted cell produced a non-shed survivor to verify"
    );

    // Fault leg: the same world's telemetry pushed through the lossy
    // fault-injection transport (drops, corruption, delays, duplicates),
    // then streamed at 10× overload under a 1×-sized budget. The engine
    // must complete without stalling, twice, with identical results.
    let (world, change) = build_world(seed, fleet_sizes[0]);
    let plan = FaultPlan {
        seed: seed ^ 0xfa17,
        drop_frame_prob: 0.05,
        corrupt_prob: 0.02,
        delay_prob: 0.05,
        max_delay_minutes: 3,
        duplicate_prob: 0.02,
        ..FaultPlan::none()
    };
    let faulted = MetricStore::new();
    let replay = replay_with_faults(&world, &faulted, 4, plan).expect("faulted replay");
    let feed = LiveFeed::from_store(&faulted);
    let keys = replay_feed(&feed).keys().len();
    let fault_run = || {
        let funnel_cfg = pipeline_config(1);
        let stream_cfg = stream_config(&funnel_cfg, keys as u64, 1);
        run_cell(&world, change, &feed, funnel_cfg, stream_cfg, 10)
    };
    let fa = fault_run();
    let fb = fault_run();
    assert_eq!(fa.completed.len(), 1, "fault leg: change never completed");
    assert_eq!(
        fa.engine.stats().assess_errors,
        0,
        "fault leg: assess error"
    );
    assert_eq!(
        fa.engine.shed_log(),
        fb.engine.shed_log(),
        "fault leg: shed log not deterministic"
    );
    assert_eq!(
        format!("{:?}", fa.completed),
        format!("{:?}", fb.completed),
        "fault leg: assessments not deterministic"
    );
    eprintln!(
        "fault leg: {} dropped / {} quarantined frames, {} shed events, completed twice identically",
        replay.dropped_frames,
        replay.quarantined_frames,
        fa.engine.stats().shed
    );

    println!("Stream sweep: fold rate, tick latency, and shedding vs overload\n");
    println!(
        "{:>9} {:>5} {:>5} {:>7} {:>6} {:>9} {:>11} {:>9} {:>9} {:>7} {:>7}",
        "instances",
        "keys",
        "rate",
        "budget",
        "ticks",
        "folds",
        "folds/s",
        "p50_ms",
        "p99_ms",
        "shed%",
        "detect"
    );
    for row in &rows {
        println!(
            "{:>9} {:>5} {:>5} {:>7} {:>6} {:>9} {:>11.0} {:>9.2} {:>9.2} {:>6.1}% {:>7}",
            row.instances,
            row.keys,
            row.rate,
            row.budget,
            row.ticks,
            row.folds,
            row.folds_per_sec,
            row.p50_tick_ms,
            row.p99_tick_ms,
            100.0 * row.shed_frac,
            row.detection_latency_min
        );
    }

    let header = "instances,keys,ingest_rate,tick_budget,ticks,folds,folds_per_sec,\
                  p50_tick_ms,p99_tick_ms,shed_frac,detection_latency_min,\
                  window_bytes,window_bound_bytes";
    funnel_bench::report::write_csv("stream_sweep", header, rows.iter().map(SweepRow::csv))
        .expect("write csv");

    let mut report = BenchReport::new("stream", seed, smoke)
        .field("duration_minutes", DURATION.to_string())
        .field("byte_identical_worker_counts", "[1, 3, 8]")
        .field("survivor_identity_checks", survivor_checks.to_string())
        .field(
            "fault_leg_dropped_frames",
            replay.dropped_frames.to_string(),
        )
        .field(
            "fault_leg_quarantined_frames",
            replay.quarantined_frames.to_string(),
        )
        .field("fault_leg_shed_events", fa.engine.stats().shed.to_string());
    for row in &rows {
        report.push_row(row.json());
    }
    report.write().expect("write json");
    println!(
        "\nwrote results/stream_sweep.csv and results/BENCH_stream.json; \
         streaming byte-identical to batch on every non-shed key."
    );

    if let Ok(Some(obs)) = funnel_obs::report::write_default_if_enabled() {
        println!("\nwrote {}", funnel_obs::report::DEFAULT_PATH);
        print!("{}", obs.human_summary());
    }
}
