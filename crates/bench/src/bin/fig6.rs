//! Fig. 6 — KPI changes induced by a configuration change in the Redis
//! query service.
//!
//! Class-A Redis servers ran their NICs near saturation while class B sat
//! idle; a load-balancing configuration change swapped traffic between the
//! classes. FUNNEL flagged the NIC-throughput level shifts (down on A, up
//! on B) among the impact-set KPIs despite NIC throughput's strong
//! variability. The paper reports 16 of 118 impact-set KPIs flagged.

use funnel_core::pipeline::Funnel;
use funnel_core::report;
use funnel_core::FunnelConfig;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::scenario::redis_world;
use funnel_topology::impact::Entity;

fn main() {
    let (world, class_a, class_b, change) = redis_world(funnel_bench::seed());
    let minute = world.change_log().get(change).unwrap().minute;

    let mut config = FunnelConfig::paper_default();
    config.history_days = 2;
    let funnel = Funnel::new(config);
    let assessment = funnel.assess_change(&world, change).expect("assessable");

    let flagged = assessment.caused_items().count();
    println!(
        "Fig. 6: Redis load-balancing config change @ minute {minute}\n\
         impact-set KPIs assessed: {}, flagged as change-induced: {flagged}\n",
        assessment.items.len()
    );
    println!("{}", report::render(world.topology(), &assessment));

    // The paper's two panels: normalized NIC throughput of one server per
    // class around the change.
    for (label, server) in [("class A", class_a[0]), ("class B", class_b[0])] {
        let key = KpiKey::new(Entity::Server(server), KpiKind::NicThroughput);
        let s = world.series(&key).expect("exists");
        let window = s.slice(minute - 120, minute + 120);
        let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let norm: Vec<f64> = window
            .iter()
            .map(|v| (v - lo) / (hi - lo).max(1e-9))
            .collect();
        let sparkline: String = norm
            .iter()
            .step_by(3)
            .map(|v| {
                const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
                BARS[((v * 7.0).round() as usize).min(7)]
            })
            .collect();
        let before = window[..120].iter().sum::<f64>() / 120.0;
        let after = window[120..].iter().sum::<f64>() / 120.0;
        println!(
            "normalized NIC throughput, {label} (±120 min, change at center):\n  {sparkline}\n  \
             mean before {before:.0} Mbit/s → after {after:.0} Mbit/s\n"
        );
    }
    println!("paper: class A shifts down, class B up; 16/118 impact-set KPIs flagged");
}
