//! Fault sweep — assessment robustness versus telemetry fault rate.
//!
//! Replays one cohort of software changes through the faulted agent →
//! collector transport at increasing fault rates and scores every verdict
//! against the world's ground truth. Reported per rate: TPR, FPR, and the
//! fraction of items the pipeline *refuses to judge* (inconclusive) instead
//! of guessing. This is the degradation contract the robustness work
//! enforces: as faults grow the pipeline may trade recall for abstention,
//! but never for false attributions.
//!
//! Also re-runs one lossy rate end-to-end to confirm the whole
//! schedule → replay → assessment chain is bit-deterministic from the seed.
//!
//! Writes `results/fault_sweep.csv` and `results/BENCH_fault.json` and
//! prints the same table.
//!
//! Env knobs: FUNNEL_SEED (world seed, default 2015); FUNNEL_SMOKE set to
//! a non-empty value other than 0 for the CI-sized subset (rates
//! {0.00, 0.20} only — same determinism and degradation assertions);
//! FUNNEL_OBS=1 to write `results/obs_report.json` for the sweep's own
//! pipeline activity.

use funnel_core::pipeline::{Funnel, Verdict};
use funnel_eval::confusion::ConfusionMatrix;
use funnel_sim::agent::replay_with_faults;
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::faults::FaultPlan;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::world::{GroundTruthItem, SimConfig, World, WorldBuilder};
use funnel_sim::MetricStore;
use funnel_topology::change::{ChangeId, ChangeKind};
use std::collections::HashMap;

/// Agent shards for every replay.
const SHARDS: usize = 4;
/// Seed for every fault schedule (distinct from the world seed on purpose:
/// the same telemetry stream is mauled differently at each rate, but
/// identically across reruns).
const FAULT_SEED: u64 = 77;
/// Swept fault intensities (see [`plan_at`] for the channel mix).
const RATES: &[f64] = &[0.0, 0.05, 0.10, 0.20, 0.30];

/// Four services, two genuinely harmful changes, two no-op changes — a
/// miniature of the §4.1 cohort sized for repeated full replays.
fn build_world(seed: u64) -> (World, Vec<ChangeId>) {
    let mut b = WorldBuilder::new(SimConfig::days(seed, 10));
    let search = b.add_service("prod.search", 6).expect("fresh");
    let feed = b.add_service("prod.feed", 6).expect("fresh");
    let ads = b.add_service("prod.ads", 6).expect("fresh");
    let pay = b.add_service("prod.pay", 6).expect("fresh");
    let t = 7 * 1440 + 9 * 60;
    let changes = vec![
        b.deploy_change(
            ChangeKind::Upgrade,
            search,
            2,
            t,
            ChangeEffect::none().with_level_shift(
                KpiKind::PageViewResponseDelay,
                EffectScope::TreatedInstances,
                80.0,
            ),
            "search ranker v5",
        )
        .expect("valid"),
        b.deploy_change(
            ChangeKind::ConfigChange,
            feed,
            3,
            t + 35,
            ChangeEffect::none().with_level_shift(
                KpiKind::AccessFailureCount,
                EffectScope::TreatedInstances,
                25.0,
            ),
            "feed cache rewrite",
        )
        .expect("valid"),
        b.deploy_change(
            ChangeKind::Upgrade,
            ads,
            2,
            t + 70,
            ChangeEffect::none(),
            "ads noop",
        )
        .expect("valid"),
        b.deploy_change(
            ChangeKind::ConfigChange,
            pay,
            3,
            t + 105,
            ChangeEffect::none(),
            "pay noop",
        )
        .expect("valid"),
    ];
    (b.build(), changes)
}

/// The fault mix at sweep intensity `rate`: drops at the headline rate,
/// plus corruption, delays (out-of-order arrival) and duplicates at
/// fractions of it, so every hardened ingestion path is exercised.
fn plan_at(rate: f64) -> FaultPlan {
    if rate <= 0.0 {
        return FaultPlan::none();
    }
    FaultPlan {
        seed: FAULT_SEED,
        drop_frame_prob: rate,
        corrupt_prob: rate * 0.5,
        delay_prob: rate * 0.5,
        max_delay_minutes: 3,
        duplicate_prob: rate * 0.25,
        ..FaultPlan::none()
    }
}

/// One sweep row: verdict quality under a given fault rate.
#[derive(Debug, Clone, PartialEq)]
struct SweepRow {
    rate: f64,
    matrix: ConfusionMatrix,
    inconclusive: usize,
    items: usize,
    mean_coverage: f64,
    dropped_frames: usize,
    quarantined_frames: usize,
}

impl SweepRow {
    fn tpr(&self) -> f64 {
        self.matrix.rates().recall
    }

    fn fpr(&self) -> f64 {
        1.0 - self.matrix.rates().tnr
    }

    fn inconclusive_rate(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.inconclusive as f64 / self.items as f64
        }
    }

    fn csv(&self) -> String {
        format!(
            "{:.2},{},{:.4},{:.4},{:.4},{:.4},{},{}",
            self.rate,
            self.items,
            self.tpr(),
            self.fpr(),
            self.inconclusive_rate(),
            self.mean_coverage,
            self.dropped_frames,
            self.quarantined_frames
        )
    }

    fn json(&self) -> String {
        format!(
            "{{\"rate\": {:.2}, \"items\": {}, \"tpr\": {:.4}, \"fpr\": {:.4}, \
             \"inconclusive_rate\": {:.4}, \"mean_coverage\": {:.4}, \
             \"dropped_frames\": {}, \"quarantined_frames\": {}}}",
            self.rate,
            self.items,
            self.tpr(),
            self.fpr(),
            self.inconclusive_rate(),
            self.mean_coverage,
            self.dropped_frames,
            self.quarantined_frames
        )
    }
}

/// Replays the world under `plan_at(rate)` and assesses every change
/// against the degraded store. Inconclusive items count as abstentions
/// (predicted negative) in the confusion matrix and are tallied separately.
fn run_rate(
    world: &World,
    changes: &[ChangeId],
    gt: &HashMap<(ChangeId, KpiKey), GroundTruthItem>,
    funnel: &Funnel,
    rate: f64,
) -> SweepRow {
    let store = MetricStore::new();
    let stats = replay_with_faults(world, &store, SHARDS, plan_at(rate)).expect("replay");

    let mut matrix = ConfusionMatrix::new();
    let mut inconclusive = 0usize;
    let mut items = 0usize;
    let mut coverage_sum = 0.0f64;
    for &change_id in changes {
        let record = world.change_log().get(change_id).expect("logged");
        let assessment = funnel
            .assess_change_with(&store, world.topology(), record, &|s| {
                world.kinds_of_service(s).to_vec()
            })
            .expect("assessable");
        for item in &assessment.items {
            // Same convention as the cohort evaluator: sub-prominence
            // effects are ambiguous even with perfect telemetry — skip.
            let actual = match gt.get(&(change_id, item.key)) {
                Some(g) if g.is_prominent() => true,
                Some(_) => continue,
                None => false,
            };
            items += 1;
            coverage_sum += item.quality.coverage;
            if item.verdict.is_inconclusive() {
                inconclusive += 1;
            }
            matrix.record(actual, item.verdict == Verdict::Caused);
        }
    }

    SweepRow {
        rate,
        matrix,
        inconclusive,
        items,
        mean_coverage: if items == 0 {
            0.0
        } else {
            coverage_sum / items as f64
        },
        dropped_frames: stats.dropped_frames,
        quarantined_frames: stats.quarantined_frames,
    }
}

fn main() {
    funnel_obs::init_from_env();
    let smoke = funnel_bench::smoke();
    let seed = funnel_bench::seed();
    // The smoke subset keeps the clean baseline (the degradation contract's
    // reference) and the rate the determinism spot-check re-runs.
    let rates: &[f64] = if smoke { &[0.0, 0.20] } else { RATES };
    let (world, changes) = build_world(seed);
    let gt: HashMap<(ChangeId, KpiKey), GroundTruthItem> = world
        .ground_truth()
        .into_iter()
        .map(|g| ((g.change, g.key), g))
        .collect();
    let funnel = Funnel::paper_default();

    let mut rows = Vec::new();
    for &rate in rates {
        let start = std::time::Instant::now();
        let row = run_rate(&world, &changes, &gt, &funnel, rate);
        eprintln!(
            "rate {:.2}: {} items ({} inconclusive), {} frames dropped, {} quarantined \
             in {:.1}s",
            rate,
            row.items,
            row.inconclusive,
            row.dropped_frames,
            row.quarantined_frames,
            start.elapsed().as_secs_f64()
        );
        rows.push(row);
    }

    // Determinism spot-check: the same seed and plan must reproduce the
    // whole replay → assessment chain bit-for-bit. Looked up by rate, not
    // position, so the smoke subset exercises the same check.
    let again = run_rate(&world, &changes, &gt, &funnel, 0.20);
    let reference = rows
        .iter()
        .find(|r| r.rate == 0.20)
        .expect("0.20 is in every swept rate set");
    assert_eq!(
        *reference, again,
        "faulted replay is not deterministic: same seed produced a different report"
    );

    // Degradation contract: faults may cost recall, never precision.
    let clean_fpr = rows[0].fpr();
    for row in &rows {
        assert!(
            row.fpr() <= clean_fpr + 1e-9,
            "rate {:.2} raised FPR above the clean baseline ({} > {})",
            row.rate,
            row.fpr(),
            clean_fpr
        );
    }

    println!("Fault sweep: verdict quality vs telemetry fault rate\n");
    println!(
        "{:>6} {:>7} {:>8} {:>8} {:>8} {:>9} {:>9} {:>12}",
        "rate", "items", "TPR", "FPR", "inconcl", "mean cov", "dropped", "quarantined"
    );
    for row in &rows {
        println!(
            "{:>6.2} {:>7} {:>7.1}% {:>7.1}% {:>7.1}% {:>8.1}% {:>9} {:>12}",
            row.rate,
            row.items,
            row.tpr() * 100.0,
            row.fpr() * 100.0,
            row.inconclusive_rate() * 100.0,
            row.mean_coverage * 100.0,
            row.dropped_frames,
            row.quarantined_frames
        );
    }

    let header =
        "rate,items,tpr,fpr,inconclusive_rate,mean_coverage,dropped_frames,quarantined_frames";
    funnel_bench::report::write_csv("fault_sweep", header, rows.iter().map(SweepRow::csv))
        .expect("write csv");
    let mut report = funnel_bench::report::BenchReport::new("fault", seed, smoke)
        .field("fault_seed", FAULT_SEED.to_string())
        .field("determinism_recheck_rate", "0.20");
    for row in &rows {
        report.push_row(row.json());
    }
    report.write().expect("write json");
    println!(
        "\nwrote results/fault_sweep.csv and results/BENCH_fault.json; \
         determinism re-run matched bit-for-bit."
    );

    if let Ok(Some(obs)) = funnel_obs::report::write_default_if_enabled() {
        println!("\nwrote {}", funnel_obs::report::DEFAULT_PATH);
        print!("{}", obs.human_summary());
    }
}
