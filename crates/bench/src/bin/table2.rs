//! Table 2 — comparison of computational time.
//!
//! Measures each method's single-thread per-window cost on mixed-class KPI
//! windows and projects the number of cores needed to score one million
//! KPIs once per minute (the paper's scalability argument: FUNNEL fits on
//! one 12-core server, CUSUM needs a few cores, MRLS needs thousands).
//!
//! Paper reference values (12-core Xeon E5645, C++): FUNNEL 401.8 µs,
//! CUSUM 1.846 ms, MRLS 2.852 s ⇒ 7 / 31 / 47526 cores. Absolute numbers
//! differ on other hardware; the ordering and the orders-of-magnitude gaps
//! are the reproduced shape.

use funnel_eval::methods::Method;
use funnel_eval::timing::time_method;

fn main() {
    println!("Table 2: computational time per sliding window (single thread)\n");
    println!(
        "{:<14} {:>16} {:>24}",
        "Method", "run time/window", "# cores for 1M KPIs/min"
    );

    let budget = |m: Method| match m {
        Method::Mrls => 200, // ms-scale windows
        _ => 5000,           // µs-scale windows
    };

    let mut rows = Vec::new();
    for method in [Method::Funnel, Method::Cusum, Method::Mrls] {
        let t = time_method(method, budget(method));
        println!(
            "{:<14} {:>16} {:>24}",
            method.name(),
            t.per_window_display(),
            t.cores_for_million_kpis()
        );
        rows.push((
            method.name(),
            t.seconds_per_window,
            t.cores_for_million_kpis(),
        ));
    }

    println!("\npaper: FUNNEL 401.8 µs / 7 cores; CUSUM 1.846 ms / 31; MRLS 2.852 s / 47526");
    let json: Vec<String> = rows
        .iter()
        .map(|(n, s, c)| format!("{{\"method\":\"{n}\",\"sec_per_window\":{s},\"cores\":{c}}}"))
        .collect();
    println!("\nJSON: [{}]", json.join(","));
}
