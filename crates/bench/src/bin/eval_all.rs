//! Combined regenerator: one full-cohort evaluation pass producing both
//! Table 1 (accuracy by KPI class) and Fig. 5 (detection-delay CCDFs).
//! Prefer this over running `table1` and `fig5` separately — the underlying
//! cohort evaluation is identical and takes ~10 minutes per pass on one
//! core.
//!
//! Env knobs: FUNNEL_SEED (default 2015), FUNNEL_CHANGES (default 144).

use funnel_bench::{change_budget, seed, table1_row, CLEAN_SCALE};
use funnel_eval::ccdf::{ccdf_points, median_delay};
use funnel_eval::cohort::{evaluate_cohort, CohortOptions};
use funnel_eval::methods::Method;
use funnel_sim::scenario::evaluation_world;
use funnel_timeseries::generate::KpiClass;

fn main() {
    let (world, mut meta) = evaluation_world(seed());
    meta.changes.truncate(change_budget());
    eprintln!(
        "evaluating {} changes ({} effecting) ...",
        meta.changes.len(),
        meta.changes.iter().filter(|(_, e)| *e).count()
    );
    let opts = CohortOptions::default();
    let start = std::time::Instant::now();
    let res = evaluate_cohort(&world, &meta, &opts);
    eprintln!(
        "{} items evaluated ({} ambiguous skipped) in {:.1}s",
        res.items_total,
        res.items_skipped,
        start.elapsed().as_secs_f64()
    );

    // ---- Table 1 ----
    println!("Table 1: accuracy by KPI class (clean-change cohort scaled ×{CLEAN_SCALE:.0})\n");
    println!(
        "{:<14} {:<11} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "Algorithm", "Type", "Total", "Precision", "Recall", "TNR", "Accuracy"
    );
    let mut json = Vec::new();
    for (method, result) in &res.per_method {
        for class in KpiClass::ALL {
            let m = result.scaled(class, CLEAN_SCALE);
            println!("{}", table1_row(method.name(), &class.to_string(), &m));
            let r = m.rates();
            json.push(format!(
                "{{\"method\":\"{}\",\"class\":\"{class}\",\"precision\":{:.4},\"recall\":{:.4},\"tnr\":{:.4},\"accuracy\":{:.4}}}",
                method.name(), r.precision, r.recall, r.tnr, r.accuracy
            ));
        }
        let overall = result.scaled_overall(CLEAN_SCALE).rates();
        println!(
            "{:<14} {:<11} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
            method.name(),
            "OVERALL",
            "",
            funnel_bench::pct(overall.precision),
            funnel_bench::pct(overall.recall),
            funnel_bench::pct(overall.tnr),
            funnel_bench::pct(overall.accuracy)
        );
    }

    // ---- Fig. 5 ----
    println!("\nFig. 5: CCDF of detection delay (minutes)\n");
    let delay_methods = [Method::Funnel, Method::Cusum, Method::Mrls];
    println!(
        "{:<8} {:>8} {:>8} {:>8}",
        "minute", "FUNNEL", "CUSUM", "MRLS"
    );
    let per: Vec<Vec<(u64, f64)>> = delay_methods
        .iter()
        .map(|&m| ccdf_points(&res.method(m).expect("evaluated").delays, 60))
        .collect();
    for minute in (0..=60).step_by(5) {
        print!("{minute:<8}");
        for points in &per {
            let v = points
                .iter()
                .find(|(mm, _)| *mm == minute)
                .map(|(_, f)| f * 100.0)
                .unwrap_or(0.0);
            print!(" {v:>7.1}%");
        }
        println!();
    }
    println!("\nmedians:");
    for &m in &delay_methods {
        let delays = &res.method(m).expect("evaluated").delays;
        println!(
            "  {:<8} median={:.1} min over {} true positives",
            m.name(),
            median_delay(delays).unwrap_or(f64::NAN),
            delays.len()
        );
        json.push(format!(
            "{{\"method\":\"{}\",\"median_delay\":{},\"tp\":{}}}",
            m.name(),
            median_delay(delays).unwrap_or(f64::NAN),
            delays.len()
        ));
    }
    println!("\npaper: Table 1 FUNNEL ≥99.8% accuracy; Fig. 5 medians FUNNEL 13.2 / MRLS 21.3 / CUSUM 37.7 min");
    println!("JSON: [{}]", json.join(","));
}
