//! Table 3 — one week of deployed operation.
//!
//! The paper's prototype watched a few dozen services for a week:
//! 24 119 changes/day, 268 with impact, 2.26 M KPIs, 10 249 KPI changes,
//! and 98.21 % precision on operator-verified detections. This regenerator
//! replays a scaled-down deployment week (same structure, ~1 core instead
//! of a production fleet) through the full FUNNEL pipeline and verifies
//! every claimed KPI change against the simulator's ground truth — the role
//! the operations team's verification plays in §5.
//!
//! Env knobs: FUNNEL_SEED (default 2015), FUNNEL_CPD (changes/day, 60).

use funnel_core::pipeline::Funnel;
use funnel_core::FunnelConfig;
use funnel_sim::scenario::deployment_week;

fn main() {
    let seed = funnel_bench::seed();
    let cpd = std::env::var("FUNNEL_CPD")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let (world, meta) = deployment_week(seed, cpd);
    let gt: std::collections::HashMap<_, _> = world
        .ground_truth()
        .into_iter()
        .map(|g| ((g.change, g.key), g))
        .collect();

    let mut config = FunnelConfig::paper_default();
    config.history_days = meta.history_days;
    let funnel = Funnel::new(config);

    println!("Table 3: simulated deployment week (seed {seed}, {cpd} changes/day)\n");
    println!(
        "{:<6} {:>9} {:>14} {:>9} {:>12} {:>11}",
        "day", "#changes", "#with impact", "#KPIs", "#KPI changes", "precision"
    );

    let (mut wk_changes, mut wk_impact, mut wk_kpis, mut wk_claims) = (0, 0, 0, 0);
    let (mut wk_tp, mut wk_fp) = (0usize, 0usize);
    for (day, ids) in meta.days.iter().enumerate() {
        let mut kpis = 0usize;
        let mut with_impact = 0usize;
        let mut claims = 0usize;
        let (mut tp, mut fp) = (0usize, 0usize);
        for &id in ids {
            let a = funnel.assess_change(&world, id).expect("assessable");
            kpis += a.items.len();
            if a.has_impact() {
                with_impact += 1;
            }
            for item in a.items.iter().filter(|i| i.caused) {
                claims += 1;
                // "Operator" verification against ground truth.
                let real = gt
                    .get(&(id, item.key))
                    .map(|g| g.is_prominent())
                    .unwrap_or(false);
                if real {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let precision = if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            1.0
        };
        println!(
            "{:<6} {:>9} {:>14} {:>9} {:>12} {:>10.2}%",
            day + 1,
            ids.len(),
            with_impact,
            kpis,
            claims,
            precision * 100.0
        );
        wk_changes += ids.len();
        wk_impact += with_impact;
        wk_kpis += kpis;
        wk_claims += claims;
        wk_tp += tp;
        wk_fp += fp;
    }
    let wk_precision = if wk_tp + wk_fp > 0 {
        wk_tp as f64 / (wk_tp + wk_fp) as f64
    } else {
        1.0
    };
    println!(
        "{:<6} {:>9} {:>14} {:>9} {:>12} {:>10.2}%",
        "week",
        wk_changes,
        wk_impact,
        wk_kpis,
        wk_claims,
        wk_precision * 100.0
    );
    println!(
        "\npaper (daily, production scale): 24119 changes, 268 with impact, 2256390 KPIs, \
         10249 KPI changes, 98.21% precision"
    );
    println!(
        "JSON: {{\"changes\":{wk_changes},\"with_impact\":{wk_impact},\"kpis\":{wk_kpis},\
         \"kpi_changes\":{wk_claims},\"precision\":{wk_precision:.4}}}"
    );
}
