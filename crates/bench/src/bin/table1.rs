//! Table 1 — Precision, Recall, TNR and Accuracy of seasonal, stationary
//! and variable data for FUNNEL, Improved SST, CUSUM and MRLS.
//!
//! Runs the full §4.1 cohort (19 services, 144 software changes — 72 with
//! injected KPI effects, 72 without) through all four methods, groups the
//! item outcomes by KPI character class, and applies the §4.2.1
//! extrapolation (clean-change counts × 86). Shape target: FUNNEL dominates
//! everywhere; improved SST / CUSUM collapse in precision on seasonal KPIs;
//! MRLS collapses in TNR on variable KPIs.
//!
//! Env knobs: FUNNEL_SEED (default 2015), FUNNEL_CHANGES (default 144).

use funnel_bench::{change_budget, seed, table1_row, CLEAN_SCALE};
use funnel_eval::cohort::{evaluate_cohort, CohortOptions};
use funnel_sim::scenario::evaluation_world;
use funnel_timeseries::generate::KpiClass;

fn main() {
    let (world, mut meta) = evaluation_world(seed());
    meta.changes.truncate(change_budget());
    eprintln!(
        "evaluating {} changes ({} effecting) ...",
        meta.changes.len(),
        meta.changes.iter().filter(|(_, e)| *e).count()
    );
    let opts = CohortOptions::default();
    let start = std::time::Instant::now();
    let res = evaluate_cohort(&world, &meta, &opts);
    eprintln!(
        "{} items evaluated ({} ambiguous skipped) in {:.1}s",
        res.items_total,
        res.items_skipped,
        start.elapsed().as_secs_f64()
    );

    println!("Table 1: accuracy by KPI class (clean-change cohort scaled ×{CLEAN_SCALE:.0})\n");
    println!(
        "{:<14} {:<11} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "Algorithm", "Type", "Total", "Precision", "Recall", "TNR", "Accuracy"
    );
    let mut json = Vec::new();
    for (method, result) in &res.per_method {
        for class in KpiClass::ALL {
            let m = result.scaled(class, CLEAN_SCALE);
            println!("{}", table1_row(method.name(), &class.to_string(), &m));
            let r = m.rates();
            json.push(format!(
                "{{\"method\":\"{}\",\"class\":\"{class}\",\"precision\":{:.4},\"recall\":{:.4},\"tnr\":{:.4},\"accuracy\":{:.4}}}",
                method.name(), r.precision, r.recall, r.tnr, r.accuracy
            ));
        }
        let overall = result.scaled_overall(CLEAN_SCALE).rates();
        println!(
            "{:<14} {:<11} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
            method.name(),
            "OVERALL",
            "",
            funnel_bench::pct(overall.precision),
            funnel_bench::pct(overall.recall),
            funnel_bench::pct(overall.tnr),
            funnel_bench::pct(overall.accuracy)
        );
    }
    println!("JSON: [{}]", json.join(","));
}
