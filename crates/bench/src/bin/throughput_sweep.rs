//! Throughput sweep — batch assessment rate versus worker count and
//! impact-set size.
//!
//! Builds dark-launch worlds of increasing fleet size, materializes each
//! into a `MetricStore` and freezes a [`StoreSnapshot`], then assesses the
//! same change repeatedly at every swept worker count, timing each full
//! impact-set assessment. Reported per cell: sustained assessment rate
//! (impact-set KPIs judged per second), p50/p99 latency of a complete
//! change assessment, and the speedup over the single-worker row of the
//! same fleet size.
//!
//! Two contracts are asserted:
//!
//! * **Determinism (always)** — the serialized assessment (debug form +
//!   rendered operator report) on the largest fleet is byte-identical at
//!   1, 3, and 8 workers. Worker count is a latency knob, never a results
//!   knob.
//! * **Scaling (hardware-gated)** — on a machine that actually has ≥ 8
//!   CPUs, 8 workers must sustain at least 3× the single-worker rate on
//!   the largest fleet. Single-core CI boxes cannot demonstrate a speedup,
//!   so the gate is skipped (and said so) when `available_parallelism` or
//!   smoke mode rules it out — the determinism contract still runs there.
//!
//! A third contract gates the observability layer: the no-op recorder's
//! estimated cost per assessment (measured per-call cost × instrumentation
//! calls counted from an enabled probe run) must stay under 2% of the
//! serial p50 — instrumentation that is not effectively free when disabled
//! fails the sweep.
//!
//! Writes `results/throughput_sweep.csv` and `results/BENCH_throughput.json`
//! and prints the same table.
//!
//! Env knobs: FUNNEL_SEED (world seed, default 2015); FUNNEL_SMOKE set to
//! a non-empty value other than 0 for the CI-sized subset (smallest fleet
//! only, workers {1, 2}, fewer repeats — same determinism assertion;
//! FUNNEL_SMOKE=0 or empty runs the full sweep); FUNNEL_OBS=1 to write
//! `results/obs_report.json` for the sweep's own pipeline activity.

use funnel_bench::report::BenchReport;
use funnel_core::pipeline::{ChangeAssessment, Funnel};
use funnel_core::report::render;
use funnel_core::FunnelConfig;
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::kpi::KpiKind;
use funnel_sim::store::StoreSnapshot;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_topology::change::{ChangeId, ChangeKind};
use std::time::Instant;

/// Deployment minute: day 7, 05:00 — leaves a full week of history and an
/// hour of post-change watch inside an 8-day world.
const T0: u64 = 7 * 1440 + 300;

/// A dark-launch world with `instances` instances (half treated), carrying
/// a real treated-side delay shift so the DiD path does full work.
fn build_world(seed: u64, instances: usize) -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(seed, 8));
    let svc = b.add_service("prod.sweep", instances).expect("fresh");
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        80.0,
    );
    let id = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            instances / 2,
            T0,
            effect,
            "sweep upgrade",
        )
        .expect("valid");
    (b.build(), id)
}

/// Assesses `change` once against the frozen snapshot at `workers` workers.
fn assess(
    world: &World,
    snapshot: &StoreSnapshot,
    change: ChangeId,
    workers: usize,
) -> ChangeAssessment {
    let mut config = FunnelConfig::paper_default();
    config.assess.workers = workers;
    let funnel = Funnel::new(config);
    let record = world.change_log().get(change).expect("logged");
    let kinds = |s| world.kinds_of_service(s).to_vec();
    funnel
        .assess_change_with(snapshot, world.topology(), record, &kinds)
        .expect("assessment")
}

/// `p`-th percentile (0–100) of `samples`, nearest-rank on the sorted data.
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One sweep cell: `iters` timed assessments of one (fleet, workers) pair.
#[derive(Debug, Clone)]
struct SweepRow {
    instances: usize,
    impact_items: usize,
    workers: usize,
    iters: usize,
    total_s: f64,
    rate_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup: f64,
}

impl SweepRow {
    fn csv(&self) -> String {
        format!(
            "{},{},{},{},{:.4},{:.1},{:.2},{:.2},{:.2}",
            self.instances,
            self.impact_items,
            self.workers,
            self.iters,
            self.total_s,
            self.rate_per_sec,
            self.p50_ms,
            self.p99_ms,
            self.speedup
        )
    }

    fn json(&self) -> String {
        format!(
            "{{\"instances\": {}, \"impact_items\": {}, \"workers\": {}, \
             \"iters\": {}, \"total_s\": {:.4}, \"assessments_per_sec\": {:.1}, \
             \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \"speedup_vs_serial\": {:.2}}}",
            self.instances,
            self.impact_items,
            self.workers,
            self.iters,
            self.total_s,
            self.rate_per_sec,
            self.p50_ms,
            self.p99_ms,
            self.speedup
        )
    }
}

/// Times `iters` assessments of one cell.
fn run_cell(
    world: &World,
    snapshot: &StoreSnapshot,
    change: ChangeId,
    instances: usize,
    workers: usize,
    iters: usize,
    serial_rate: Option<f64>,
) -> SweepRow {
    // One untimed warmup hides first-touch allocator noise.
    let warmup = assess(world, snapshot, change, workers);
    let impact_items = warmup.items.len();

    let mut samples_ms = Vec::with_capacity(iters);
    let started = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        let a = assess(world, snapshot, change, workers);
        samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(a.items.len(), impact_items, "impact set changed mid-sweep");
    }
    let total_s = started.elapsed().as_secs_f64();
    let rate = (impact_items * iters) as f64 / total_s;
    SweepRow {
        instances,
        impact_items,
        workers,
        iters,
        total_s,
        rate_per_sec: rate,
        p50_ms: percentile(&samples_ms, 50.0),
        p99_ms: percentile(&samples_ms, 99.0),
        speedup: serial_rate.map_or(1.0, |s| rate / s),
    }
}

/// Conservative upper bound on the cost of disabled instrumentation per
/// assessment: per-call no-op cost measured in a tight loop, times the
/// instrumentation calls one serial assessment makes (counted by running
/// one assessment with recording on), times a 4× safety factor.
fn estimate_noop_overhead_ms(
    world: &World,
    snapshot: &StoreSnapshot,
    change: ChangeId,
) -> (f64, u64, f64) {
    let was_enabled = funnel_obs::enabled();

    // Per-call cost of the disabled (no-op) recorder arms.
    funnel_obs::disable();
    let iters: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..iters {
        funnel_obs::counter_add(
            funnel_obs::names::VERDICT_CAUSED,
            std::hint::black_box(i & 1),
        );
        let _span = funnel_obs::span!(funnel_obs::names::SPAN_ASSESS_ITEM);
    }
    // 2 instrumentation calls per loop iteration.
    let per_call_ns = t.elapsed().as_secs_f64() * 1e9 / (iters as f64 * 2.0);

    // Instrumentation calls per serial assessment, from an enabled probe
    // run. Counter values over- or under-count their call sites by at most
    // the batch size either way; the 4× factor below swamps that.
    funnel_obs::enable();
    funnel_obs::reset();
    let _ = assess(world, snapshot, change, 1);
    let probe = funnel_obs::snapshot();
    let calls: u64 = probe.spans.values().map(|s| 2 * s.count).sum::<u64>()
        + probe.counters.values().sum::<u64>()
        + probe.histograms.values().map(|h| h.count).sum::<u64>()
        + probe.gauges.len() as u64;

    if !was_enabled {
        funnel_obs::disable();
        funnel_obs::reset();
    }
    let est_ms = (calls * 4) as f64 * per_call_ns / 1e6;
    (per_call_ns, calls, est_ms)
}

fn main() {
    funnel_obs::init_from_env();
    let smoke = funnel_bench::smoke();
    let seed = std::env::var("FUNNEL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2015);
    let fleet_sizes: &[usize] = if smoke { &[6] } else { &[6, 16, 32] };
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let iters = if smoke { 3 } else { 5 };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rows: Vec<SweepRow> = Vec::new();
    let mut largest: Option<(World, StoreSnapshot, ChangeId)> = None;
    for &instances in fleet_sizes {
        let (world, change) = build_world(seed, instances);
        let store = world.materialize().expect("materialize");
        let snapshot = store.snapshot();
        let mut serial_rate = None;
        for &workers in worker_counts {
            let row = run_cell(
                &world,
                &snapshot,
                change,
                instances,
                workers,
                iters,
                serial_rate,
            );
            eprintln!(
                "{} instances x {} workers: {:.1} assessments/s \
                 (p50 {:.1}ms, p99 {:.1}ms, speedup {:.2}x) over {} iters",
                row.instances,
                row.workers,
                row.rate_per_sec,
                row.p50_ms,
                row.p99_ms,
                row.speedup,
                row.iters
            );
            if workers == 1 {
                serial_rate = Some(row.rate_per_sec);
            }
            rows.push(row);
        }
        largest = Some((world, snapshot, change));
    }
    let (world, snapshot, change) = largest.expect("at least one fleet size");

    // Determinism contract (always, even in smoke): the serialized
    // assessment and the rendered operator report on the largest fleet are
    // byte-identical at 1, 3, and 8 workers.
    let serials: Vec<(String, String)> = [1usize, 3, 8]
        .iter()
        .map(|&w| {
            let a = assess(&world, &snapshot, change, w);
            (format!("{a:?}"), render(world.topology(), &a))
        })
        .collect();
    for (w, pair) in [3usize, 8].iter().zip(&serials[1..]) {
        assert_eq!(
            serials[0], *pair,
            "assessment diverged between 1 and {w} workers"
        );
    }

    // Scaling contract: only checkable on hardware that has the cores.
    let largest_rows: Vec<&SweepRow> = rows
        .iter()
        .filter(|r| r.instances == *fleet_sizes.last().expect("non-empty"))
        .collect();
    let scaling_checked = !smoke && cpus >= 8 && worker_counts.contains(&8);
    if scaling_checked {
        let serial = largest_rows
            .iter()
            .find(|r| r.workers == 1)
            .expect("serial row");
        let eight = largest_rows
            .iter()
            .find(|r| r.workers == 8)
            .expect("8-worker row");
        assert!(
            eight.rate_per_sec >= 3.0 * serial.rate_per_sec,
            "8 workers sustained only {:.2}x the serial rate (need 3x)",
            eight.rate_per_sec / serial.rate_per_sec
        );
    } else {
        eprintln!(
            "scaling gate skipped: smoke={smoke}, available_parallelism={cpus} \
             (needs >=8 CPUs, full sweep); determinism contract still enforced"
        );
    }

    // Observability overhead gate: disabled instrumentation must cost
    // < 2% of a serial assessment. No uninstrumented binary exists to A/B
    // against, so bound the estimate from above instead — see
    // `estimate_noop_overhead_ms`.
    let (per_call_ns, obs_calls, est_overhead_ms) =
        estimate_noop_overhead_ms(&world, &snapshot, change);
    let serial_p50_ms = largest_rows
        .iter()
        .find(|r| r.workers == 1)
        .expect("serial row")
        .p50_ms;
    let overhead_pct = 100.0 * est_overhead_ms / serial_p50_ms;
    eprintln!(
        "obs no-op overhead: {per_call_ns:.2} ns/call x {obs_calls} calls/assessment \
         (x4 safety) = {est_overhead_ms:.4} ms, {overhead_pct:.3}% of serial p50 \
         {serial_p50_ms:.2} ms"
    );
    assert!(
        overhead_pct < 2.0,
        "disabled observability costs {overhead_pct:.2}% of a serial assessment (limit 2%)"
    );

    println!("Throughput sweep: assessment rate vs worker count and impact-set size\n");
    println!(
        "{:>9} {:>6} {:>8} {:>6} {:>9} {:>12} {:>9} {:>9} {:>8}",
        "instances",
        "items",
        "workers",
        "iters",
        "total_s",
        "assess/s",
        "p50_ms",
        "p99_ms",
        "speedup"
    );
    for row in &rows {
        println!(
            "{:>9} {:>6} {:>8} {:>6} {:>9.3} {:>12.1} {:>9.2} {:>9.2} {:>7.2}x",
            row.instances,
            row.impact_items,
            row.workers,
            row.iters,
            row.total_s,
            row.rate_per_sec,
            row.p50_ms,
            row.p99_ms,
            row.speedup
        );
    }

    let header = "instances,impact_items,workers,iters,total_s,assessments_per_sec,\
                  p50_ms,p99_ms,speedup_vs_serial";
    funnel_bench::report::write_csv("throughput_sweep", header, rows.iter().map(SweepRow::csv))
        .expect("write csv");

    let mut report = BenchReport::new("throughput", seed, smoke)
        .field("available_parallelism", cpus.to_string())
        .field("scaling_gate_checked", scaling_checked.to_string())
        .field("byte_identical_worker_counts", "[1, 3, 8]")
        .field("obs_noop_ns_per_call", format!("{per_call_ns:.2}"))
        .field("obs_calls_per_assessment", obs_calls.to_string())
        .field("obs_noop_overhead_pct", format!("{overhead_pct:.4}"));
    for row in &rows {
        report.push_row(row.json());
    }
    report.write().expect("write json");
    println!(
        "\nwrote results/throughput_sweep.csv and results/BENCH_throughput.json; \
         reports byte-identical at 1/3/8 workers."
    );

    if let Ok(Some(obs)) = funnel_obs::report::write_default_if_enabled() {
        println!("\nwrote {}", funnel_obs::report::DEFAULT_PATH);
        print!("{}", obs.human_summary());
    }
}
