//! Diag sweep — what the opt-in diagnosis stage costs next to assessment.
//!
//! Builds shifted worlds of increasing fleet size, runs the batch
//! assessment and then the diagnosis pass over the same store snapshot,
//! and times both. The stage's cost contract is asserted per cell: the
//! diagnosis p50 must stay under 5% of the assessment p50 — explaining a
//! verdict re-reads a handful of pre-windows and re-scores ~2·radius SST
//! windows per caused item, while assessing scores every minute of every
//! work unit, so a diagnosis pass that costs a material fraction of an
//! assessment means something regressed structurally.
//!
//! Also asserted: diagnosis report bytes are identical run-to-run (the
//! determinism the `diag_determinism` test proves across worker counts
//! must survive the timing harness), and every cell diagnoses at least
//! one caused item (a sweep that times empty reports proves nothing).
//!
//! Writes `results/BENCH_diag.json` and prints the same table.
//!
//! Env knobs: FUNNEL_SEED (world seed, default 2015); FUNNEL_SMOKE set to
//! a non-empty value other than 0 for the CI-sized subset (smallest
//! fleet, fewer timing iterations — same contracts).

use funnel_bench::report::BenchReport;
use funnel_core::pipeline::{ChangeAssessment, Funnel};
use funnel_core::{DiagConfig, FunnelConfig};
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::kpi::KpiKind;
use funnel_sim::store::StoreSnapshot;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_sst::SstConfig;
use funnel_topology::change::{ChangeId, ChangeKind};
use std::time::Instant;

/// Two simulated days: history before the change plus the assessment hour.
const DURATION: u64 = 2880;

/// Deployment minute — leaves the full warmup + DiD history in the store.
const T0: u64 = 1700;

fn pipeline_config() -> FunnelConfig {
    let mut c = FunnelConfig::paper_default();
    c.sst = SstConfig::quick();
    c.diagnose = DiagConfig::on();
    c
}

/// A world with `instances` instances (half treated) and a real
/// treated-side delay shift, so both assessment and diagnosis do full
/// work: detection, DiD, bias checks, traces.
fn build_world(seed: u64, instances: usize) -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig {
        seed,
        start: 0,
        duration: DURATION as usize,
    });
    let svc = b.add_service("prod.diag", instances).expect("fresh");
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        9.0,
    );
    let id = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            (instances / 2).max(1),
            T0,
            effect,
            "diag sweep upgrade",
        )
        .expect("valid");
    (b.build(), id)
}

fn assess(
    funnel: &Funnel,
    world: &World,
    snapshot: &StoreSnapshot,
    change: ChangeId,
) -> ChangeAssessment {
    let record = world.change_log().get(change).expect("logged");
    funnel
        .assess_change_with(snapshot, world.topology(), record, &|s| {
            world.kinds_of_service(s).to_vec()
        })
        .expect("assessable")
}

/// Median of `samples`, nearest-rank on sorted data.
fn p50(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted.get(sorted.len() / 2).copied().unwrap_or(0.0)
}

struct Row {
    instances: usize,
    work_units: usize,
    diagnosed: usize,
    mismatches: usize,
    assess_p50_ms: f64,
    diag_p50_ms: f64,
    ratio: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"instances\": {}, \"work_units\": {}, \"diagnosed\": {}, \
             \"mismatches\": {}, \"assess_p50_ms\": {:.3}, \"diag_p50_ms\": {:.3}, \
             \"ratio\": {:.5}}}",
            self.instances,
            self.work_units,
            self.diagnosed,
            self.mismatches,
            self.assess_p50_ms,
            self.diag_p50_ms,
            self.ratio
        )
    }
}

fn main() {
    let seed = funnel_bench::seed();
    let smoke = funnel_bench::smoke();
    let fleets: &[usize] = if smoke { &[8] } else { &[8, 16, 32] };
    let iterations = if smoke { 3 } else { 9 };
    let funnel = Funnel::new(pipeline_config());

    let mut report = BenchReport::new("diag", seed, smoke)
        .field("iterations", format!("{iterations}"))
        .field("max_ratio", "0.05");
    println!("instances  work  diagnosed  assess_p50_ms  diag_p50_ms  ratio");

    for &instances in fleets {
        let (world, change) = build_world(seed, instances);
        let snapshot = world.materialize().expect("materialize").snapshot();
        let record = world.change_log().get(change).expect("logged");

        let mut assess_ms = Vec::new();
        let mut diag_ms = Vec::new();
        let mut assessment = None;
        let mut diag_json = None;
        for _ in 0..iterations {
            let t = Instant::now();
            let a = assess(&funnel, &world, &snapshot, change);
            assess_ms.push(t.elapsed().as_secs_f64() * 1e3);

            let t = Instant::now();
            let d = funnel
                .diagnose(&snapshot, world.topology(), record, &a)
                .expect("diagnosis enabled");
            diag_ms.push(t.elapsed().as_secs_f64() * 1e3);

            let json = d.to_json();
            if let Some(first) = &diag_json {
                assert_eq!(first, &json, "diagnosis bytes diverged run-to-run");
            } else {
                diag_json = Some(json);
            }
            assessment = Some((a, d));
        }
        let (a, d) = assessment.expect("at least one iteration");
        assert!(
            !d.items.is_empty(),
            "{instances}-instance cell diagnosed nothing — the timing proves nothing"
        );

        let assess_p50_ms = p50(&assess_ms);
        let diag_p50_ms = p50(&diag_ms);
        let ratio = if assess_p50_ms > 0.0 {
            diag_p50_ms / assess_p50_ms
        } else {
            f64::INFINITY
        };
        assert!(
            ratio < 0.05,
            "diagnosis p50 {diag_p50_ms:.3} ms is {:.1}% of assessment p50 {assess_p50_ms:.3} ms \
             (contract: < 5%)",
            ratio * 100.0
        );

        let row = Row {
            instances,
            work_units: a.items.len(),
            diagnosed: d.items.len(),
            mismatches: d.mismatch_count(),
            assess_p50_ms,
            diag_p50_ms,
            ratio,
        };
        println!(
            "{:>9}  {:>4}  {:>9}  {:>13.3}  {:>11.3}  {:.4}",
            row.instances,
            row.work_units,
            row.diagnosed,
            row.assess_p50_ms,
            row.diag_p50_ms,
            row.ratio
        );
        report.push_row(row.json());
    }

    let path = report.write().expect("write bench report");
    println!("wrote {}", path.display());
}
