//! Partition sweep — verdict recovery versus partition length and heal mode.
//!
//! Replays one cohort of software changes while a network partition darkens
//! half the agent fleet across the deployment window, once per heal mode and
//! partition length. Each cell runs the full two-phase operational story:
//!
//! 1. **Interim** — the replay is cut off mid-partition and every change is
//!    assessed against the degraded store. Items blocked by the unhealed
//!    gap come back `Inconclusive { awaiting_backfill: true }` and are
//!    absorbed into a [`ReassessmentQueue`].
//! 2. **Post-heal** — the same schedule replayed to completion (the heal
//!    mode decides whether the dark span is lost, burst-flushed, or
//!    trickled back and collector-backfilled), then the queue re-runs every
//!    item whose window healed past the coverage trigger and the firm
//!    verdicts replace the interim ones.
//!
//! The contract asserted here: buffered heal modes plus re-assessment
//! recover at least 0.9× the fault-free TPR for partitions up to 60
//! minutes, and **no** heal mode — including silent drop — ever pushes FPR
//! above the fault-free row (a lost span may cost recall, never produce a
//! false attribution). A final pair of runs confirms the rendered operator
//! reports are byte-identical across different shard counts.
//!
//! Writes `results/partition_sweep.csv` and `results/BENCH_partition.json`
//! and prints the same table.
//!
//! Env knobs: FUNNEL_SEED (world seed, default 2015); FUNNEL_SMOKE set to
//! a non-empty value other than 0 for the CI-sized subset (one partition
//! length, same assertions); FUNNEL_OBS=1 to write
//! `results/obs_report.json` for the sweep's own pipeline activity.

use funnel_core::pipeline::{ChangeAssessment, Funnel, Verdict};
use funnel_core::reassess::ReassessmentQueue;
use funnel_core::report::render;
use funnel_eval::confusion::ConfusionMatrix;
use funnel_sim::agent::{replay_prefix, replay_with_faults};
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::faults::{FaultPlan, HealMode, PartitionScope, PartitionWindow};
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::world::{GroundTruthItem, SimConfig, World, WorldBuilder};
use funnel_sim::MetricStore;
use funnel_topology::change::{ChangeId, ChangeKind};
use std::collections::HashMap;

/// Agent shards for every replay (half of them — zone 1 — go dark).
const SHARDS: usize = 4;
/// Deployment window start: day 7, 09:00.
const T0: u64 = 7 * 1440 + 9 * 60;
/// The partition opens 10 minutes into the deployment window, darkening
/// every change's assessment span.
const PARTITION_START: u64 = T0 + 10;
/// Backlog bound: larger than the longest swept partition, so queue
/// eviction never confounds the heal-mode comparison.
const QUEUE: usize = 120;

/// Same miniature cohort as the fault sweep: two genuinely harmful changes,
/// two no-ops, all deployed dark-launch style inside the partition span.
fn build_world(seed: u64) -> (World, Vec<ChangeId>) {
    let mut b = WorldBuilder::new(SimConfig::days(seed, 10));
    let search = b.add_service("prod.search", 6).expect("fresh");
    let feed = b.add_service("prod.feed", 6).expect("fresh");
    let ads = b.add_service("prod.ads", 6).expect("fresh");
    let pay = b.add_service("prod.pay", 6).expect("fresh");
    let changes = vec![
        b.deploy_change(
            ChangeKind::Upgrade,
            search,
            2,
            T0,
            ChangeEffect::none().with_level_shift(
                KpiKind::PageViewResponseDelay,
                EffectScope::TreatedInstances,
                80.0,
            ),
            "search ranker v5",
        )
        .expect("valid"),
        b.deploy_change(
            ChangeKind::ConfigChange,
            feed,
            3,
            T0 + 35,
            ChangeEffect::none().with_level_shift(
                KpiKind::AccessFailureCount,
                EffectScope::TreatedInstances,
                25.0,
            ),
            "feed cache rewrite",
        )
        .expect("valid"),
        b.deploy_change(
            ChangeKind::Upgrade,
            ads,
            2,
            T0 + 70,
            ChangeEffect::none(),
            "ads noop",
        )
        .expect("valid"),
        b.deploy_change(
            ChangeKind::ConfigChange,
            pay,
            3,
            T0 + 105,
            ChangeEffect::none(),
            "pay noop",
        )
        .expect("valid"),
    ];
    (b.build(), changes)
}

/// The swept heal modes, by CSV label.
fn heal_modes() -> Vec<(&'static str, HealMode)> {
    vec![
        ("silent", HealMode::SilentDrop),
        ("burst", HealMode::BufferedBurst { queue: QUEUE }),
        (
            "staggered",
            HealMode::StaggeredCatchUp {
                queue: QUEUE,
                per_minute: 2,
            },
        ),
    ]
}

fn plan(scope: PartitionScope, heal: HealMode, duration: u64) -> FaultPlan {
    FaultPlan::none().with_partition(PartitionWindow {
        scope,
        start: PARTITION_START,
        duration,
        heal,
    })
}

/// One sweep cell.
#[derive(Debug, Clone, PartialEq)]
struct SweepRow {
    heal: &'static str,
    duration: u64,
    matrix: ConfusionMatrix,
    items: usize,
    inconclusive: usize,
    interim_awaiting: usize,
    upgraded: usize,
    still_pending: usize,
    backfilled_records: usize,
    partition_lost: usize,
}

impl SweepRow {
    fn tpr(&self) -> f64 {
        self.matrix.rates().recall
    }

    fn fpr(&self) -> f64 {
        1.0 - self.matrix.rates().tnr
    }

    fn inconclusive_rate(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.inconclusive as f64 / self.items as f64
        }
    }

    fn csv(&self) -> String {
        format!(
            "{},{},{},{:.4},{:.4},{:.4},{},{},{},{},{}",
            self.heal,
            self.duration,
            self.items,
            self.tpr(),
            self.fpr(),
            self.inconclusive_rate(),
            self.interim_awaiting,
            self.upgraded,
            self.still_pending,
            self.backfilled_records,
            self.partition_lost
        )
    }

    fn json(&self) -> String {
        format!(
            "{{\"heal\": \"{}\", \"duration_min\": {}, \"items\": {}, \"tpr\": {:.4}, \
             \"fpr\": {:.4}, \"inconclusive_rate\": {:.4}, \"interim_queued\": {}, \
             \"upgraded\": {}, \"still_pending\": {}, \"backfilled_records\": {}, \
             \"partition_lost_frames\": {}}}",
            self.heal,
            self.duration,
            self.items,
            self.tpr(),
            self.fpr(),
            self.inconclusive_rate(),
            self.interim_awaiting,
            self.upgraded,
            self.still_pending,
            self.backfilled_records,
            self.partition_lost
        )
    }
}

/// Scores the final (post-upgrade) assessments against ground truth, with
/// inconclusive items counted as abstentions (predicted negative).
fn score(
    assessments: &[ChangeAssessment],
    gt: &HashMap<(ChangeId, KpiKey), GroundTruthItem>,
) -> (ConfusionMatrix, usize, usize) {
    let mut matrix = ConfusionMatrix::new();
    let mut items = 0usize;
    let mut inconclusive = 0usize;
    for assessment in assessments {
        for item in &assessment.items {
            // Sub-prominence effects are ambiguous even with perfect
            // telemetry — same skip convention as the cohort evaluator.
            let actual = match gt.get(&(assessment.change, item.key)) {
                Some(g) if g.is_prominent() => true,
                Some(_) => continue,
                None => false,
            };
            items += 1;
            if item.verdict.is_inconclusive() {
                inconclusive += 1;
            }
            matrix.record(actual, item.verdict == Verdict::Caused);
        }
    }
    (matrix, items, inconclusive)
}

/// Runs the two-phase interim → heal → re-assess story for one cell and
/// returns the scored row plus the final rendered reports.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    world: &World,
    changes: &[ChangeId],
    gt: &HashMap<(ChangeId, KpiKey), GroundTruthItem>,
    funnel: &Funnel,
    label: &'static str,
    scope: PartitionScope,
    heal: HealMode,
    duration: u64,
    shards: usize,
) -> (SweepRow, String) {
    let kinds = |s| world.kinds_of_service(s).to_vec();

    // Phase 1: cut off while the partition is still open — the operations
    // team wants the interim report *now*, not after the heal.
    let cutoff = (PARTITION_START + duration) as usize;
    let interim_store = MetricStore::new();
    replay_prefix(
        world,
        &interim_store,
        shards,
        plan(scope, heal, duration),
        cutoff,
    )
    .expect("interim replay");

    let mut queue = ReassessmentQueue::new();
    let mut assessments = Vec::new();
    for &change_id in changes {
        let record = world.change_log().get(change_id).expect("logged");
        let assessment = funnel
            .assess_change_with(&interim_store, world.topology(), record, &kinds)
            .expect("interim assessment");
        queue.absorb(&assessment, funnel.config());
        assessments.push(assessment);
    }
    let interim_awaiting = queue.len();

    // Phase 2: the same schedule to completion — the heal mode decides what
    // comes back — then re-assess every window that healed.
    let healed_store = MetricStore::new();
    let stats = replay_with_faults(world, &healed_store, shards, plan(scope, heal, duration))
        .expect("healed replay");

    let mut upgraded = 0usize;
    for (assessment, &change_id) in assessments.iter_mut().zip(changes) {
        let record = world.change_log().get(change_id).expect("logged");
        let upgrades = queue
            .reassess(funnel, &healed_store, world.topology(), record)
            .expect("re-assessment");
        upgraded += assessment.apply_upgrades(upgrades);
    }

    let (matrix, items, inconclusive) = score(&assessments, gt);
    let reports: String = assessments
        .iter()
        .map(|a| render(world.topology(), a))
        .collect();
    (
        SweepRow {
            heal: label,
            duration,
            matrix,
            items,
            inconclusive,
            interim_awaiting,
            upgraded,
            still_pending: queue.len(),
            backfilled_records: stats.backfilled_records,
            partition_lost: stats.partition_lost_frames,
        },
        reports,
    )
}

/// The fault-free baseline row (no partition, single phase).
fn run_baseline(
    world: &World,
    changes: &[ChangeId],
    gt: &HashMap<(ChangeId, KpiKey), GroundTruthItem>,
    funnel: &Funnel,
) -> SweepRow {
    let store = MetricStore::new();
    replay_with_faults(world, &store, SHARDS, FaultPlan::none()).expect("clean replay");
    let kinds = |s| world.kinds_of_service(s).to_vec();
    let assessments: Vec<ChangeAssessment> = changes
        .iter()
        .map(|&id| {
            let record = world.change_log().get(id).expect("logged");
            funnel
                .assess_change_with(&store, world.topology(), record, &kinds)
                .expect("clean assessment")
        })
        .collect();
    let (matrix, items, inconclusive) = score(&assessments, gt);
    SweepRow {
        heal: "none",
        duration: 0,
        matrix,
        items,
        inconclusive,
        interim_awaiting: 0,
        upgraded: 0,
        still_pending: 0,
        backfilled_records: 0,
        partition_lost: 0,
    }
}

fn main() {
    funnel_obs::init_from_env();
    let smoke = funnel_bench::smoke();
    let seed = funnel_bench::seed();
    let durations: &[u64] = if smoke { &[30] } else { &[15, 30, 60] };

    let (world, changes) = build_world(seed);
    let gt: HashMap<(ChangeId, KpiKey), GroundTruthItem> = world
        .ground_truth()
        .into_iter()
        .map(|g| ((g.change, g.key), g))
        .collect();
    let funnel = Funnel::paper_default();
    let zone = PartitionScope::Zone { zone: 1, zones: 2 };

    let mut rows = vec![run_baseline(&world, &changes, &gt, &funnel)];
    for &duration in durations {
        for (label, heal) in heal_modes() {
            let start = std::time::Instant::now();
            let (row, _) = run_cell(
                &world, &changes, &gt, &funnel, label, zone, heal, duration, SHARDS,
            );
            eprintln!(
                "{} {}min: TPR {:.0}% FPR {:.1}% ({} interim-queued, {} upgraded, \
                 {} still pending, {} records backfilled) in {:.1}s",
                row.heal,
                row.duration,
                row.tpr() * 100.0,
                row.fpr() * 100.0,
                row.interim_awaiting,
                row.upgraded,
                row.still_pending,
                row.backfilled_records,
                start.elapsed().as_secs_f64()
            );
            rows.push(row);
        }
    }

    let baseline = rows[0].clone();

    // Recovery contract: buffered heals + re-assessment must restore at
    // least 0.9× the fault-free TPR at every swept length.
    for row in rows
        .iter()
        .filter(|r| r.heal != "none" && r.heal != "silent")
    {
        assert!(
            row.tpr() >= 0.9 * baseline.tpr() - 1e-9,
            "{} {}min recovered only {:.1}% TPR (fault-free {:.1}%)",
            row.heal,
            row.duration,
            row.tpr() * 100.0,
            baseline.tpr() * 100.0
        );
    }
    // Precision contract: no heal mode — even silent drop — may raise FPR
    // above the fault-free row.
    for row in &rows {
        assert!(
            row.fpr() <= baseline.fpr() + 1e-9,
            "{} {}min raised FPR above fault-free ({:.4} > {:.4})",
            row.heal,
            row.duration,
            row.fpr(),
            baseline.fpr()
        );
    }

    // Determinism contract: a whole-collector partition darkens every shard
    // regardless of fleet sharding, so the rendered operator reports must
    // be byte-identical across different shard counts.
    let det_duration = durations[durations.len() - 1];
    let det_heal = HealMode::StaggeredCatchUp {
        queue: QUEUE,
        per_minute: 2,
    };
    let (_, report_a) = run_cell(
        &world,
        &changes,
        &gt,
        &funnel,
        "staggered",
        PartitionScope::Collector,
        det_heal,
        det_duration,
        SHARDS,
    );
    let (_, report_b) = run_cell(
        &world,
        &changes,
        &gt,
        &funnel,
        "staggered",
        PartitionScope::Collector,
        det_heal,
        det_duration,
        7,
    );
    assert_eq!(
        report_a, report_b,
        "rendered reports diverged across shard counts"
    );

    println!("Partition sweep: verdict recovery vs partition length and heal mode\n");
    println!(
        "{:>10} {:>5} {:>6} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>11} {:>6}",
        "heal",
        "min",
        "items",
        "TPR",
        "FPR",
        "inconcl",
        "queued",
        "upgraded",
        "pending",
        "backfilled",
        "lost"
    );
    for row in &rows {
        println!(
            "{:>10} {:>5} {:>6} {:>7.1}% {:>7.1}% {:>7.1}% {:>8} {:>9} {:>8} {:>11} {:>6}",
            row.heal,
            row.duration,
            row.items,
            row.tpr() * 100.0,
            row.fpr() * 100.0,
            row.inconclusive_rate() * 100.0,
            row.interim_awaiting,
            row.upgraded,
            row.still_pending,
            row.backfilled_records,
            row.partition_lost
        );
    }

    let header = "heal,duration_min,items,tpr,fpr,inconclusive_rate,interim_queued,upgraded,\
                  still_pending,backfilled_records,partition_lost_frames";
    funnel_bench::report::write_csv("partition_sweep", header, rows.iter().map(SweepRow::csv))
        .expect("write csv");
    let mut report = funnel_bench::report::BenchReport::new("partition", seed, smoke)
        .field("shards", SHARDS.to_string())
        .field("cross_shard_determinism_checked", "true");
    for row in &rows {
        report.push_row(row.json());
    }
    report.write().expect("write json");
    println!(
        "\nwrote results/partition_sweep.csv and results/BENCH_partition.json; \
         cross-shard-count reports matched byte-for-byte."
    );

    if let Ok(Some(obs)) = funnel_obs::report::write_default_if_enabled() {
        println!("\nwrote {}", funnel_obs::report::DEFAULT_PATH);
        print!("{}", obs.human_summary());
    }
}
