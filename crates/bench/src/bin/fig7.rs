//! Fig. 7 — the advertising anti-cheat incident: effective clicks collapse
//! after a faulty upgrade on a strongly seasonal KPI.
//!
//! The upgrade broke the anti-cheat JSON check on iPhone browsers, so all
//! iPhone clicks were misclassified as cheats and the effective-click count
//! dropped sharply the moment the upgrade rolled out. Manual inspection
//! took 1.5 hours; FUNNEL declared the change within ~10 minutes. This
//! regenerator reproduces the incident, reports FUNNEL's detection delay,
//! and prints the normalized click series around the upgrade.

use funnel_core::pipeline::Funnel;
use funnel_core::FunnelConfig;
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::scenario::ads_world;
use funnel_topology::impact::Entity;

fn main() {
    let (world, ads, change) = ads_world(funnel_bench::seed());
    let minute = world.change_log().get(change).unwrap().minute;

    let mut config = FunnelConfig::paper_default();
    config.history_days = 6;
    let funnel = Funnel::new(config);
    let assessment = funnel.assess_change(&world, change).expect("assessable");

    let click_key = KpiKey::new(Entity::Service(ads), KpiKind::EffectiveClickCount);
    let click_item = assessment
        .items
        .iter()
        .find(|i| i.key == click_key)
        .expect("click KPI in impact set");

    println!("Fig. 7: advertising upgrade @ minute {minute} (14:00 on the deployment day)\n");
    println!(
        "impact-set KPIs assessed: {}, flagged as upgrade-induced: {}",
        assessment.items.len(),
        assessment.caused_items().count()
    );
    match (&click_item.detection, click_item.caused) {
        (Some(d), true) => {
            let delay = d.declared_at - minute;
            println!(
                "effective-click collapse declared {delay} min after the upgrade \
                 (manual assessment in the paper took ~90 min; FUNNEL's case took <10)"
            );
            if let Some((v, _)) = &click_item.did {
                println!(
                    "seasonal DiD impact estimator α = {:+.2} (normalized units)",
                    v.alpha()
                );
            }
        }
        _ => println!("WARNING: click collapse not attributed — check calibration"),
    }

    // Normalized clicks ±3 hours around the upgrade.
    let s = world.series(&click_key).expect("exists");
    let window = s.slice(minute - 180, minute + 180);
    let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sparkline: String = window
        .iter()
        .step_by(4)
        .map(|v| {
            const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
            BARS[(((v - lo) / (hi - lo).max(1e-9) * 7.0).round() as usize).min(7)]
        })
        .collect();
    println!("\nnormalized effective clicks (±180 min, upgrade at center):\n  {sparkline}");

    let before = window[..180].iter().sum::<f64>() / 180.0;
    let after = window[180..].iter().sum::<f64>() / 180.0;
    println!("mean before {before:.0} → after {after:.0} clicks/min");
}
