//! Meta sweep — what watching FUNNEL costs FUNNEL.
//!
//! The windowed telemetry layer ("FUNNEL watches FUNNEL") adds one
//! mutex-guarded `BTreeMap` upsert per windowed metric write on top of the
//! aggregate counters. This sweep prices that: a microbenchmark times the
//! per-record cost of the windowed write path against a registry
//! pre-populated with a realistic window spread, an instrumented serial
//! assessment counts how many windowed records one assessment actually
//! emits (`timeline.records`), and the product — the telemetry bill for
//! the whole assessment — must stay under 2% of the uninstrumented serial
//! assessment p50. A violation means the hot-path instrumentation grew a
//! structural cost (lock contention, allocation per write), not noise.
//!
//! Also asserted: recording stays write-only (instrumented and
//! uninstrumented assessments are byte-identical) and the instrumented
//! run genuinely recorded windowed telemetry.
//!
//! Writes `results/BENCH_meta.json` and prints the same table.
//!
//! Env knobs: FUNNEL_SEED (world seed, default 2015); FUNNEL_SMOKE set to
//! a non-empty value other than 0 for the CI-sized subset (smallest
//! fleet, fewer timing iterations — same contracts).

use funnel_bench::report::BenchReport;
use funnel_core::pipeline::{ChangeAssessment, Funnel};
use funnel_core::FunnelConfig;
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::kpi::KpiKind;
use funnel_sim::store::StoreSnapshot;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_sst::SstConfig;
use funnel_topology::change::{ChangeId, ChangeKind};
use std::time::Instant;

/// Two simulated days: history before the change plus the assessment hour.
const DURATION: u64 = 2880;

/// Deployment minute — leaves the full warmup + DiD history in the store.
const T0: u64 = 1700;

/// The overhead contract: windowed-telemetry cost per assessment must stay
/// under this fraction of the serial assessment p50.
const MAX_RATIO: f64 = 0.02;

/// Microbenchmark volume (halved in smoke mode).
const MICRO_WRITES: u64 = 200_000;

fn pipeline_config() -> FunnelConfig {
    let mut c = FunnelConfig::paper_default();
    c.sst = SstConfig::quick();
    c.assess.workers = 1; // serial: the contract baseline
    c
}

fn build_world(seed: u64, instances: usize) -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig {
        seed,
        start: 0,
        duration: DURATION as usize,
    });
    let svc = b.add_service("prod.meta", instances).expect("fresh");
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        9.0,
    );
    let id = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            (instances / 2).max(1),
            T0,
            effect,
            "meta sweep upgrade",
        )
        .expect("valid");
    (b.build(), id)
}

fn assess(
    funnel: &Funnel,
    world: &World,
    snapshot: &StoreSnapshot,
    change: ChangeId,
) -> ChangeAssessment {
    let record = world.change_log().get(change).expect("logged");
    funnel
        .assess_change_with(snapshot, world.topology(), record, &|s| {
            world.kinds_of_service(s).to_vec()
        })
        .expect("assessable")
}

/// Median of `samples`, nearest-rank on sorted data.
fn p50(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted.get(sorted.len() / 2).copied().unwrap_or(0.0)
}

/// Times the windowed write path: `writes` upserts spread across the
/// realistic shape of an assessment timeline (a handful of names, many
/// windows), against an enabled recorder. Returns nanoseconds per write.
fn per_record_ns(writes: u64) -> f64 {
    funnel_obs::enable();
    funnel_obs::reset();
    // Pre-populate the window spread so the measured upserts pay realistic
    // BTreeMap depth, not empty-map insertion.
    for w in 0..DURATION {
        funnel_obs::timeline_counter_add(funnel_obs::names::FRAMES_INGESTED, w, 1);
    }
    let names = [
        funnel_obs::names::VERDICT_CAUSED,
        funnel_obs::names::VERDICT_NOT_CAUSED,
        funnel_obs::names::STREAM_SCORES,
        funnel_obs::names::FRAMES_INGESTED,
    ];
    let t = Instant::now();
    for i in 0..writes {
        let name = names[(i % names.len() as u64) as usize];
        funnel_obs::timeline_counter_add(name, i % DURATION, 1);
    }
    let elapsed = t.elapsed().as_secs_f64();
    funnel_obs::reset();
    funnel_obs::disable();
    elapsed * 1e9 / writes as f64
}

struct Row {
    instances: usize,
    work_units: usize,
    timeline_records: u64,
    per_record_ns: f64,
    overhead_ms: f64,
    assess_p50_ms: f64,
    ratio: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"instances\": {}, \"work_units\": {}, \"timeline_records\": {}, \
             \"per_record_ns\": {:.1}, \"overhead_ms\": {:.4}, \"assess_p50_ms\": {:.3}, \
             \"ratio\": {:.5}}}",
            self.instances,
            self.work_units,
            self.timeline_records,
            self.per_record_ns,
            self.overhead_ms,
            self.assess_p50_ms,
            self.ratio
        )
    }
}

fn main() {
    let seed = funnel_bench::seed();
    let smoke = funnel_bench::smoke();
    let fleets: &[usize] = if smoke { &[8] } else { &[8, 16, 32] };
    let iterations = if smoke { 3 } else { 9 };
    let micro_writes = if smoke {
        MICRO_WRITES / 2
    } else {
        MICRO_WRITES
    };
    let funnel = Funnel::new(pipeline_config());

    let write_ns = per_record_ns(micro_writes);
    let mut report = BenchReport::new("meta", seed, smoke)
        .field("iterations", format!("{iterations}"))
        .field("micro_writes", format!("{micro_writes}"))
        .field("max_ratio", format!("{MAX_RATIO}"));
    println!("per-record windowed write: {write_ns:.1} ns");
    println!("instances  work  records  overhead_ms  assess_p50_ms  ratio");

    for &instances in fleets {
        let (world, change) = build_world(seed, instances);
        let snapshot = world.materialize().expect("materialize").snapshot();

        // Baseline: the uninstrumented serial assessment.
        funnel_obs::disable();
        funnel_obs::reset();
        let mut assess_ms = Vec::new();
        let mut baseline = None;
        for _ in 0..iterations {
            let t = Instant::now();
            let a = assess(&funnel, &world, &snapshot, change);
            assess_ms.push(t.elapsed().as_secs_f64() * 1e3);
            baseline = Some(a);
        }
        let baseline = baseline.expect("at least one iteration");

        // One instrumented run: write-only, and it counts its own records.
        funnel_obs::enable();
        funnel_obs::reset();
        let instrumented = assess(&funnel, &world, &snapshot, change);
        let obs = funnel_obs::snapshot();
        let timeline = funnel_obs::timeline_snapshot();
        funnel_obs::disable();
        assert_eq!(
            format!("{baseline:?}"),
            format!("{instrumented:?}"),
            "recording changed the assessment"
        );
        let timeline_records = obs
            .counters
            .get(funnel_obs::names::TIMELINE_RECORDS)
            .copied()
            .unwrap_or(0);
        assert!(
            timeline_records > 0 && !timeline.is_empty(),
            "{instances}-instance cell recorded no windowed telemetry — the pricing proves nothing"
        );

        let assess_p50_ms = p50(&assess_ms);
        let overhead_ms = timeline_records as f64 * write_ns / 1e6;
        let ratio = if assess_p50_ms > 0.0 {
            overhead_ms / assess_p50_ms
        } else {
            f64::INFINITY
        };
        assert!(
            ratio < MAX_RATIO,
            "windowed telemetry costs {overhead_ms:.4} ms ({:.2}% of the {assess_p50_ms:.3} ms \
             serial assessment p50; contract: < {:.0}%)",
            ratio * 100.0,
            MAX_RATIO * 100.0
        );

        let row = Row {
            instances,
            work_units: baseline.items.len(),
            timeline_records,
            per_record_ns: write_ns,
            overhead_ms,
            assess_p50_ms,
            ratio,
        };
        println!(
            "{:>9}  {:>4}  {:>7}  {:>11.4}  {:>13.3}  {:.5}",
            row.instances,
            row.work_units,
            row.timeline_records,
            row.overhead_ms,
            row.assess_p50_ms,
            row.ratio
        );
        report.push_row(row.json());
    }

    let path = report.write().expect("write bench report");
    println!("wrote {}", path.display());
}
