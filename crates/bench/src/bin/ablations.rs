//! Ablations over FUNNEL's design choices (see DESIGN.md §1):
//!
//! 1. **Threshold sweeps** for every method on a held-out sub-cohort — the
//!    paper sets "the values of other parameters … to the best for the
//!    corresponding algorithm's accuracy" (§4.1); this is that sweep.
//! 2. **Eigenvector selection** — the §3.2.2 text says "smallest"
//!    eigenvalues but weights by eigenvalue and cites work using the
//!    largest; compare both.
//! 3. **Median/MAD filter** on/off (Eq. 11's contribution).
//! 4. **IKA vs exact robust SST** — accuracy agreement and speedup of the
//!    §3.2.3 approximation.
//!
//! Scores are computed once per (item, scorer) and the thresholds swept
//! over the cached vectors, replicating the DetectorRunner's
//! threshold+persistence semantics.
//!
//! Env knobs: FUNNEL_SEED (held-out default 77), FUNNEL_CHANGES (default 36).

use funnel_bench::pct;
use funnel_detect::sst_adapter::SstDetector;
use funnel_detect::WindowScorer;
use funnel_eval::confusion::ConfusionMatrix;
use funnel_eval::methods::{Method, MethodRunner};
use funnel_sim::scenario::{evaluation_world, CohortMeta};
use funnel_sim::world::World;
use funnel_sst::{EigSelection, FastSst, RobustSst, SstConfig, SstScorer};
use std::time::Instant;

/// One impact-set item with its detection span.
struct Item {
    actual: bool,
    values: Vec<f64>,
    /// Index into `values` of the first window whose decision minute is the
    /// change minute (given window width w, window i ends at sample i+w-1).
    change_offset: usize,
}

fn collect_items(world: &World, meta: &CohortMeta, span_w: u64) -> Vec<Item> {
    let gt: std::collections::HashMap<_, _> = world
        .ground_truth()
        .into_iter()
        .map(|g| ((g.change, g.key), g))
        .collect();
    let funnel = funnel_core::pipeline::Funnel::paper_default();
    let mut items = Vec::new();
    for &(change_id, _) in &meta.changes {
        let assessment = funnel.assess_change(world, change_id).expect("assessable");
        let change_minute = world.change_log().get(change_id).unwrap().minute;
        for item in &assessment.items {
            let actual = match gt.get(&(change_id, item.key)) {
                Some(g) if g.is_prominent() => true,
                Some(_) => continue,
                None => false,
            };
            let series = funnel_core::source::KpiSource::series(&world, &item.key).unwrap();
            let from = change_minute.saturating_sub(2 * span_w).max(series.start());
            let values = series.slice(from, change_minute + 61).to_vec();
            items.push(Item {
                actual,
                values,
                change_offset: (change_minute - from) as usize,
            });
        }
    }
    items
}

/// Score every window of an item with `scorer`; returns (scores, first
/// window index whose decision minute >= change minute).
fn score_item(scorer: &dyn Fn(&[f64]) -> f64, w: usize, item: &Item) -> (Vec<f64>, usize) {
    let scores: Vec<f64> = item.values.windows(w).map(scorer).collect();
    // window i covers samples [i, i+w); decision minute index = i + w - 1.
    let first_valid = item.change_offset.saturating_sub(w - 1);
    (scores, first_valid)
}

/// DetectorRunner-equivalent prediction: a run of `persistence` scores
/// >= threshold whose last window decides at/after the change minute.
fn predict(scores: &[f64], first_valid: usize, threshold: f64, persistence: usize) -> bool {
    let mut run = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if s >= threshold {
            run += 1;
            if run >= persistence && i >= first_valid {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

fn sweep(items: &[(bool, Vec<f64>, usize)], threshold: f64, persistence: usize) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::new();
    for (actual, scores, first_valid) in items {
        m.record(
            *actual,
            predict(scores, *first_valid, threshold, persistence),
        );
    }
    m
}

fn main() {
    let seed = std::env::var("FUNNEL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(77);
    let budget = std::env::var("FUNNEL_CHANGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    let (world, mut meta) = evaluation_world(seed);
    meta.changes.truncate(budget);
    eprintln!(
        "calibration cohort: seed {seed}, {} changes",
        meta.changes.len()
    );

    let items = collect_items(&world, &meta, 60);
    eprintln!("{} items collected", items.len());

    println!("\n== Ablation 1: threshold sweeps (accuracy/precision, unscaled sub-cohort) ==");
    let grids: [(Method, &[f64]); 3] = [
        (Method::ImprovedSst, &[0.5, 0.8, 1.0, 1.5, 2.0]),
        (Method::Cusum, &[1.2, 1.5, 2.0, 2.5, 3.0]),
        (Method::Mrls, &[9.0, 12.0, 16.0, 22.0, 30.0]),
    ];
    for (method, grid) in grids {
        let runner = MethodRunner::new(method);
        let w = runner.window_len();
        let scored: Vec<(bool, Vec<f64>, usize)> = items
            .iter()
            .map(|it| {
                let (s, fv) = score_item(&|win| runner.score_window(win), w, it);
                (it.actual, s, fv)
            })
            .collect();
        println!("{}:", method.name());
        for &th in grid {
            let m = sweep(&scored, th, method.persistence());
            let r = m.rates();
            println!(
                "  th={th:<5} acc={} prec={} recall={}",
                pct(r.accuracy),
                pct(r.precision),
                pct(r.recall)
            );
        }
    }

    println!("\n== Ablation 2: future-eigenvector selection (detector-only, th=1.0) ==");
    for selection in [EigSelection::Largest, EigSelection::Smallest] {
        let mut config = SstConfig::paper_default();
        config.eig_selection = selection;
        let scorer = SstDetector::fast(FastSst::new(config));
        let w = scorer.window_len();
        let scored: Vec<(bool, Vec<f64>, usize)> = items
            .iter()
            .map(|it| {
                let (s, fv) = score_item(&|win| scorer.score(win), w, it);
                (it.actual, s, fv)
            })
            .collect();
        let r = sweep(&scored, 1.0, funnel_detect::PERSISTENCE_MINUTES).rates();
        println!(
            "{selection:?}: precision={} recall={} accuracy={}",
            pct(r.precision),
            pct(r.recall),
            pct(r.accuracy)
        );
    }

    println!("\n== Ablation 3: median/MAD filter (Eq. 11) ==");
    for filter in [true, false] {
        let mut config = SstConfig::paper_default();
        config.median_mad_filter = filter;
        // Raw scores live in [0,1]: sweep a small grid and report the best
        // accuracy so the comparison is at each variant's own operating
        // point.
        let grid: &[f64] = if filter {
            &[0.5, 1.0, 1.5]
        } else {
            &[0.1, 0.2, 0.3, 0.5]
        };
        let scorer = SstDetector::fast(FastSst::new(config));
        let w = scorer.window_len();
        let scored: Vec<(bool, Vec<f64>, usize)> = items
            .iter()
            .map(|it| {
                let (s, fv) = score_item(&|win| scorer.score(win), w, it);
                (it.actual, s, fv)
            })
            .collect();
        let best = grid
            .iter()
            .map(|&th| {
                (
                    th,
                    sweep(&scored, th, funnel_detect::PERSISTENCE_MINUTES).rates(),
                )
            })
            .max_by(|a, b| a.1.accuracy.total_cmp(&b.1.accuracy))
            .unwrap();
        println!(
            "filter={filter}: best th={} precision={} recall={} accuracy={}",
            best.0,
            pct(best.1.precision),
            pct(best.1.recall),
            pct(best.1.accuracy)
        );
    }

    ika_vs_exact();
}

/// IKA vs exact robust SST: score agreement and single-thread speedup.
fn ika_vs_exact() {
    println!("\n== Ablation 4: IKA (fast) vs exact robust SST ==");
    let config = SstConfig::paper_default();
    let fast = FastSst::new(config.clone());
    let exact = RobustSst::new(config.clone());
    let gen = funnel_timeseries::generate::KpiGenerator::for_class(
        funnel_timeseries::generate::KpiClass::Variable,
        500.0,
    );
    let series = gen.generate(0, 1200, 0xAB1E);
    let w = config.window_len();

    let t0 = Instant::now();
    let fast_scores: Vec<f64> = series
        .values()
        .windows(w)
        .map(|win| fast.score_window(win))
        .collect();
    let fast_time = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let exact_scores: Vec<f64> = series
        .values()
        .windows(w)
        .map(|win| exact.score_window(win))
        .collect();
    let exact_time = t1.elapsed().as_secs_f64();

    let n = fast_scores.len() as f64;
    let mae: f64 = fast_scores
        .iter()
        .zip(&exact_scores)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / n;
    let agree = fast_scores
        .iter()
        .zip(&exact_scores)
        .filter(|(a, b)| (**a >= 1.0) == (**b >= 1.0))
        .count() as f64
        / n;
    println!(
        "windows={} MAE={mae:.4} decision-agreement={} speedup={:.2}x \
         ({:.1} µs vs {:.1} µs per window)",
        fast_scores.len(),
        pct(agree),
        exact_time / fast_time,
        fast_time / n * 1e6,
        exact_time / n * 1e6,
    );
}
