//! Shared helpers for the table/figure regenerator binaries.

#![forbid(unsafe_code)]

use funnel_eval::confusion::ConfusionMatrix;

/// Renders a percentage with two decimals, Table-1 style.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Renders one Table-1 row.
pub fn table1_row(method: &str, class: &str, m: &ConfusionMatrix) -> String {
    let r = m.rates();
    format!(
        "{method:<14} {class:<11} {:>9} {:>10} {:>10} {:>10} {:>10}",
        format!("{:.0}", m.total()),
        pct(r.precision),
        pct(r.recall),
        pct(r.tnr),
        pct(r.accuracy)
    )
}

/// The §4.2.1 extrapolation factor: 6194 unlabelled clean changes
/// represented by the 72 evaluated ones.
pub const CLEAN_SCALE: f64 = 6194.0 / 72.0;

/// Returns the cohort seed used by all regenerators (override with
/// `FUNNEL_SEED`).
pub fn seed() -> u64 {
    std::env::var("FUNNEL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2015)
}

/// Number of changes to evaluate (override with `FUNNEL_CHANGES`, default
/// all 144). Lets constrained machines regenerate a representative subset.
pub fn change_budget() -> usize {
    std::env::var("FUNNEL_CHANGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(144)
}

/// Whether `FUNNEL_SMOKE` requests the CI-sized subset of a sweep.
///
/// Truthy means *set to a non-empty value other than `"0"`* — the same
/// convention as `FUNNEL_OBS`. The sweeps previously tested `.is_ok()`,
/// which silently treated `FUNNEL_SMOKE=0` (and even `FUNNEL_SMOKE=`) as
/// smoke mode, contradicting the EXPERIMENTS.md docs; this helper is the
/// single shared decision point.
pub fn smoke() -> bool {
    smoke_value(std::env::var("FUNNEL_SMOKE").ok().as_deref())
}

/// [`smoke`] on an explicit value, for tests: `None` (unset), empty, and
/// `"0"` are full-sweep; anything else is smoke.
pub fn smoke_value(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

pub mod report {
    //! Shared machine-readable bench output: every sweep emits
    //! `results/BENCH_<name>.json` through [`BenchReport`], so the envelope
    //! (schema version, seed, smoke flag, field order) is identical across
    //! benches and downstream tooling parses one shape.

    use std::fmt::Write as _;
    use std::path::PathBuf;

    /// Envelope schema version stamped into every `BENCH_<name>.json`.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Builder for one bench report. Fields and rows are emitted in
    /// insertion order, after the fixed `schema_version`/`bench`/`seed`/
    /// `smoke` preamble; values are raw JSON fragments so callers keep
    /// full control of number formatting.
    #[derive(Debug, Clone)]
    pub struct BenchReport {
        bench: String,
        seed: u64,
        smoke: bool,
        fields: Vec<(String, String)>,
        rows: Vec<String>,
    }

    impl BenchReport {
        /// Starts a report for the bench called `bench`
        /// (→ `results/BENCH_<bench>.json`).
        pub fn new(bench: &str, seed: u64, smoke: bool) -> Self {
            Self {
                bench: bench.to_string(),
                seed,
                smoke,
                fields: Vec::new(),
                rows: Vec::new(),
            }
        }

        /// Adds a top-level field; `raw_json` is emitted verbatim (pass
        /// `"true"`, `"3.5"`, `"[1, 3, 8]"`, `"\"text\""`, …).
        #[must_use]
        pub fn field(mut self, key: &str, raw_json: impl Into<String>) -> Self {
            self.fields.push((key.to_string(), raw_json.into()));
            self
        }

        /// Appends one row (a raw JSON object) to the `rows` array.
        pub fn push_row(&mut self, raw_json_object: impl Into<String>) {
            self.rows.push(raw_json_object.into());
        }

        /// Serializes the envelope. Deterministic: fixed preamble, then
        /// fields and rows in insertion order.
        pub fn to_json(&self) -> String {
            let mut out = String::from("{\n");
            let _ = write!(
                out,
                "  \"schema_version\": {SCHEMA_VERSION},\n  \"bench\": \"{}\",\n  \
                 \"seed\": {},\n  \"smoke\": {}",
                self.bench, self.seed, self.smoke
            );
            for (key, value) in &self.fields {
                let _ = write!(out, ",\n  \"{key}\": {value}");
            }
            out.push_str(",\n  \"rows\": [");
            for (i, row) in self.rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n    {row}");
            }
            out.push_str(if self.rows.is_empty() {
                "]\n}\n"
            } else {
                "\n  ]\n}\n"
            });
            out
        }

        /// Writes `results/BENCH_<bench>.json`, creating `results/`.
        ///
        /// # Errors
        ///
        /// Propagates filesystem failures.
        pub fn write(&self) -> std::io::Result<PathBuf> {
            let path = PathBuf::from(format!("results/BENCH_{}.json", self.bench));
            std::fs::create_dir_all("results")?;
            std::fs::write(&path, self.to_json())?;
            Ok(path)
        }
    }

    /// Writes `results/<name>.csv` from a header line and row lines,
    /// creating `results/`. Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_csv(
        name: &str,
        header: &str,
        rows: impl IntoIterator<Item = String>,
    ) -> std::io::Result<PathBuf> {
        let csv: String = std::iter::once(header.to_string())
            .chain(rows)
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let path = PathBuf::from(format!("results/{name}.csv"));
        std::fs::create_dir_all("results")?;
        std::fs::write(&path, csv)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9988), "99.88%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn clean_scale_matches_paper() {
        assert!((CLEAN_SCALE - 86.02).abs() < 0.1);
    }

    #[test]
    fn smoke_value_requires_truthy() {
        assert!(!smoke_value(None), "unset must mean full sweep");
        assert!(!smoke_value(Some("")), "empty must mean full sweep");
        assert!(!smoke_value(Some("0")), "explicit 0 must mean full sweep");
        assert!(smoke_value(Some("1")));
        assert!(smoke_value(Some("yes")));
    }

    #[test]
    fn bench_report_envelope_parses_with_fixed_preamble() {
        let mut r = report::BenchReport::new("demo", 2015, true)
            .field("available_parallelism", "4")
            .field("gate_checked", "false");
        r.push_row("{\"rate\": 0.05, \"items\": 12}".to_string());
        r.push_row("{\"rate\": 0.10, \"items\": 11}".to_string());
        let json = r.to_json();
        assert_eq!(json, r.to_json(), "serialization must be byte-stable");
        let value: serde::Value = serde_json::from_str(&json).expect("envelope parses");
        let serde::Value::Object(top) = &value else {
            panic!("top level must be an object");
        };
        let keys: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema_version",
                "bench",
                "seed",
                "smoke",
                "available_parallelism",
                "gate_checked",
                "rows"
            ]
        );
        let rows = top.iter().find(|(k, _)| k == "rows").map(|(_, v)| v);
        assert!(matches!(rows, Some(serde::Value::Array(a)) if a.len() == 2));
    }

    #[test]
    fn empty_bench_report_parses() {
        let json = report::BenchReport::new("empty", 1, false).to_json();
        let _: serde::Value = serde_json::from_str(&json).expect("empty envelope parses");
    }
}
