//! Shared helpers for the table/figure regenerator binaries.

#![forbid(unsafe_code)]

use funnel_eval::confusion::ConfusionMatrix;

/// Renders a percentage with two decimals, Table-1 style.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Renders one Table-1 row.
pub fn table1_row(method: &str, class: &str, m: &ConfusionMatrix) -> String {
    let r = m.rates();
    format!(
        "{method:<14} {class:<11} {:>9} {:>10} {:>10} {:>10} {:>10}",
        format!("{:.0}", m.total()),
        pct(r.precision),
        pct(r.recall),
        pct(r.tnr),
        pct(r.accuracy)
    )
}

/// The §4.2.1 extrapolation factor: 6194 unlabelled clean changes
/// represented by the 72 evaluated ones.
pub const CLEAN_SCALE: f64 = 6194.0 / 72.0;

/// Returns the cohort seed used by all regenerators (override with
/// `FUNNEL_SEED`).
pub fn seed() -> u64 {
    std::env::var("FUNNEL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2015)
}

/// Number of changes to evaluate (override with `FUNNEL_CHANGES`, default
/// all 144). Lets constrained machines regenerate a representative subset.
pub fn change_budget() -> usize {
    std::env::var("FUNNEL_CHANGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(144)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9988), "99.88%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn clean_scale_matches_paper() {
        assert!((CLEAN_SCALE - 86.02).abs() < 0.1);
    }
}
